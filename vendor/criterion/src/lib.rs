//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple wall-clock timer: a warm-up pass, then `sample_size`
//! timed iterations, reporting min/mean/max per iteration. No statistical
//! analysis, plots, or saved baselines.

use std::time::{Duration, Instant};

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        run_bench(&name.into(), n, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Criterion requires >= 10; we just record whatever is asked.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IdLike, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_bench(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: impl IdLike, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s, as criterion does.
pub trait IdLike {
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        self.label.clone()
    }
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    pending_iters: usize,
}

impl Bencher {
    /// Time one invocation of `routine` per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.pending_iters {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up pass (untimed).
    let mut warm = Bencher { samples: Vec::new(), pending_iters: 1 };
    f(&mut warm);

    let mut b = Bencher { samples: Vec::with_capacity(sample_size), pending_iters: sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label}: no samples (routine never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    println!(
        "bench {label}: mean {} [min {} .. max {}] over {} samples",
        fmt_dur(mean),
        fmt_dur(*min),
        fmt_dur(*max),
        b.samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Re-export spot for code written against criterion's `black_box` (benches
/// here use `std::hint::black_box`, but keep the name available).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function(BenchmarkId::new("sum", 10), |b| {
                b.iter(|| (0..10u64).sum::<u64>());
                calls += 1;
            });
            g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
                b.iter(|| (0..n).product::<u64>());
            });
            g.finish();
        }
        assert!(calls >= 2, "warm-up plus timed pass should both run");
    }
}
