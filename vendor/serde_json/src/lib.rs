//! Offline stand-in for `serde_json`: renders the vendored mini-serde's
//! [`serde::Value`] tree as JSON text.

pub use serde::Value;

/// Errors never actually occur (the value tree is always renderable); the
/// type exists so call sites keep their `Result` shape.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent, like the real
/// serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compact_and_pretty() {
        let v = vec![("a".to_string(), vec![1u64, 2]), ("b".to_string(), vec![])];
        let compact = super::to_string(&v).unwrap();
        assert_eq!(compact, r#"[["a",[1,2]],["b",[]]]"#);
        let pretty = super::to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert!(pretty.starts_with('['));
    }
}
