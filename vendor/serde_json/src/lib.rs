//! Offline stand-in for `serde_json`: renders the vendored mini-serde's
//! [`serde::Value`] tree as JSON text, and parses JSON text back into a
//! [`serde::Value`] tree.

pub use serde::Value;

/// Serialization never fails (the value tree is always renderable);
/// [`from_str`] reports malformed input with a message and byte offset.
#[derive(Debug, Default)]
pub struct Error {
    msg: String,
    at: usize,
}

impl Error {
    fn new(msg: impl Into<String>, at: usize) -> Self {
        Error { msg: msg.into(), at }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.msg.is_empty() {
            write!(f, "serde_json stand-in error")
        } else {
            write!(f, "{} at byte {}", self.msg, self.at)
        }
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent, like the real
/// serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into a [`Value`] tree — the inverse of
/// [`to_string`]/[`to_string_pretty`]. All numbers parse as `f64` (matching
/// [`Value::Num`]); objects keep their textual key order. Trailing
/// non-whitespace after the document is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON document", p.pos));
    }
    Ok(v)
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {what}"), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected `{lit}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(Error::new("unexpected character", self.pos)),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "`{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "`:`")?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new("invalid number", start))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "`\"`")?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| Error::new("invalid UTF-8 in string", self.pos));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one supplementary char.
                                self.eat(b'\\', "low surrogate escape")?;
                                self.eat(b'u', "low surrogate escape")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate", self.pos));
                                }
                                let c =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair", self.pos))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape", self.pos))?
                            };
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(Error::new("unknown escape", self.pos - 1)),
                    }
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape", self.pos));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape", self.pos))?;
        let cp = u32::from_str_radix(text, 16)
            .map_err(|_| Error::new("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, Value};

    #[test]
    fn compact_and_pretty() {
        let v = vec![("a".to_string(), vec![1u64, 2]), ("b".to_string(), vec![])];
        let compact = super::to_string(&v).unwrap();
        assert_eq!(compact, r#"[["a",[1,2]],["b",[]]]"#);
        let pretty = super::to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert!(pretty.starts_with('['));
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("3").unwrap(), Value::Num(3.0));
        assert_eq!(from_str("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parse_containers() {
        assert_eq!(
            from_str(r#"[1, [], {"a": 2}]"#).unwrap(),
            Value::Array(vec![
                Value::Num(1.0),
                Value::Array(vec![]),
                Value::Object(vec![("a".into(), Value::Num(2.0))]),
            ])
        );
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\ndAé😀""#).unwrap(),
            Value::String("a\"b\\c\ndAé😀".into())
        );
    }

    #[test]
    fn render_parse_round_trips_doubles_exactly() {
        // Rust's shortest-repr Display for f64 parses back to the same bits,
        // and integral values render as integers which also parse exactly —
        // the property cache persistence relies on. (-0.0 is the one
        // exception: the renderer prints it as `0`, losing the sign.)
        for x in [0.1, 1.0 / 3.0, 3.0, 1e300, 4.9e-324, 123456789.125] {
            let mut s = String::new();
            serde::write_value(&mut s, &Value::Num(x), None, 0);
            let Value::Num(y) = from_str(&s).unwrap() else { panic!("not a number: {s}") };
            assert_eq!(x.to_bits(), y.to_bits(), "{s}");
        }
    }

    #[test]
    fn round_trip_nested_document() {
        let v = Value::Object(vec![
            ("version".into(), Value::Num(1.0)),
            (
                "caches".into(),
                Value::Array(vec![Value::Object(vec![
                    ("model".into(), Value::Num(0.0)),
                    (
                        "entries".into(),
                        Value::Array(vec![Value::Array(vec![
                            Value::Num(3.4),
                            Value::Array(vec![Value::Num(10.0), Value::Num(3.0)]),
                        ])]),
                    ),
                ])]),
            ),
        ]);
        for pretty in [false, true] {
            let mut s = String::new();
            serde::write_value(&mut s, &v, pretty.then_some(2), 0);
            assert_eq!(from_str(&s).unwrap(), v, "pretty={pretty}");
        }
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["", "[1,", "{\"a\"}", "tru", "\"unterminated", "1 2", "[1] x"] {
            let err = from_str(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
    }
}
