//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this proc-macro crate implements just enough of `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the types in this workspace: plain structs
//! (named, tuple, unit) and enums (unit / tuple / struct variants), no
//! generics, no `#[serde(...)]` attributes. Parsing is done directly on the
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are equally
//! unavailable offline).
//!
//! `Serialize` derives emit a `to_value(&self) -> serde::Value` body that
//! mirrors serde's default encoding: structs become JSON objects, newtype
//! structs are transparent, enums are externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Number of positional fields.
    Tuple(usize),
}

#[derive(Debug)]
struct Item {
    is_enum: bool,
    name: String,
    /// For structs: single entry. For enums: one per variant (name, fields).
    bodies: Vec<(String, Fields)>,
}

/// Skip `#[...]` attributes and visibility modifiers at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` / `pub(super)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a token slice on commas that sit at angle-bracket depth 0.
/// Groups (`(..)`, `[..]`, `{..}`) are opaque single tokens in a
/// `TokenStream`, so only `<`/`>` puncts need manual depth tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse the fields of one named-fields group body.
fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group)
        .into_iter()
        .filter_map(|field| {
            let i = skip_attrs_and_vis(&field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (offline stand-in): generics are not supported on `{name}`");
        }
    }

    if is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde derive: expected enum body for `{name}`, found {other:?}"),
        };
        let body_tokens: Vec<TokenTree> = body.into_iter().collect();
        let mut bodies = Vec::new();
        for variant in split_top_level_commas(&body_tokens) {
            let mut j = skip_attrs_and_vis(&variant, 0);
            let Some(TokenTree::Ident(vname)) = variant.get(j) else { continue };
            let vname = vname.to_string();
            j += 1;
            let fields = match variant.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top_level_commas(&inner).len())
                }
                _ => Fields::Unit,
            };
            bodies.push((vname, fields));
        }
        Item { is_enum, name, bodies }
    } else {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_top_level_commas(&inner).len())
            }
            _ => Fields::Unit,
        };
        Item { is_enum, name, bodies: vec![(String::new(), fields)] }
    }
}

fn serialize_struct_body(prefix: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let mut s = String::from("::serde::Value::Object(vec![");
            for n in names {
                s.push_str(&format!(
                    "(\"{n}\".to_string(), ::serde::Serialize::to_value(&{prefix}{n})),"
                ));
            }
            s.push_str("])");
            s
        }
        Fields::Tuple(1) => format!("::serde::Serialize::to_value(&{prefix}0)"),
        Fields::Tuple(n) => {
            let mut s = String::from("::serde::Value::Array(vec![");
            for k in 0..*n {
                s.push_str(&format!("::serde::Serialize::to_value(&{prefix}{k}),"));
            }
            s.push_str("])");
            s
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = if !item.is_enum {
        serialize_struct_body("self.", &item.bodies[0].1)
    } else {
        // Externally tagged, serde's default.
        let mut arms = String::new();
        for (vname, fields) in &item.bodies {
            match fields {
                Fields::Unit => arms.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
                )),
                Fields::Named(fnames) => {
                    let binds = fnames.join(", ");
                    let mut obj = String::from("::serde::Value::Object(vec![");
                    for f in fnames {
                        obj.push_str(&format!(
                            "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                        ));
                    }
                    obj.push_str("])");
                    arms.push_str(&format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {obj})]),"
                    ));
                }
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let bind_list = binds.join(", ");
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(__f0)".to_string()
                    } else {
                        let mut arr = String::from("::serde::Value::Array(vec![");
                        for b in &binds {
                            arr.push_str(&format!("::serde::Serialize::to_value({b}),"));
                        }
                        arr.push_str("])");
                        arr
                    };
                    arms.push_str(&format!(
                        "{name}::{vname}({bind_list}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),"
                    ));
                }
            }
        }
        format!("match self {{ {arms} }}")
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    // The workspace never deserializes at runtime; the impl only has to
    // exist so `#[derive(Deserialize)]` keeps compiling.
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
