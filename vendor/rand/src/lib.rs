//! Offline stand-in for `rand` 0.8.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the slice of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`] (here xoshiro256++ rather than ChaCha12 — deterministic
//! per seed, but the *streams differ* from upstream rand), [`SeedableRng`],
//! [`Rng::gen_range`]/[`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Everything in the workspace that depends
//! on randomness asserts structural properties, not specific streams, so
//! the substitution is behavior-preserving for the test suite.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, as in rand 0.8.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`rng.gen()`):
/// floats in `[0, 1)`, integers over their full range, bools fair.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T` (`rng.gen::<f64>()` is
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Uniform sample from a range (half-open or inclusive; integer or
    /// float). Panics on empty ranges, like rand. `T` is a free parameter
    /// (as in rand 0.8) so the return context drives integer-literal
    /// inference: `v[rng.gen_range(0..3)]` samples a usize.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly to produce a `T` (mirrors rand
/// 0.8's `SampleRange<T>` so type inference matches upstream).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), the only `seq` API the workspace
    /// uses.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
