//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()`,
//! `read()`, and `write()` return guards directly instead of `Result`s.
//! Poisoning is ignored (a poisoned std lock still hands back its guard),
//! which matches parking_lot's behavior of not poisoning at all.

use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
            assert!(l.try_write().is_none(), "write must block while readers held");
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
