//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro over named strategy bindings, numeric-range and
//! tuple strategies, [`collection::vec`], [`bool::ANY`], and the
//! `prop_assert*` macros. Inputs are sampled from a deterministic RNG
//! (seed fixed per test function name hash would break determinism across
//! runs, so a constant seed is used); there is no shrinking — a failing
//! case reports the assertion message with the debug-printed inputs.
//!
//! Case count defaults to 48 and honours the `PROPTEST_CASES` environment
//! variable like the real crate.

use rand::rngs::StdRng;

/// A generator of values for property tests.
pub trait Strategy {
    type Value: std::fmt::Debug + Clone;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

pub mod array {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Fixed-size array strategy: N independent draws from one element
    /// strategy (`proptest::array::uniformN`).
    pub struct UniformArray<S: Strategy, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut StdRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_fns! {
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
    }
}

/// `Just`-style constant strategy (handy in helper code).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Uniform boolean strategy, mirroring `proptest::bool::ANY`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Sizes accepted by [`vec`]: a fixed count or a half-open range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    pub struct VecStrategy<S: Strategy, R: SizeRange> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-case failure carrying the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of cases to run: `PROPTEST_CASES` env var or 48.
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Driver used by the [`proptest!`] macro expansion: runs `body` over
/// `case_count()` deterministic samples of `strategy` and panics with the
/// inputs on the first failure (no shrinking).
pub fn run_cases<S, F>(strategy: S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x5EED_CA5E);
    for case in 0..case_count() {
        let input = strategy.generate(&mut rng);
        if let Err(TestCaseError(msg)) = body(input.clone()) {
            panic!("proptest case {case} failed: {msg}\n  input: {input:?}");
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestCaseError,
        TestCaseResult,
    };
    pub use crate::bool::ANY as any_bool;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `left != right`\n  both: {:?}", l
            )));
        }
    }};
}

/// The `proptest!` macro: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(($($strat,)*), |($($arg,)*)| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        fn vec_sizes(v in crate::collection::vec(0u32..5, 2..6usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        fn tuples_and_bools(t in (0.5f64..2.0, 1u32..4), b in crate::bool::ANY) {
            prop_assert!(t.0 >= 0.5 && t.0 < 2.0);
            prop_assert!(t.1 >= 1 && t.1 < 4);
            prop_assert!(b || !b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_input() {
        crate::run_cases(0u32..10, |x| {
            prop_assert!(x < 5, "x too large: {}", x);
            Ok(())
        });
    }
}
