//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the minimal serialization surface the workspace actually uses:
//! a value tree ([`Value`]), a [`Serialize`] trait producing it, a marker
//! [`Deserialize`] trait so existing derives keep compiling, and the derive
//! macros re-exported from the vendored `serde_derive`.
//!
//! The encoding matches serde's defaults for the types in this workspace
//! (structs → objects, newtype structs transparent, enums externally
//! tagged), so swapping the real serde back in produces the same JSON.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as f64, rendered losslessly for integers in
    /// the workspace's range (|n| < 2^53).
    Num(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait: the workspace derives `Deserialize` but never deserializes
/// at runtime, so no methods are required.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Keys are rendered through their Value form; string keys stay
        // strings, everything else uses its JSON rendering as the key.
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::String(s) => s,
                        other => crate::render_compact(&other),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

/// Render a [`Value`] with no whitespace (used for map keys; `serde_json`
/// has the pretty renderer).
pub fn render_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Shared renderer: `indent = None` → compact, `Some(width)` → pretty.
pub fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3u32.to_value(), Value::Num(3.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".to_string()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::Num(1.0), Value::Num(2.0)])
        );
        assert_eq!(
            (1u32, "a").to_value(),
            Value::Array(vec![Value::Num(1.0), Value::String("a".to_string())])
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        write_value(&mut s, &Value::Num(42.0), None, 0);
        assert_eq!(s, "42");
        let mut s = String::new();
        write_value(&mut s, &Value::Num(2.5), None, 0);
        assert_eq!(s, "2.5");
    }

    #[test]
    fn strings_escape() {
        let mut s = String::new();
        write_value(&mut s, &Value::String("a\"b\\c\n".to_string()), None, 0);
        assert_eq!(s, r#""a\"b\\c\n""#);
    }
}
