//! Property tests for the engine simulator.

use proptest::prelude::*;
use raqo_sim::engine::{Engine, JoinImpl};
use raqo_sim::sweeps::{switch_point_small_size, SwitchPoint};

proptest! {
    /// Execution times are positive and finite wherever defined, for both
    /// engines and both join implementations.
    #[test]
    fn times_positive_finite(
        ss in 0.01f64..12.0,
        ls in 1.0f64..200.0,
        nc in 1.0f64..128.0,
        cs in 1.0f64..16.0,
    ) {
        for engine in [Engine::hive(), Engine::spark()] {
            let nc = nc.round();
            for join in JoinImpl::ALL {
                if let Ok(t) = engine.join_time(join, ss, ls, nc, cs) {
                    prop_assert!(t.is_finite() && t > 0.0, "{join} -> {t}");
                }
            }
        }
    }

    /// More parallelism never hurts SMJ (its cost divides by nc).
    #[test]
    fn smj_monotone_in_parallelism(
        ss in 0.01f64..5.0,
        ls in 10.0f64..100.0,
        nc in 1.0f64..60.0,
        cs in 1.0f64..10.0,
    ) {
        let engine = Engine::hive();
        let nc = nc.round();
        let t1 = engine.join_time(JoinImpl::SortMerge, ss, ls, nc, cs).unwrap();
        let t2 = engine.join_time(JoinImpl::SortMerge, ss, ls, nc + 8.0, cs).unwrap();
        prop_assert!(t2 <= t1 + 1e-9, "smj({nc})={t1} smj({})={t2}", nc + 8.0);
    }

    /// More memory never hurts BHJ where it runs (pressure only eases).
    #[test]
    fn bhj_monotone_in_memory(
        ss in 0.1f64..6.0,
        ls in 10.0f64..100.0,
        nc in 1.0f64..60.0,
        cs in 1.0f64..9.0,
    ) {
        let engine = Engine::hive();
        let nc = nc.round();
        if let (Ok(t1), Ok(t2)) = (
            engine.join_time(JoinImpl::BroadcastHash, ss, ls, nc, cs),
            engine.join_time(JoinImpl::BroadcastHash, ss, ls, nc, cs + 2.0),
        ) {
            prop_assert!(t2 <= t1 + 1e-9, "bhj({cs})={t1} bhj({})={t2}", cs + 2.0);
        }
    }

    /// The OOM boundary is exact: BHJ errs iff the build exceeds capacity.
    #[test]
    fn oom_boundary_exact(
        ss in 0.1f64..20.0,
        cs in 1.0f64..12.0,
    ) {
        let engine = Engine::hive();
        let cap = engine.bhj_capacity_gb(cs);
        let runs = engine.join_time(JoinImpl::BroadcastHash, ss, 50.0, 10.0, cs).is_ok();
        prop_assert_eq!(runs, ss <= cap);
    }

    /// Switch points returned by the sweep are consistent: just below the
    /// point BHJ is preferred (when the kind says BHJ ever wins).
    #[test]
    fn switch_point_consistency(
        nc in 4.0f64..48.0,
        cs in 2.0f64..12.0,
    ) {
        let engine = Engine::hive();
        let nc = nc.round();
        let cs = cs.round();
        let sp: SwitchPoint = switch_point_small_size(&engine, 77.0, nc, cs, 0.05, 12.0);
        use raqo_sim::sweeps::SwitchKind::*;
        match sp.kind {
            CostCrossover | OomBound => {
                let below = (sp.small_gb - 0.05).max(0.01);
                let bhj = engine.join_time(JoinImpl::BroadcastHash, below, 77.0, nc, cs);
                let smj = engine.join_time(JoinImpl::SortMerge, below, 77.0, nc, cs).unwrap();
                if let Ok(bhj) = bhj {
                    prop_assert!(bhj <= smj + 1e-6, "BHJ not preferred just below switch");
                }
            }
            BhjNeverWins | BhjAlwaysWins => {}
        }
    }

    /// Fused map-join chains never cost more than the same joins as
    /// separate stages — as long as the combined hash tables stay below
    /// the memory-pressure knee. (Under pressure the chain's *combined*
    /// occupancy can exceed the stages' individual ones, so fusing can
    /// legitimately lose; the planner sees that through the cost model.)
    #[test]
    fn chains_never_slower_than_stages(
        b1 in 0.05f64..0.7,
        b2 in 0.05f64..0.7,
        probe in 5.0f64..100.0,
        nc in 1.0f64..40.0,
        cs in 4.0f64..10.0,
    ) {
        let engine = Engine::hive();
        let nc = nc.round();
        if let Ok(chain) = engine.map_join_chain_time(&[b1, b2], probe, nc, cs) {
            let s1 = engine.join_time(JoinImpl::BroadcastHash, b1, probe, nc, cs);
            let s2 = engine.join_time(JoinImpl::BroadcastHash, b2, probe + b1, nc, cs);
            if let (Ok(s1), Ok(s2)) = (s1, s2) {
                prop_assert!(chain <= s1 + s2 + 1e-9, "chain {chain} > staged {}", s1 + s2);
            }
        }
    }
}
