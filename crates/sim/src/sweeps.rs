//! Switch-point computation between BHJ and SMJ (the machinery behind
//! Figs. 3–4, 7, and 9).
//!
//! A *switch point* is the smaller-relation size at which the preferred join
//! implementation flips from BHJ to SMJ under fixed resources. The paper
//! observes two kinds: a genuine **cost crossover** (both run; SMJ becomes
//! cheaper) and an **OOM bound** (BHJ stops being feasible first). Fig. 4
//! shows both: "the switch point between BHJ and SMJ with 3 GB containers is
//! at 3.4 GB of the orders's size (BHJ runs out of memory after that),
//! whereas the switch point shifts to 6.4 GB with 9 GB containers."

use crate::engine::{Engine, JoinImpl};
use serde::{Deserialize, Serialize};

/// Why the preferred implementation flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchKind {
    /// Both implementations run; SMJ becomes cheaper above the point.
    CostCrossover,
    /// BHJ becomes infeasible (hash table no longer fits) above the point.
    OomBound,
    /// BHJ never wins anywhere in the scanned range.
    BhjNeverWins,
    /// BHJ wins across the whole scanned range.
    BhjAlwaysWins,
}

/// A switch point: the build-side size in GB where BHJ stops being the
/// right choice, and why.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchPoint {
    pub small_gb: f64,
    pub kind: SwitchKind,
}

/// Find the BHJ→SMJ switch point in build-side size for a fixed probe side
/// and resource configuration, scanning `lo..hi` GB.
///
/// The search walks up in `step`-GB increments to bracket the flip and then
/// bisects to `tol` precision. Monotonicity of the flip (BHJ's advantage
/// shrinks with the build size) holds for the engine model by construction:
/// broadcast and build costs grow superlinearly in `ss` while SMJ's grow
/// linearly with slope `1/nc`.
pub fn switch_point_small_size(
    engine: &Engine,
    large_gb: f64,
    nc: f64,
    cs: f64,
    lo: f64,
    hi: f64,
) -> SwitchPoint {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let prefers_bhj = |ss: f64| -> Option<bool> {
        match engine.join_time(JoinImpl::BroadcastHash, ss, large_gb, nc, cs) {
            Err(_) => None, // OOM
            Ok(bhj) => {
                let smj = engine
                    .join_time(JoinImpl::SortMerge, ss, large_gb, nc, cs)
                    .expect("SMJ never fails");
                Some(bhj < smj)
            }
        }
    };

    if prefers_bhj(lo) != Some(true) {
        return SwitchPoint { small_gb: lo, kind: SwitchKind::BhjNeverWins };
    }

    // Bracket the flip with a coarse upward scan.
    let step = (hi - lo) / 64.0;
    let mut prev = lo;
    let mut cur = lo + step;
    let mut flip: Option<(f64, f64, SwitchKind)> = None;
    while cur <= hi + 1e-12 {
        match prefers_bhj(cur) {
            Some(true) => {
                prev = cur;
            }
            Some(false) => {
                flip = Some((prev, cur, SwitchKind::CostCrossover));
                break;
            }
            None => {
                flip = Some((prev, cur, SwitchKind::OomBound));
                break;
            }
        }
        cur += step;
    }

    let Some((mut a, mut b, kind)) = flip else {
        return SwitchPoint { small_gb: hi, kind: SwitchKind::BhjAlwaysWins };
    };

    // Bisect: BHJ preferred at `a`, not preferred (or OOM) at `b`.
    let tol = 1e-3;
    while b - a > tol {
        let m = 0.5 * (a + b);
        match prefers_bhj(m) {
            Some(true) => a = m,
            _ => b = m,
        }
    }
    SwitchPoint { small_gb: 0.5 * (a + b), kind }
}

/// One curve of Fig. 9: switch points across container sizes for a fixed
/// ⟨number of containers⟩ setting.
pub fn switch_curve(
    engine: &Engine,
    large_gb: f64,
    nc: f64,
    container_sizes: &[f64],
    max_small_gb: f64,
) -> Vec<(f64, SwitchPoint)> {
    container_sizes
        .iter()
        .map(|&cs| {
            (cs, switch_point_small_size(engine, large_gb, nc, cs, 0.01, max_small_gb))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: f64 = 77.0;

    #[test]
    fn small_containers_hit_oom_bound() {
        // Fig. 4(a), 3 GB containers: switch at ~3.4 GB, caused by OOM.
        let e = Engine::hive();
        let sp = switch_point_small_size(&e, L, 10.0, 3.0, 0.1, 12.0);
        assert_eq!(sp.kind, SwitchKind::OomBound);
        assert!((2.5..=4.5).contains(&sp.small_gb), "got {:.2}", sp.small_gb);
    }

    #[test]
    fn large_containers_hit_cost_crossover() {
        // Fig. 4(a), 9 GB containers: genuine crossover near 6.4 GB.
        let e = Engine::hive();
        let sp = switch_point_small_size(&e, L, 10.0, 9.0, 0.1, 12.0);
        assert_eq!(sp.kind, SwitchKind::CostCrossover);
        assert!((5.0..=8.5).contains(&sp.small_gb), "got {:.2}", sp.small_gb);
    }

    #[test]
    fn switch_point_is_consistent_with_direct_comparison() {
        let e = Engine::hive();
        let sp = switch_point_small_size(&e, L, 10.0, 9.0, 0.1, 12.0);
        // Just below: BHJ preferred; just above: SMJ preferred (or OOM).
        let below = sp.small_gb - 0.05;
        let above = sp.small_gb + 0.05;
        let bhj_b = e.join_time(JoinImpl::BroadcastHash, below, L, 10.0, 9.0).unwrap();
        let smj_b = e.join_time(JoinImpl::SortMerge, below, L, 10.0, 9.0).unwrap();
        assert!(bhj_b < smj_b);
        // OOM above the point would also be a valid flip; here it runs.
        if let Ok(bhj_a) = e.join_time(JoinImpl::BroadcastHash, above, L, 10.0, 9.0) {
            let smj_a = e.join_time(JoinImpl::SortMerge, above, L, 10.0, 9.0).unwrap();
            assert!(bhj_a >= smj_a);
        }
    }

    #[test]
    fn fig9_switch_points_grow_with_container_size() {
        // The Fig. 9 curves rise with container size for both engines.
        for e in [Engine::hive(), Engine::spark()] {
            let curve = switch_curve(&e, L, 10.0, &[3.0, 5.0, 7.0, 9.0, 11.0], 14.0);
            for w in curve.windows(2) {
                assert!(
                    w[1].1.small_gb >= w[0].1.small_gb - 1e-6,
                    "{:?} curve not monotone: {:?}",
                    e.kind,
                    curve
                );
            }
        }
    }

    #[test]
    fn fig9_default_10mb_rule_is_way_off() {
        // "the default optimizer rules are way off in terms of making the
        // right choices": the true switch points sit orders of magnitude
        // above 10 MB.
        let e = Engine::hive();
        let sp = switch_point_small_size(&e, L, 10.0, 7.0, 0.01, 12.0);
        let default_rule_gb = 0.010; // ~10 MB
        assert!(sp.small_gb > 100.0 * default_rule_gb);
    }

    #[test]
    fn spark_and_hive_curves_differ() {
        let h = switch_point_small_size(&Engine::hive(), L, 10.0, 6.0, 0.01, 14.0);
        let s = switch_point_small_size(&Engine::spark(), L, 10.0, 6.0, 0.01, 14.0);
        assert!((h.small_gb - s.small_gb).abs() > 0.1, "h={:?} s={:?}", h, s);
    }

    #[test]
    fn tiny_build_side_never_flips_in_range() {
        // Scan a range where BHJ always wins: flag BhjAlwaysWins.
        let e = Engine::hive();
        let sp = switch_point_small_size(&e, L, 10.0, 9.0, 0.01, 0.5);
        assert_eq!(sp.kind, SwitchKind::BhjAlwaysWins);
        assert_eq!(sp.small_gb, 0.5);
    }

    #[test]
    fn bhj_never_wins_with_one_container() {
        // With a single container SMJ processes everything locally without
        // shuffle advantage, but BHJ pays broadcast + pressure; at large
        // probe and modest memory BHJ never leads at any build size >= lo
        // when even the smallest build side loses.
        let e = Engine::hive();
        // Force it: at nc=200 the broadcast term dominates from the start.
        let sp = switch_point_small_size(&e, 5.0, 200.0, 3.0, 0.5, 3.0);
        assert_eq!(sp.kind, SwitchKind::BhjNeverWins);
    }
}
