//! Discrete-event simulation of a shared cluster's admission queue (Fig. 1).
//!
//! Fig. 1 plots, for one business unit of Microsoft's production clusters,
//! the cumulative distribution of each job's queue-time/run-time ratio:
//! "more than 80% of the jobs spend as much time waiting for resources in
//! the queue as in the actual job execution. More than 20% of the jobs
//! spend at least 4 times their execution time waiting."
//!
//! We reproduce the *shape* with a synthetic but structurally faithful
//! workload: recurring bursts of analytics jobs (the classic
//! top-of-the-hour effect) contending FIFO for a fixed container pool. Jobs
//! demand a random number of containers for a heavy-tailed (log-normal)
//! runtime. Early jobs in a burst start immediately (ratio ≈ 0); later jobs
//! queue behind the backlog, pushing most ratios past 1 and the tail past 4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A multi-class bounded admission queue: the data structure behind both
/// this simulator's FIFO waiting line and the live planning service's
/// request queue (`raqo-core`). Class 0 is the highest priority; within a
/// class, order is strictly FIFO. Capacity bounds the *total* backlog
/// across classes — a full queue rejects the push (admission control sheds
/// the request) instead of growing without bound.
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T> {
    classes: Vec<VecDeque<T>>,
    capacity: usize,
    len: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue with `classes` priority classes and no backlog bound (the
    /// simulator's cluster queue: jobs wait forever rather than shed).
    pub fn unbounded(classes: usize) -> Self {
        Self::bounded(classes, usize::MAX)
    }

    /// A queue with `classes` priority classes holding at most `capacity`
    /// items in total.
    pub fn bounded(classes: usize, capacity: usize) -> Self {
        assert!(classes >= 1, "at least one priority class");
        AdmissionQueue {
            classes: (0..classes).map(|_| VecDeque::new()).collect(),
            capacity,
            len: 0,
        }
    }

    /// Total queued items across all classes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The total-backlog bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of priority classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Queued items in one class.
    pub fn class_len(&self, class: usize) -> usize {
        self.classes[class].len()
    }

    /// Enqueue at the tail of `class`, or hand the item back when the
    /// queue is at capacity (the caller sheds it).
    pub fn try_push(&mut self, class: usize, item: T) -> Result<(), T> {
        assert!(class < self.classes.len(), "priority class out of range");
        if self.len >= self.capacity {
            return Err(item);
        }
        self.classes[class].push_back(item);
        self.len += 1;
        Ok(())
    }

    /// The item the scheduler would serve next — head of the non-empty
    /// class with the highest priority (lowest index) — without removing it.
    pub fn peek_next(&self) -> Option<(usize, &T)> {
        self.classes
            .iter()
            .enumerate()
            .find_map(|(class, q)| q.front().map(|item| (class, item)))
    }

    /// Remove and return the next item in service order.
    pub fn pop_next(&mut self) -> Option<(usize, T)> {
        let class = self.classes.iter().position(|q| !q.is_empty())?;
        let item = self.classes[class].pop_front().expect("class is non-empty");
        self.len -= 1;
        Some((class, item))
    }
}

/// Nearest-rank percentile (`p` in \[0,100\]) of an unsorted sample;
/// `NaN`-free inputs assumed, 0 for an empty sample. Used for the p50/p99
/// queue-wait figures of the throughput bench.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile inputs must not be NaN"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Workload + cluster knobs for the queue simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueSimConfig {
    /// Total containers in the pool.
    pub capacity: u32,
    /// Number of arrival bursts to simulate.
    pub bursts: u32,
    /// Jobs arriving together at the start of each burst.
    pub jobs_per_burst: u32,
    /// Seconds between bursts.
    pub burst_gap_sec: f64,
    /// Median job runtime (seconds).
    pub median_runtime_sec: f64,
    /// Log-normal sigma of runtimes (0 = deterministic).
    pub runtime_sigma: f64,
    /// Per-job container demand, inclusive range.
    pub demand: (u32, u32),
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueueSimConfig {
    /// Calibrated to reproduce Fig. 1's headline numbers: ≥ 80 % of jobs
    /// with ratio ≥ 1, ≥ 20 % with ratio ≥ 4, and a visible mass near 0.
    fn default() -> Self {
        QueueSimConfig {
            capacity: 100,
            bursts: 50,
            jobs_per_burst: 47,
            burst_gap_sec: 300.0,
            median_runtime_sec: 40.0,
            runtime_sigma: 0.6,
            demand: (5, 20),
            seed: 1,
        }
    }
}

/// One simulated job's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    pub arrival_sec: f64,
    pub start_sec: f64,
    pub runtime_sec: f64,
    pub demand: u32,
}

impl JobOutcome {
    pub fn queue_time(&self) -> f64 {
        self.start_sec - self.arrival_sec
    }

    /// The Fig. 1 metric.
    pub fn queue_runtime_ratio(&self) -> f64 {
        self.queue_time() / self.runtime_sec
    }
}

/// Run the FIFO admission simulation and return per-job outcomes in
/// arrival order.
pub fn simulate(config: &QueueSimConfig) -> Vec<JobOutcome> {
    assert!(config.capacity >= config.demand.1, "largest job must fit the cluster");
    assert!(config.demand.0 >= 1 && config.demand.0 <= config.demand.1);
    assert!(config.median_runtime_sec > 0.0 && config.burst_gap_sec > 0.0);
    let mut rng = StdRng::seed_from_u64(config.seed);

    struct Pending {
        arrival: f64,
        runtime: f64,
        demand: u32,
        idx: usize,
    }

    // Generate all arrivals up front (bursts at fixed times, jobs inside a
    // burst arriving in generation order — FIFO ties broken by index).
    let mut jobs = Vec::new();
    for b in 0..config.bursts {
        let t = b as f64 * config.burst_gap_sec;
        for _ in 0..config.jobs_per_burst {
            let runtime = config.median_runtime_sec * lognormal_factor(&mut rng, config.runtime_sigma);
            let demand = rng.gen_range(config.demand.0..=config.demand.1);
            jobs.push(Pending { arrival: t, runtime, demand, idx: jobs.len() });
        }
    }

    let mut outcomes: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();
    let mut free = config.capacity as i64;
    // Running jobs as (finish time, demand), earliest finish first. f64 is
    // not Ord; times are finite by construction, so order by bits.
    let mut running: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    // Single-class unbounded admission queue ≡ the plain FIFO line the
    // cluster model always had.
    let mut waiting: AdmissionQueue<Pending> = AdmissionQueue::unbounded(1);

    let key = |t: f64| -> u64 {
        debug_assert!(t.is_finite() && t >= 0.0);
        t.to_bits()
    };

    // Start as many FIFO-waiting jobs as currently fit, at time `now`.
    fn start_waiting(
        now: f64,
        free: &mut i64,
        waiting: &mut AdmissionQueue<Pending>,
        running: &mut BinaryHeap<Reverse<(u64, u32)>>,
        outcomes: &mut [Option<JobOutcome>],
        key: &dyn Fn(f64) -> u64,
    ) {
        while let Some((_, job)) = waiting.peek_next() {
            if (job.demand as i64) <= *free {
                let (_, job) = waiting.pop_next().expect("head exists");
                *free -= job.demand as i64;
                outcomes[job.idx] = Some(JobOutcome {
                    arrival_sec: job.arrival,
                    start_sec: now,
                    runtime_sec: job.runtime,
                    demand: job.demand,
                });
                running.push(Reverse((key(now + job.runtime), job.demand)));
            } else {
                break; // strict FIFO: head blocks the rest
            }
        }
    }

    let release_until = |t: f64,
                             free: &mut i64,
                             waiting: &mut AdmissionQueue<Pending>,
                             running: &mut BinaryHeap<Reverse<(u64, u32)>>,
                             outcomes: &mut [Option<JobOutcome>]| {
        while let Some(&Reverse((fk, d))) = running.peek() {
            let ft = f64::from_bits(fk);
            if ft <= t {
                running.pop();
                *free += d as i64;
                start_waiting(ft, free, waiting, running, outcomes, &key);
            } else {
                break;
            }
        }
    };

    for job in jobs {
        release_until(job.arrival, &mut free, &mut waiting, &mut running, &mut outcomes);
        let arrival = job.arrival;
        let _ = waiting.try_push(0, job); // unbounded: never sheds

        start_waiting(arrival, &mut free, &mut waiting, &mut running, &mut outcomes, &key);
    }
    // Drain everything.
    release_until(f64::INFINITY, &mut free, &mut waiting, &mut running, &mut outcomes);

    outcomes
        .into_iter()
        .map(|o| o.expect("every job eventually starts"))
        .collect()
}

/// Fraction of jobs whose queue/runtime ratio is at least `threshold`.
pub fn fraction_at_least(outcomes: &[JobOutcome], threshold: f64) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|o| o.queue_runtime_ratio() >= threshold).count() as f64
        / outcomes.len() as f64
}

/// The Fig. 1 CDF: sorted (ratio, cumulative fraction) points.
pub fn ratio_cdf(outcomes: &[JobOutcome]) -> Vec<(f64, f64)> {
    let mut ratios: Vec<f64> = outcomes.iter().map(|o| o.queue_runtime_ratio()).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let n = ratios.len() as f64;
    ratios
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, (i + 1) as f64 / n))
        .collect()
}

/// Log-normal multiplier with median 1. Uses a 12-uniform Irwin–Hall sum as
/// the underlying standard normal (well within the accuracy the workload
/// model needs, and keeps us inside the sanctioned `rand` crate).
fn lognormal_factor(rng: &mut StdRng, sigma: f64) -> f64 {
    let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = QueueSimConfig::default();
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn all_jobs_start_after_arrival_and_capacity_is_respected() {
        let outcomes = simulate(&QueueSimConfig::default());
        assert_eq!(outcomes.len(), 50 * 47);
        for o in &outcomes {
            assert!(o.start_sec >= o.arrival_sec - 1e-9);
            assert!(o.runtime_sec > 0.0);
        }
        // Capacity check: at every start instant, the sum of demands of
        // overlapping jobs must not exceed capacity.
        let cap = QueueSimConfig::default().capacity as f64;
        for probe in outcomes.iter().step_by(97) {
            let t = probe.start_sec;
            let in_flight: f64 = outcomes
                .iter()
                .filter(|o| o.start_sec <= t && t < o.start_sec + o.runtime_sec)
                .map(|o| o.demand as f64)
                .sum();
            assert!(in_flight <= cap + 1e-6, "overcommit at t={t}: {in_flight}");
        }
    }

    #[test]
    fn fifo_order_within_waiting_queue() {
        // Jobs of the same burst must start in arrival (index) order.
        let outcomes = simulate(&QueueSimConfig::default());
        for pair in outcomes.chunks(40) {
            for w in pair.windows(2) {
                assert!(
                    w[1].start_sec >= w[0].start_sec - 1e-9,
                    "FIFO violated within burst"
                );
            }
        }
    }

    #[test]
    fn fig1_headline_numbers() {
        // "more than 80% of the jobs spend as much time waiting ... as in
        // the actual job execution" and "more than 20% ... at least 4
        // times". Allow modest slack on the 80%.
        let outcomes = simulate(&QueueSimConfig::default());
        let at_least_1 = fraction_at_least(&outcomes, 1.0);
        let at_least_4 = fraction_at_least(&outcomes, 4.0);
        assert!(at_least_1 >= 0.80, "P(ratio>=1) = {at_least_1:.2}");
        assert!(at_least_4 >= 0.20, "P(ratio>=4) = {at_least_4:.2}");
        // And some jobs start (nearly) immediately.
        let immediate = outcomes.iter().filter(|o| o.queue_runtime_ratio() < 0.1).count();
        assert!(immediate > 0, "no immediate starts at all");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let outcomes = simulate(&QueueSimConfig::default());
        let cdf = ratio_cdf(&outcomes);
        assert_eq!(cdf.len(), outcomes.len());
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_cluster_has_no_queueing() {
        let cfg = QueueSimConfig {
            capacity: 10_000,
            jobs_per_burst: 5,
            ..Default::default()
        };
        let outcomes = simulate(&cfg);
        assert!(outcomes.iter().all(|o| o.queue_time() < 1e-9));
        assert_eq!(fraction_at_least(&outcomes, 1.0), 0.0);
    }

    #[test]
    fn lognormal_median_is_about_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<f64> = (0..4001).map(|_| lognormal_factor(&mut rng, 0.6)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((0.85..1.15).contains(&median), "median {median}");
    }

    #[test]
    #[should_panic(expected = "largest job must fit")]
    fn oversized_jobs_rejected() {
        let cfg = QueueSimConfig { capacity: 10, demand: (5, 20), ..Default::default() };
        simulate(&cfg);
    }

    #[test]
    fn admission_queue_serves_classes_in_priority_then_fifo_order() {
        let mut q = AdmissionQueue::bounded(3, 10);
        q.try_push(1, "std-a").unwrap();
        q.try_push(2, "batch-a").unwrap();
        q.try_push(0, "int-a").unwrap();
        q.try_push(1, "std-b").unwrap();
        q.try_push(0, "int-b").unwrap();
        assert_eq!(q.len(), 5);
        assert_eq!(q.class_len(0), 2);
        assert_eq!(q.peek_next(), Some((0, &"int-a")));
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next()).collect();
        assert_eq!(
            order,
            vec![(0, "int-a"), (0, "int-b"), (1, "std-a"), (1, "std-b"), (2, "batch-a")]
        );
        assert!(q.is_empty());
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn admission_queue_sheds_at_capacity() {
        let mut q = AdmissionQueue::bounded(2, 2);
        q.try_push(1, 10).unwrap();
        q.try_push(1, 11).unwrap();
        // The bound covers the total backlog, not a single class.
        assert_eq!(q.try_push(0, 12), Err(12));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop_next(), Some((1, 10)));
        q.try_push(0, 12).unwrap();
        assert_eq!(q.pop_next(), Some((0, 12)));
    }

    #[test]
    fn percentile_nearest_rank() {
        let sample: Vec<f64> = (1..=100).rev().map(|v| v as f64).collect();
        assert_eq!(percentile(&sample, 50.0), 50.0);
        assert_eq!(percentile(&sample, 99.0), 99.0);
        assert_eq!(percentile(&sample, 100.0), 100.0);
        assert_eq!(percentile(&sample, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
