//! Scheduler interaction: what happens when RAQO's precise resource
//! requests meet a busy cluster (§VIII, "Interaction with DAG scheduler").
//!
//! > "With RAQO, the submitted jobs now have precise resource requests.
//! > This raises new questions for the scheduler in case the exact
//! > resources are not available: should it delay the job, should it fail
//! > it, or should it consider multiple query/resource plan alternatives
//! > and pick the most appropriate at runtime?"
//!
//! This module implements that scheduler as a discrete-event simulation: a
//! memory pool shared by concurrently submitted jobs, each a chain of
//! stages with per-stage resource requests. Three contention policies are
//! provided:
//!
//! * [`ContentionPolicy::Delay`] — classic YARN behaviour: queue until the
//!   exact request fits;
//! * [`ContentionPolicy::Shrink`] — keep the plan, run the stage at
//!   whatever parallelism currently fits (fewer containers, same size);
//! * re-planning is layered on top by the caller: stages carry a
//!   [`StageSpec::alternatives`] list (cheapest-first) and the scheduler
//!   admits the best alternative that fits — this is the paper's "consider
//!   multiple query/resource plan alternatives and pick the most
//!   appropriate at runtime", with the alternatives produced by RAQO.
//!
//! Durations are supplied per (containers, size) candidate by a resource →
//! time function so shrunk/alternative placements are re-costed honestly.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One admission candidate for a stage: a resource request plus the
/// stage's execution time under it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCandidate {
    pub containers: f64,
    pub container_size_gb: f64,
    pub duration_sec: f64,
}

impl StageCandidate {
    /// Memory footprint while running (GB).
    pub fn memory_gb(&self) -> f64 {
        self.containers * self.container_size_gb
    }
}

/// One stage of a job's DAG chain: the preferred request plus ranked
/// fallbacks (cheapest-first), as a re-planning RAQO would emit them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// The candidates, best-first. The first entry is the plan's preferred
    /// request; later entries are alternatives acceptable at admission.
    pub alternatives: Vec<StageCandidate>,
}

impl StageSpec {
    pub fn single(candidate: StageCandidate) -> Self {
        StageSpec { alternatives: vec![candidate] }
    }

    pub fn preferred(&self) -> &StageCandidate {
        &self.alternatives[0]
    }
}

/// A job: an arrival time and a sequential chain of stages (joins at
/// shuffle boundaries run one after another).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    pub arrival_sec: f64,
    pub stages: Vec<StageSpec>,
}

/// What the scheduler does when a stage's preferred request does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentionPolicy {
    /// Wait until the preferred request fits (ignore alternatives).
    Delay,
    /// Admit immediately at reduced parallelism: same container size,
    /// as many containers as fit (at least one). Duration is scaled by
    /// the caller-provided re-coster embedded in the candidate list — the
    /// shrink policy interpolates between alternatives; if no alternative
    /// fits it falls back to waiting.
    Shrink,
    /// Admit the best-ranked alternative that fits *now*; wait only when
    /// none fits. This models runtime re-planning against current
    /// conditions.
    BestAlternative,
}

/// Per-job outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    pub arrival_sec: f64,
    pub finish_sec: f64,
    /// Seconds spent waiting (sum over stages).
    pub queued_sec: f64,
    /// Seconds spent executing (sum over stages).
    pub running_sec: f64,
}

impl JobOutcome {
    pub fn completion_sec(&self) -> f64 {
        self.finish_sec - self.arrival_sec
    }
}

/// The shared-cluster scheduler simulation.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Total memory pool (GB) — containers × size available cluster-wide.
    pub capacity_gb: f64,
    pub policy: ContentionPolicy,
}

impl Scheduler {
    pub fn new(capacity_gb: f64, policy: ContentionPolicy) -> Self {
        assert!(capacity_gb > 0.0);
        Scheduler { capacity_gb, policy }
    }

    /// Pick the admission candidate for a stage given currently free
    /// memory, or `None` if the policy says wait.
    fn admit(&self, stage: &StageSpec, free_gb: f64) -> Option<StageCandidate> {
        let preferred = *stage.preferred();
        if preferred.memory_gb() <= free_gb {
            return Some(preferred);
        }
        match self.policy {
            ContentionPolicy::Delay => None,
            ContentionPolicy::BestAlternative => stage
                .alternatives
                .iter()
                .copied()
                .find(|c| c.memory_gb() <= free_gb),
            ContentionPolicy::Shrink => {
                // Same container size, fewer containers. Scale duration by
                // the lost parallelism (conservative: linear slowdown on
                // the parallel fraction, approximated from the preferred
                // candidate).
                let cs = preferred.container_size_gb;
                let fit = (free_gb / cs).floor();
                if fit < 1.0 {
                    return None;
                }
                let scale = preferred.containers / fit;
                Some(StageCandidate {
                    containers: fit,
                    container_size_gb: cs,
                    duration_sec: preferred.duration_sec * scale,
                })
            }
        }
    }

    /// Run the workload to completion; outcomes are in job order.
    ///
    /// Stages of one job run sequentially; different jobs contend for the
    /// memory pool. Admission is FIFO across ready stages with at most one
    /// admission scan per event (no backfilling past the queue head —
    /// conservative, like capacity scheduler FIFO queues).
    pub fn run(&self, jobs: &[JobSpec]) -> Vec<JobOutcome> {
        #[derive(Debug)]
        struct JobState {
            next_stage: usize,
            ready_at: f64, // arrival or previous stage finish
            queued: f64,
            running: f64,
            finish: f64,
            done: bool,
        }

        for (i, j) in jobs.iter().enumerate() {
            assert!(!j.stages.is_empty(), "job {i} has no stages");
            for s in &j.stages {
                assert!(!s.alternatives.is_empty(), "job {i} stage without candidates");
            }
        }

        let mut states: Vec<JobState> = jobs
            .iter()
            .map(|j| JobState {
                next_stage: 0,
                ready_at: j.arrival_sec,
                queued: 0.0,
                running: 0.0,
                finish: 0.0,
                done: false,
            })
            .collect();

        let mut free = self.capacity_gb;
        // (finish-time bits, memory, job index) — completion events.
        let mut running: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut now = 0.0f64;

        let key = |t: f64| -> u64 { t.to_bits() };

        loop {
            // Admit every ready stage that fits, FIFO by (ready_at, index).
            loop {
                // A job is ready when it has arrived and is not running a
                // stage (running jobs carry the `ready_at = ∞` sentinel).
                let mut ready: Vec<usize> = states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done && s.ready_at <= now)
                    .map(|(i, _)| i)
                    .collect();
                ready.sort_by(|&a, &b| {
                    states[a]
                        .ready_at
                        .partial_cmp(&states[b].ready_at)
                        .expect("finite times")
                        .then(a.cmp(&b))
                });
                // Jobs already running a stage must not be re-admitted:
                // mark them via a sentinel in `ready_at` (+inf while
                // running).
                let mut admitted_any = false;
                for i in ready {
                    let s = &states[i];
                    let stage = &jobs[i].stages[s.next_stage];
                    match self.admit(stage, free) {
                        Some(c) => {
                            let mem = c.memory_gb();
                            free -= mem;
                            let s = &mut states[i];
                            s.queued += now - s.ready_at;
                            s.running += c.duration_sec;
                            s.ready_at = f64::INFINITY; // running sentinel
                            running.push(Reverse((key(now + c.duration_sec), mem.to_bits(), i)));
                            admitted_any = true;
                        }
                        None => break, // FIFO head-of-line blocking
                    }
                }
                if !admitted_any {
                    break;
                }
            }

            // Advance to the next event: earliest completion or earliest
            // future arrival.
            let next_completion = running.peek().map(|Reverse((t, _, _))| f64::from_bits(*t));
            let next_arrival = states
                .iter()
                .filter(|s| !s.done && s.ready_at.is_finite() && s.ready_at > now)
                .map(|s| s.ready_at)
                .fold(f64::INFINITY, f64::min);

            let next = match next_completion {
                Some(c) => c.min(next_arrival),
                None if next_arrival.is_finite() => next_arrival,
                None => break, // nothing running, nothing arriving: done
            };
            now = next;

            // Process completions at `now`.
            while let Some(&Reverse((t, mem, i))) = running.peek() {
                if f64::from_bits(t) <= now {
                    running.pop();
                    free += f64::from_bits(mem);
                    let s = &mut states[i];
                    s.next_stage += 1;
                    if s.next_stage == jobs[i].stages.len() {
                        s.done = true;
                        s.finish = f64::from_bits(t);
                        s.ready_at = f64::NEG_INFINITY;
                    } else {
                        s.ready_at = f64::from_bits(t);
                    }
                } else {
                    break;
                }
            }

            if states.iter().all(|s| s.done) {
                break;
            }
        }

        states
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                debug_assert!(s.done, "job {i} never finished");
                JobOutcome {
                    arrival_sec: jobs[i].arrival_sec,
                    finish_sec: s.finish,
                    queued_sec: s.queued,
                    running_sec: s.running,
                }
            })
            .collect()
    }
}

/// Mean job completion time (queue + run) of a workload outcome.
pub fn mean_completion_sec(outcomes: &[JobOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| o.completion_sec()).sum::<f64>() / outcomes.len() as f64
}

/// Workload makespan: last finish minus first arrival.
pub fn makespan_sec(outcomes: &[JobOutcome]) -> f64 {
    let first = outcomes.iter().map(|o| o.arrival_sec).fold(f64::INFINITY, f64::min);
    let last = outcomes.iter().map(|o| o.finish_sec).fold(0.0, f64::max);
    last - first
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(nc: f64, cs: f64, dur: f64) -> StageCandidate {
        StageCandidate { containers: nc, container_size_gb: cs, duration_sec: dur }
    }

    fn one_stage_job(arrival: f64, c: StageCandidate) -> JobSpec {
        JobSpec { arrival_sec: arrival, stages: vec![StageSpec::single(c)] }
    }

    #[test]
    fn uncontended_jobs_run_immediately() {
        let s = Scheduler::new(1000.0, ContentionPolicy::Delay);
        let jobs = vec![
            one_stage_job(0.0, cand(10.0, 4.0, 100.0)),
            one_stage_job(5.0, cand(10.0, 4.0, 50.0)),
        ];
        let out = s.run(&jobs);
        assert_eq!(out[0].queued_sec, 0.0);
        assert_eq!(out[0].finish_sec, 100.0);
        assert_eq!(out[1].queued_sec, 0.0);
        assert_eq!(out[1].finish_sec, 55.0);
    }

    #[test]
    fn delay_policy_queues_until_exact_fit() {
        // Pool of 100 GB; two jobs each wanting 80 GB: the second waits.
        let s = Scheduler::new(100.0, ContentionPolicy::Delay);
        let jobs = vec![
            one_stage_job(0.0, cand(20.0, 4.0, 100.0)),
            one_stage_job(0.0, cand(20.0, 4.0, 100.0)),
        ];
        let out = s.run(&jobs);
        assert_eq!(out[0].finish_sec, 100.0);
        assert_eq!(out[1].queued_sec, 100.0);
        assert_eq!(out[1].finish_sec, 200.0);
    }

    #[test]
    fn shrink_policy_runs_smaller_but_sooner() {
        let delay = Scheduler::new(100.0, ContentionPolicy::Delay);
        let shrink = Scheduler::new(100.0, ContentionPolicy::Shrink);
        let jobs = vec![
            one_stage_job(0.0, cand(20.0, 4.0, 100.0)), // takes 80 GB
            one_stage_job(0.0, cand(20.0, 4.0, 100.0)), // only 20 GB left
        ];
        let d = delay.run(&jobs);
        let s = shrink.run(&jobs);
        // Shrunk job: 5 containers instead of 20 → 4x duration, starts at 0.
        assert_eq!(s[1].queued_sec, 0.0);
        assert_eq!(s[1].running_sec, 400.0);
        // Whether shrinking wins depends on the numbers; here delay wins
        // on completion (100+100 < 400) — both behaviours are legitimate,
        // the policies just trade differently.
        assert!(d[1].completion_sec() < s[1].completion_sec());
    }

    #[test]
    fn shrink_beats_delay_when_contention_is_long() {
        // The first job holds the pool for a long time: waiting for the
        // exact request is much worse than running small now.
        let delay = Scheduler::new(100.0, ContentionPolicy::Delay);
        let shrink = Scheduler::new(100.0, ContentionPolicy::Shrink);
        let jobs = [
            one_stage_job(0.0, cand(20.0, 4.0, 1000.0)),
            one_stage_job(0.0, cand(10.0, 2.0, 20.0)), // wants 20 GB; 20 GB free
        ];
        // 20 GB free: fits exactly — both policies identical here, so
        // tighten: second job wants 40 GB.
        let jobs2 = vec![
            jobs[0].clone(),
            one_stage_job(0.0, cand(20.0, 2.0, 20.0)), // wants 40 GB
        ];
        let d = delay.run(&jobs2);
        let s = shrink.run(&jobs2);
        // Shrink: 10 containers fit (20 GB), 2x duration = 40s total.
        assert_eq!(s[1].completion_sec(), 40.0);
        // Delay: waits 1000s then runs 20s.
        assert_eq!(d[1].completion_sec(), 1020.0);
    }

    #[test]
    fn best_alternative_policy_uses_fallbacks() {
        let sched = Scheduler::new(100.0, ContentionPolicy::BestAlternative);
        let blocker = one_stage_job(0.0, cand(20.0, 4.0, 500.0)); // 80 GB
        let flexible = JobSpec {
            arrival_sec: 0.0,
            stages: vec![StageSpec {
                alternatives: vec![
                    cand(25.0, 4.0, 30.0), // preferred: 100 GB — won't fit
                    cand(10.0, 2.0, 60.0), // 20 GB — fits now
                ],
            }],
        };
        let out = sched.run(&[blocker.clone(), flexible.clone()]);
        assert_eq!(out[1].queued_sec, 0.0);
        assert_eq!(out[1].running_sec, 60.0);

        // Same workload under Delay: the flexible job waits 500s.
        let delay = Scheduler::new(100.0, ContentionPolicy::Delay);
        let out = delay.run(&[blocker, flexible]);
        assert_eq!(out[1].queued_sec, 500.0);
    }

    #[test]
    fn best_alternative_waits_when_nothing_fits() {
        let sched = Scheduler::new(100.0, ContentionPolicy::BestAlternative);
        let blocker = one_stage_job(0.0, cand(25.0, 4.0, 100.0)); // all 100 GB
        let job = JobSpec {
            arrival_sec: 0.0,
            stages: vec![StageSpec {
                alternatives: vec![cand(10.0, 4.0, 50.0), cand(5.0, 4.0, 90.0)],
            }],
        };
        let out = sched.run(&[blocker, job]);
        assert_eq!(out[1].queued_sec, 100.0);
        // Once free, the preferred candidate fits.
        assert_eq!(out[1].running_sec, 50.0);
    }

    #[test]
    fn multi_stage_jobs_run_stages_sequentially() {
        let sched = Scheduler::new(1000.0, ContentionPolicy::Delay);
        let job = JobSpec {
            arrival_sec: 10.0,
            stages: vec![
                StageSpec::single(cand(10.0, 4.0, 100.0)),
                StageSpec::single(cand(20.0, 4.0, 50.0)),
            ],
        };
        let out = sched.run(&[job]);
        assert_eq!(out[0].finish_sec, 160.0);
        assert_eq!(out[0].running_sec, 150.0);
        assert_eq!(out[0].queued_sec, 0.0);
    }

    #[test]
    fn fifo_head_of_line_blocks() {
        // A huge job at the head of the queue blocks a small one behind it
        // (conservative FIFO, no backfilling).
        let sched = Scheduler::new(100.0, ContentionPolicy::Delay);
        let jobs = vec![
            one_stage_job(0.0, cand(20.0, 4.0, 100.0)), // 80 GB, runs
            one_stage_job(1.0, cand(25.0, 4.0, 10.0)),  // 100 GB, must wait
            one_stage_job(2.0, cand(2.0, 4.0, 10.0)),   // 8 GB, fits but queued behind
        ];
        let out = sched.run(&jobs);
        assert!(out[2].queued_sec > 0.0, "backfilling should not happen");
    }

    #[test]
    fn capacity_never_exceeded() {
        // Overlap accounting: at every start, the sum of running memory
        // must fit the pool.
        let sched = Scheduler::new(120.0, ContentionPolicy::Shrink);
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| one_stage_job(i as f64 * 3.0, cand(10.0, 4.0, 37.0)))
            .collect();
        let out = sched.run(&jobs);
        for probe in &out {
            let t = probe.finish_sec - 0.5;
            let used: f64 = out
                .iter()
                .zip(&jobs)
                .filter(|(o, _)| o.finish_sec - o.running_sec <= t && t < o.finish_sec)
                .map(|(o, j)| {
                    // Approximation: memory of the preferred candidate
                    // bounds the shrunk admission.
                    let _ = o;
                    j.stages[0].preferred().memory_gb()
                })
                .sum();
            // Upper bound check only (shrunk placements use less).
            assert!(used <= 12.0 * 40.0);
        }
        assert!(makespan_sec(&out) > 0.0);
        assert!(mean_completion_sec(&out) > 0.0);
    }

    #[test]
    fn aggregates() {
        let outcomes = vec![
            JobOutcome { arrival_sec: 0.0, finish_sec: 10.0, queued_sec: 0.0, running_sec: 10.0 },
            JobOutcome { arrival_sec: 5.0, finish_sec: 25.0, queued_sec: 10.0, running_sec: 10.0 },
        ];
        assert_eq!(mean_completion_sec(&outcomes), 15.0);
        assert_eq!(makespan_sec(&outcomes), 25.0);
        assert_eq!(mean_completion_sec(&[]), 0.0);
    }
}
