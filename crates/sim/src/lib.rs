//! # raqo-sim
//!
//! The big-data substrate the paper runs on, rebuilt as a simulator.
//!
//! The paper's §III evidence comes from a 10-VM YARN cluster running Hive
//! 2.0.1 on Tez (and SparkSQL 1.6.1) over TPC-H SF-100. We do not have that
//! testbed, so this crate provides a deterministic analytic simulator of the
//! same moving parts:
//!
//! * [`engine`] — task-level execution-time model of the two join
//!   implementations the paper studies, **shuffle sort-merge join (SMJ)**
//!   and **broadcast hash join (BHJ)**, under a ⟨number of containers,
//!   container size⟩ resource configuration, including BHJ's out-of-memory
//!   behaviour ("below 5 GB containers, BHJ is not an option as it runs out
//!   of memory") and memory-pressure slowdown;
//! * [`money`] — the serverless monetary-cost model (total memory × time,
//!   reported by the paper in TB·seconds);
//! * [`sweeps`] — switch-point computation between BHJ and SMJ over data and
//!   resource dimensions (the machinery behind Figs. 3–7 and 9);
//! * [`queue`] — a discrete-event admission-queue simulator reproducing the
//!   queue-time/run-time distribution of Fig. 1;
//! * [`profile`] — profile-run generation ("our approach requires profile
//!   runs in order to train the cost model", §VI-A) consumed by the
//!   regression trainer in `raqo-cost` and the decision-tree learner in
//!   `raqo-dtree`.
//!
//! The simulator is calibrated so the *shapes* of the paper's findings hold
//! (who wins, where crossovers fall, how switch points move); absolute
//! seconds are in the same few-hundred-to-few-thousand range as the paper
//! but are not expected to match a 2016 testbed exactly. Calibration targets
//! and deviations are recorded in `EXPERIMENTS.md`.

pub mod engine;
pub mod money;
pub mod profile;
pub mod queue;
pub mod scheduler;
pub mod sweeps;

pub use engine::{Engine, EngineKind, EngineTuning, JoinImpl, OomError, SimJoinStage};
pub use money::monetary_cost_tb_sec;
pub use queue::{percentile, AdmissionQueue, JobOutcome, QueueSimConfig};
pub use scheduler::{ContentionPolicy, Scheduler, StageCandidate, StageSpec};
pub use sweeps::{switch_point_small_size, SwitchPoint};
