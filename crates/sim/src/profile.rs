//! Profile-run generation.
//!
//! §VI-A: "our approach requires profile runs in order to train the cost
//! model. However, this is a one-time investment for each system." And §V-B:
//! decision trees are trained over "the switch point results", i.e. labelled
//! grids of (data, resources) → best join.
//!
//! This module runs the engine simulator over configurable grids and emits
//! both raw timing profiles (for the OLS regression in `raqo-cost`) and
//! labelled samples (for the CART learner in `raqo-dtree`).

use crate::engine::{Engine, JoinImpl};
use serde::{Deserialize, Serialize};

/// One profiled execution: a join implementation timed at a grid point.
/// `time_sec` is `None` when the run failed (BHJ OOM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileRun {
    pub join: JoinImpl,
    /// Smaller (build) input, GB.
    pub small_gb: f64,
    /// Larger (probe) input, GB.
    pub large_gb: f64,
    /// Number of containers.
    pub containers: f64,
    /// Container size, GB.
    pub container_size_gb: f64,
    pub time_sec: Option<f64>,
}

/// The grid over which to profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileGrid {
    pub small_gb: Vec<f64>,
    pub large_gb: f64,
    pub containers: Vec<f64>,
    pub container_size_gb: Vec<f64>,
}

impl ProfileGrid {
    /// The grid the paper's §III/§V experiments sweep: build sides up to a
    /// few GB, 5–45 containers, 1–10 GB container sizes.
    pub fn paper_default() -> Self {
        ProfileGrid {
            small_gb: vec![0.2, 0.5, 0.85, 1.7, 2.55, 3.4, 4.25, 5.1, 6.4, 8.0],
            large_gb: 77.0,
            containers: vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0],
            container_size_gb: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
        }
    }

    /// Total grid points (per join implementation).
    pub fn points(&self) -> usize {
        self.small_gb.len() * self.containers.len() * self.container_size_gb.len()
    }
}

/// Time both join implementations at every grid point.
pub fn profile(engine: &Engine, grid: &ProfileGrid) -> Vec<ProfileRun> {
    let mut out = Vec::with_capacity(2 * grid.points());
    for &ss in &grid.small_gb {
        for &nc in &grid.containers {
            for &cs in &grid.container_size_gb {
                for join in JoinImpl::ALL {
                    let time_sec = engine.join_time(join, ss, grid.large_gb, nc, cs).ok();
                    out.push(ProfileRun {
                        join,
                        small_gb: ss,
                        large_gb: grid.large_gb,
                        containers: nc,
                        container_size_gb: cs,
                        time_sec,
                    });
                }
            }
        }
    }
    out
}

/// A labelled sample for the decision-tree learner: the features Fig. 11's
/// trees branch on, plus the winning implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledRun {
    /// Size of the smaller relation, GB ("Data Size").
    pub data_gb: f64,
    /// Container size, GB.
    pub container_size_gb: f64,
    /// Concurrent containers.
    pub containers: f64,
    /// Total containers across the job's tasks ("Total Containers" in
    /// Fig. 11) — modelled as containers × waves, where waves grow with the
    /// probe side.
    pub total_containers: f64,
    pub best: JoinImpl,
}

impl LabeledRun {
    /// Feature vector in the order the trees report:
    /// [data size, container size, concurrent containers, total containers].
    pub fn features(&self) -> [f64; 4] {
        [self.data_gb, self.container_size_gb, self.containers, self.total_containers]
    }

    /// Human-readable names for the features, aligned with Fig. 11.
    pub const FEATURE_NAMES: [&'static str; 4] =
        ["Data Size (GB)", "Container Size", "Concurrent Containers", "Total Containers"];
}

/// Label every grid point with the faster feasible implementation.
pub fn labeled_grid(engine: &Engine, grid: &ProfileGrid) -> Vec<LabeledRun> {
    let mut out = Vec::with_capacity(grid.points());
    for &ss in &grid.small_gb {
        for &nc in &grid.containers {
            for &cs in &grid.container_size_gb {
                let (best, _) = engine.best_join(ss, grid.large_gb, nc, cs);
                // Tasks per vertex ≈ probe splits; 256 MB split size as in
                // the paper's Hive setup.
                let waves = (grid.large_gb / 0.256 / nc).ceil().max(1.0);
                out.push(LabeledRun {
                    data_gb: ss,
                    container_size_gb: cs,
                    containers: nc,
                    total_containers: nc * waves,
                    best,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_grid_twice() {
        let grid = ProfileGrid::paper_default();
        let runs = profile(&Engine::hive(), &grid);
        assert_eq!(runs.len(), 2 * grid.points());
    }

    #[test]
    fn smj_rows_always_timed_bhj_rows_oom_when_too_big() {
        let grid = ProfileGrid::paper_default();
        let runs = profile(&Engine::hive(), &grid);
        let engine = Engine::hive();
        for r in &runs {
            match r.join {
                JoinImpl::SortMerge => assert!(r.time_sec.is_some()),
                JoinImpl::BroadcastHash => {
                    let fits = r.small_gb <= engine.bhj_capacity_gb(r.container_size_gb);
                    assert_eq!(r.time_sec.is_some(), fits, "{r:?}");
                }
            }
        }
        // The paper-default grid must contain both feasible and OOM BHJ
        // points, otherwise it cannot teach the OOM boundary.
        let bhj: Vec<_> = runs.iter().filter(|r| r.join == JoinImpl::BroadcastHash).collect();
        assert!(bhj.iter().any(|r| r.time_sec.is_some()));
        assert!(bhj.iter().any(|r| r.time_sec.is_none()));
    }

    #[test]
    fn labeled_grid_has_both_classes() {
        // The decision tree needs both SMJ- and BHJ-labelled regions
        // (Fig. 11 trees have both classes at their leaves).
        let grid = ProfileGrid::paper_default();
        let labels = labeled_grid(&Engine::hive(), &grid);
        assert_eq!(labels.len(), grid.points());
        let bhj = labels.iter().filter(|l| l.best == JoinImpl::BroadcastHash).count();
        let smj = labels.len() - bhj;
        assert!(bhj > 50, "too few BHJ labels: {bhj}");
        assert!(smj > 50, "too few SMJ labels: {smj}");
    }

    #[test]
    fn labels_match_engine_best_join() {
        let grid = ProfileGrid::paper_default();
        let e = Engine::hive();
        for l in labeled_grid(&e, &grid).iter().step_by(17) {
            let (best, _) = e.best_join(l.data_gb, grid.large_gb, l.containers, l.container_size_gb);
            assert_eq!(best, l.best);
        }
    }

    #[test]
    fn total_containers_accounts_for_waves() {
        let grid = ProfileGrid::paper_default();
        let labels = labeled_grid(&Engine::hive(), &grid);
        for l in &labels {
            assert!(l.total_containers >= l.containers);
            let waves = l.total_containers / l.containers;
            assert_eq!(waves.fract(), 0.0, "waves must be integral");
        }
    }

    #[test]
    fn feature_vector_order_matches_names() {
        let l = LabeledRun {
            data_gb: 1.0,
            container_size_gb: 2.0,
            containers: 3.0,
            total_containers: 4.0,
            best: JoinImpl::SortMerge,
        };
        assert_eq!(l.features(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(LabeledRun::FEATURE_NAMES.len(), 4);
    }
}
