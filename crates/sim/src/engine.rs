//! Task-level execution-time model for SMJ and BHJ on a YARN-like cluster.
//!
//! ## The model
//!
//! A join runs over `nc` concurrent containers of `cs` GB each. Let `ss` be
//! the byte size of the smaller (build) relation and `ls` the larger (probe)
//! relation, both in GB.
//!
//! **Broadcast hash join (BHJ)** — Hive's map join / Spark's broadcast join:
//!
//! * the build relation is replicated to every container through a shared
//!   distribution channel of aggregate bandwidth `broadcast_bw`
//!   (cost `ss · nc / broadcast_bw`; this is why BHJ degrades with very
//!   large clusters, matching Fig. 3(b));
//! * each container materializes a hash table. The table fits only when
//!   `ss ≤ cs · mem_fraction / hash_expansion`; otherwise the join **fails
//!   with OOM**, reproducing "below 5 GB containers, BHJ is not an option as
//!   it runs out of memory" (Fig. 3(a)) and the OOM cut-offs of Figs. 4–5;
//! * building under memory pressure slows down (GC churn, in-memory
//!   spilling): the build cost `ss / build_bw` is multiplied by a quadratic
//!   penalty above a pressure knee — this is what makes BHJ "benefit from
//!   larger memory" (§III-A);
//! * the probe side is scanned in parallel: `ls / (nc · disk_bw)`.
//!
//! **Shuffle sort-merge join (SMJ)** — both relations are re-partitioned,
//! sorted, and merged. With `d = (ls + ss) / nc` data per container:
//!
//! * scan + shuffle: `d / disk_bw + d / net_bw`;
//! * external sort: one extra disk pass per multiway-merge level that does
//!   not fit in the sort buffer (`cs · sort_fraction`), i.e.
//!   `⌈log_fanin(d / buffer)⌉` passes of `d / disk_bw`. Container size
//!   therefore matters only mildly — "the performance of SMJ remains
//!   relatively stable" (§III-A) — while parallelism divides everything,
//!   which is why "SMJ benefits more from increased parallelism".
//!
//! Both joins pay a per-stage startup latency. All parameters live in
//! [`EngineTuning`]; [`EngineTuning::hive`] and [`EngineTuning::spark`] are
//! calibrated presets whose switch points land where §III reports them
//! (see the calibration tests at the bottom of this file).

use serde::{Deserialize, Serialize};

/// Which big-data engine is being simulated. The two engines share the
/// model shape and differ in tuning (Spark: faster startup, torrent
/// broadcast, tighter JVM memory fraction), which yields the visibly
/// different switch-point curves of Fig. 9(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    Hive,
    Spark,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Hive => write!(f, "Hive"),
            EngineKind::Spark => write!(f, "SparkSQL"),
        }
    }
}

/// Join implementation under study (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinImpl {
    /// Shuffle sort-merge join.
    SortMerge,
    /// Broadcast hash join (Hive map join).
    BroadcastHash,
}

impl JoinImpl {
    pub const ALL: [JoinImpl; 2] = [JoinImpl::SortMerge, JoinImpl::BroadcastHash];

    /// The paper's abbreviations.
    pub fn abbrev(&self) -> &'static str {
        match self {
            JoinImpl::SortMerge => "SMJ",
            JoinImpl::BroadcastHash => "BHJ",
        }
    }
}

impl std::fmt::Display for JoinImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// BHJ ran out of memory: the build relation's hash table does not fit in a
/// container. Carries the sizes for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OomError {
    pub build_gb: f64,
    pub capacity_gb: f64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "broadcast hash table of {:.2} GB exceeds container capacity {:.2} GB",
            self.build_gb, self.capacity_gb
        )
    }
}

impl std::error::Error for OomError {}

/// Calibration parameters of the engine model. All bandwidths are effective
/// GB/s (they fold in decode, serialization, and I/O overlap).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineTuning {
    /// Per-container effective scan/spill rate (GB/s).
    pub disk_bw: f64,
    /// Per-container shuffle network rate (GB/s).
    pub net_bw: f64,
    /// Aggregate broadcast distribution rate (GB/s) — shared, so broadcast
    /// cost grows with the number of receivers.
    pub broadcast_bw: f64,
    /// Hash-table build rate (GB/s) at zero memory pressure.
    pub build_bw: f64,
    /// Fraction of a container usable for the hash table / sort buffer.
    pub mem_fraction: f64,
    /// In-memory bytes per input byte of the hash table.
    pub hash_expansion: f64,
    /// Memory-pressure level where the build penalty starts.
    pub pressure_knee: f64,
    /// Quadratic penalty scale at 100 % pressure.
    pub pressure_slope: f64,
    /// Fraction of a container usable as sort buffer.
    pub sort_fraction: f64,
    /// External-merge fan-in.
    pub sort_fanin: f64,
    /// Per-stage startup latency (seconds); each join has two stages.
    pub startup_sec: f64,
    /// Cores per container the 2-D calibration assumes (the paper's VMs
    /// have 4 cores). `join_time` uses this implicitly; the 3-D entry
    /// point [`Engine::join_time_with_cores`] scales around it.
    pub default_cores: f64,
    /// Fraction of per-container processing that is CPU-bound (decode,
    /// hashing, comparisons) and therefore scales with cores; the rest is
    /// I/O-bound and does not.
    pub cpu_fraction: f64,
}

impl EngineTuning {
    /// Hive-on-Tez preset. Calibrated against §III:
    /// * Fig. 3(a): 5.1 GB build, 77 GB probe, 10 containers → BHJ OOMs
    ///   below 5 GB containers and overtakes SMJ around 7 GB;
    /// * Fig. 3(b): 3.4 GB build, 3 GB containers → BHJ wins below ~20
    ///   containers, SMJ is ≥ 1.5× faster at 40;
    /// * Fig. 4(a): the BHJ/SMJ switch point over build size sits at the OOM
    ///   boundary (~3.4 GB) for 3 GB containers and near 6.4 GB for 9 GB.
    pub fn hive() -> Self {
        EngineTuning {
            disk_bw: 0.0101,
            net_bw: 0.025,
            broadcast_bw: 0.4,
            build_bw: 0.0537,
            mem_fraction: 0.92,
            hash_expansion: 0.80,
            pressure_knee: 0.4,
            pressure_slope: 9.0,
            sort_fraction: 1.0,
            sort_fanin: 10.0,
            startup_sec: 5.0,
            default_cores: 4.0,
            cpu_fraction: 0.5,
        }
    }

    /// SparkSQL preset: lower startup, faster scans (whole-stage codegen),
    /// torrent broadcast (cheaper per receiver), but a tighter usable memory
    /// fraction (JVM executor memory), so BHJ OOMs earlier relative to
    /// container size — Fig. 9(b)'s curves sit below Fig. 9(a)'s.
    pub fn spark() -> Self {
        EngineTuning {
            disk_bw: 0.013,
            net_bw: 0.03,
            broadcast_bw: 0.8,
            build_bw: 0.06,
            mem_fraction: 0.60,
            hash_expansion: 0.85,
            pressure_knee: 0.35,
            pressure_slope: 8.0,
            sort_fraction: 0.6,
            sort_fanin: 10.0,
            startup_sec: 2.0,
            default_cores: 4.0,
            cpu_fraction: 0.6,
        }
    }

    pub fn for_kind(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Hive => EngineTuning::hive(),
            EngineKind::Spark => EngineTuning::spark(),
        }
    }
}

/// One join stage of a simulated DAG: sizes in GB plus the chosen
/// implementation. Joins sit at shuffle boundaries (§VI-B assumption), so a
/// plan's execution time is the sum of its stages'.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimJoinStage {
    pub join: JoinImpl,
    /// Smaller (build) input in GB.
    pub small_gb: f64,
    /// Larger (probe) input in GB.
    pub large_gb: f64,
}

/// The simulated engine: a kind plus tuning.
///
/// ```
/// use raqo_sim::engine::{Engine, JoinImpl};
///
/// let hive = Engine::hive();
/// // The §III-A finding: broadcasting a 5.1 GB table needs ≥5 GB containers...
/// assert!(hive.join_time(JoinImpl::BroadcastHash, 5.1, 77.0, 10.0, 4.0).is_err());
/// // ...and beats the shuffle join once memory is plentiful.
/// let bhj = hive.join_time(JoinImpl::BroadcastHash, 5.1, 77.0, 10.0, 9.0).unwrap();
/// let smj = hive.join_time(JoinImpl::SortMerge, 5.1, 77.0, 10.0, 9.0).unwrap();
/// assert!(bhj < smj);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Engine {
    pub kind: EngineKind,
    pub tuning: EngineTuning,
}

impl Engine {
    pub fn hive() -> Self {
        Engine { kind: EngineKind::Hive, tuning: EngineTuning::hive() }
    }

    pub fn spark() -> Self {
        Engine { kind: EngineKind::Spark, tuning: EngineTuning::spark() }
    }

    pub fn new(kind: EngineKind) -> Self {
        Engine { kind, tuning: EngineTuning::for_kind(kind) }
    }

    /// Largest build relation (GB) a BHJ can hold in a container of
    /// `cs` GB — the OOM boundary.
    pub fn bhj_capacity_gb(&self, cs: f64) -> f64 {
        cs * self.tuning.mem_fraction / self.tuning.hash_expansion
    }

    /// Execution time (seconds) of one join of the given implementation
    /// with build size `ss`, probe size `ls` (GB) on `nc` containers of
    /// `cs` GB and the calibration-default core count. BHJ returns
    /// [`OomError`] when the build side does not fit.
    pub fn join_time(
        &self,
        join: JoinImpl,
        ss: f64,
        ls: f64,
        nc: f64,
        cs: f64,
    ) -> Result<f64, OomError> {
        self.join_time_with_cores(join, ss, ls, nc, cs, self.tuning.default_cores)
    }

    /// The three-dimensional resource space of §III's "our experiments can
    /// naturally be extended to include other resources, such as CPU":
    /// like [`Engine::join_time`] but with an explicit per-container core
    /// count. The CPU-bound share of per-container processing
    /// ([`EngineTuning::cpu_fraction`]) scales with cores; I/O, network,
    /// and startup do not. At `cores == default_cores` this is exactly the
    /// 2-D model.
    pub fn join_time_with_cores(
        &self,
        join: JoinImpl,
        ss: f64,
        ls: f64,
        nc: f64,
        cs: f64,
        cores: f64,
    ) -> Result<f64, OomError> {
        assert!(ss >= 0.0 && ls >= 0.0, "relation sizes must be non-negative");
        assert!(nc >= 1.0, "need at least one container, got {nc}");
        assert!(cs > 0.0, "container size must be positive, got {cs}");
        assert!(cores >= 1.0, "need at least one core, got {cores}");
        let factor = self.cpu_factor(cores);
        // The cost model treats `ss` as the build/broadcast side; calling
        // conventions upstream guarantee ss <= ls, but the model itself is
        // well defined either way.
        match join {
            JoinImpl::BroadcastHash => self.bhj_time(ss, ls, nc, cs, factor),
            JoinImpl::SortMerge => Ok(self.smj_time(ss, ls, nc, cs, factor)),
        }
    }

    /// Slowdown/speedup multiplier for per-container processing at a given
    /// core count: 1.0 at the calibration default, rising toward
    /// `1 + cpu_fraction·(default − 1)` at one core, and approaching the
    /// I/O floor `1 − cpu_fraction·(1 − default/cores)` as cores grow
    /// (Amdahl on the CPU-bound share).
    pub fn cpu_factor(&self, cores: f64) -> f64 {
        let t = &self.tuning;
        1.0 + t.cpu_fraction * (t.default_cores / cores - 1.0)
    }

    fn bhj_time(&self, ss: f64, ls: f64, nc: f64, cs: f64, cpu: f64) -> Result<f64, OomError> {
        let t = &self.tuning;
        let capacity = self.bhj_capacity_gb(cs);
        if ss > capacity {
            return Err(OomError { build_gb: ss, capacity_gb: capacity });
        }
        let pressure = ss / capacity;
        let penalty = if pressure > t.pressure_knee {
            let u = (pressure - t.pressure_knee) / (1.0 - t.pressure_knee);
            1.0 + t.pressure_slope * u * u
        } else {
            1.0
        };
        let broadcast = ss * nc / t.broadcast_bw;
        let build = cpu * penalty * ss / t.build_bw;
        let probe = cpu * ls / (nc * t.disk_bw);
        Ok(2.0 * t.startup_sec + broadcast + build + probe)
    }

    fn smj_time(&self, ss: f64, ls: f64, nc: f64, cs: f64, cpu: f64) -> f64 {
        let t = &self.tuning;
        let per_container = (ls + ss) / nc;
        let buffer = cs * t.sort_fraction;
        let passes = sort_passes(per_container, buffer, t.sort_fanin);
        let scan = cpu * per_container / t.disk_bw;
        let shuffle = per_container / t.net_bw;
        // Only the bytes beyond the sort buffer are spilled and re-read on
        // each merge pass, so container size affects SMJ smoothly and only
        // mildly — "the performance of SMJ remains relatively stable".
        let spill = cpu * passes * (per_container - buffer).max(0.0) / t.disk_bw;
        2.0 * t.startup_sec + scan + shuffle + spill
    }

    /// Execution time of a multi-stage plan (sum over shuffle-boundary
    /// stages, §VI-B: joins "could have resource configurations allocated
    /// independently"). Fails if any BHJ stage OOMs.
    pub fn run_stages(&self, stages: &[SimJoinStage], nc: f64, cs: f64) -> Result<f64, OomError> {
        stages
            .iter()
            .map(|s| self.join_time(s.join, s.small_gb, s.large_gb, nc, cs))
            .sum()
    }

    /// A chain of broadcast hash joins fused into one scan stage — Hive
    /// pipelines consecutive map joins inside the same mapper, so the probe
    /// relation is read **once** through all hash tables (this is what
    /// makes the paper's Fig. 5 "plan 1", two BHJs over lineitem, fast).
    ///
    /// All build relations must fit in a container *together*; pressure is
    /// computed from their combined occupancy.
    pub fn map_join_chain_time(
        &self,
        builds_gb: &[f64],
        probe_gb: f64,
        nc: f64,
        cs: f64,
    ) -> Result<f64, OomError> {
        assert!(!builds_gb.is_empty(), "a map-join chain needs at least one build side");
        assert!(nc >= 1.0 && cs > 0.0);
        let t = &self.tuning;
        let total_build: f64 = builds_gb.iter().sum();
        let capacity = self.bhj_capacity_gb(cs);
        if total_build > capacity {
            return Err(OomError { build_gb: total_build, capacity_gb: capacity });
        }
        let pressure = total_build / capacity;
        let penalty = if pressure > t.pressure_knee {
            let u = (pressure - t.pressure_knee) / (1.0 - t.pressure_knee);
            1.0 + t.pressure_slope * u * u
        } else {
            1.0
        };
        let broadcast: f64 = builds_gb.iter().map(|b| b * nc / t.broadcast_bw).sum();
        let build = penalty * total_build / t.build_bw;
        let probe = probe_gb / (nc * t.disk_bw);
        Ok(2.0 * t.startup_sec + broadcast + build + probe)
    }

    /// The faster feasible implementation for one join, or `None` when
    /// neither runs (cannot happen: SMJ always runs).
    pub fn best_join(&self, ss: f64, ls: f64, nc: f64, cs: f64) -> (JoinImpl, f64) {
        let cpu = self.cpu_factor(self.tuning.default_cores);
        let smj = self.smj_time(ss, ls, nc, cs, cpu);
        match self.bhj_time(ss, ls, nc, cs, cpu) {
            Ok(bhj) if bhj < smj => (JoinImpl::BroadcastHash, bhj),
            _ => (JoinImpl::SortMerge, smj),
        }
    }
}

/// Number of extra external-merge passes for `data` GB with a `buffer` GB
/// sort buffer and the given fan-in.
fn sort_passes(data: f64, buffer: f64, fanin: f64) -> f64 {
    if data <= buffer || buffer <= 0.0 {
        return 0.0;
    }
    (data / buffer).log(fanin).ceil().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINEITEM_GB: f64 = 77.0; // the paper's "large size table = 77G"

    fn hive() -> Engine {
        Engine::hive()
    }

    #[test]
    fn sort_passes_boundaries() {
        assert_eq!(sort_passes(1.0, 2.0, 10.0), 0.0);
        assert_eq!(sort_passes(2.0, 2.0, 10.0), 0.0);
        assert_eq!(sort_passes(3.0, 2.0, 10.0), 1.0);
        assert_eq!(sort_passes(25.0, 2.0, 10.0), 2.0); // log10(12.5) in (1,2]
        assert_eq!(sort_passes(1.0, 0.0, 10.0), 0.0); // degenerate buffer
    }

    // ---- Fig. 3(a): container-size sweep, 5.1 GB orders, 10 containers ---

    #[test]
    fn fig3a_bhj_oom_below_5gb_containers() {
        let e = hive();
        for cs in [1.0, 2.0, 3.0, 4.0] {
            assert!(
                e.join_time(JoinImpl::BroadcastHash, 5.1, LINEITEM_GB, 10.0, cs).is_err(),
                "BHJ should OOM at cs={cs}"
            );
        }
        assert!(e.join_time(JoinImpl::BroadcastHash, 5.1, LINEITEM_GB, 10.0, 5.0).is_ok());
    }

    #[test]
    fn fig3a_switch_point_between_5_and_9_gb() {
        // "SMJ outperforms BHJ for container sizes up to 7 GB, while BHJ is
        // better for bigger container sizes." Allow the crossover anywhere
        // in (5, 9).
        let e = hive();
        let smj5 = e.join_time(JoinImpl::SortMerge, 5.1, LINEITEM_GB, 10.0, 5.0).unwrap();
        let bhj5 = e.join_time(JoinImpl::BroadcastHash, 5.1, LINEITEM_GB, 10.0, 5.0).unwrap();
        assert!(smj5 < bhj5, "SMJ must win at 5 GB: smj={smj5:.0} bhj={bhj5:.0}");

        let smj10 = e.join_time(JoinImpl::SortMerge, 5.1, LINEITEM_GB, 10.0, 10.0).unwrap();
        let bhj10 = e.join_time(JoinImpl::BroadcastHash, 5.1, LINEITEM_GB, 10.0, 10.0).unwrap();
        assert!(bhj10 < smj10, "BHJ must win at 10 GB: smj={smj10:.0} bhj={bhj10:.0}");
    }

    #[test]
    fn fig3a_bhj_improves_with_container_size_smj_stays_stable() {
        let e = hive();
        let bhj = |cs: f64| e.join_time(JoinImpl::BroadcastHash, 5.1, LINEITEM_GB, 10.0, cs).unwrap();
        let smj = |cs: f64| e.join_time(JoinImpl::SortMerge, 5.1, LINEITEM_GB, 10.0, cs).unwrap();
        assert!(bhj(5.0) > bhj(7.0) && bhj(7.0) > bhj(10.0), "BHJ must improve with memory");
        // SMJ varies by at most ~50% across the sweep ("relatively
        // stable", vs BHJ's OOM-to-fast swing).
        let (lo, hi) = (3..=10).map(|c| smj(c as f64)).fold(
            (f64::INFINITY, 0.0f64),
            |(lo, hi), v| (lo.min(v), hi.max(v)),
        );
        assert!(hi / lo < 1.55, "SMJ spread too wide: {lo:.0}..{hi:.0}");
    }

    #[test]
    fn fig3a_magnitudes_are_paper_scale() {
        // The paper's Fig. 3 y-axis spans a few hundred to ~2000 seconds.
        let e = hive();
        for cs in 5..=10 {
            let bhj =
                e.join_time(JoinImpl::BroadcastHash, 5.1, LINEITEM_GB, 10.0, cs as f64).unwrap();
            let smj = e.join_time(JoinImpl::SortMerge, 5.1, LINEITEM_GB, 10.0, cs as f64).unwrap();
            assert!((200.0..3000.0).contains(&bhj), "bhj({cs})={bhj:.0}");
            assert!((200.0..3000.0).contains(&smj), "smj({cs})={smj:.0}");
        }
    }

    // ---- Fig. 3(b): container-count sweep, 3.4 GB orders, 3 GB containers

    #[test]
    fn fig3b_bhj_wins_low_parallelism_smj_wins_high() {
        let e = hive();
        let at = |imp, nc: f64| e.join_time(imp, 3.4, LINEITEM_GB, nc, 3.0).unwrap();
        // "BHJ is better than SMJ for less than 20 containers"
        assert!(
            at(JoinImpl::BroadcastHash, 10.0) < at(JoinImpl::SortMerge, 10.0),
            "BHJ must win at 10 containers"
        );
        // "...SMJ benefits more from increased parallelism and is twice
        // faster than BHJ for 40 containers" — require at least 1.5x.
        let smj40 = at(JoinImpl::SortMerge, 40.0);
        let bhj40 = at(JoinImpl::BroadcastHash, 40.0);
        assert!(
            bhj40 > 1.5 * smj40,
            "SMJ must be >=1.5x faster at 40 containers: smj={smj40:.0} bhj={bhj40:.0}"
        );
    }

    #[test]
    fn fig3b_switch_point_near_20_containers() {
        let e = hive();
        let mut switch = None;
        for nc in 5..=45 {
            let nc = nc as f64;
            let smj = e.join_time(JoinImpl::SortMerge, 3.4, LINEITEM_GB, nc, 3.0).unwrap();
            let bhj = e.join_time(JoinImpl::BroadcastHash, 3.4, LINEITEM_GB, nc, 3.0).unwrap();
            if smj < bhj {
                switch = Some(nc);
                break;
            }
        }
        let switch = switch.expect("SMJ must eventually win");
        assert!(
            (10.0..=30.0).contains(&switch),
            "switch at {switch} containers, paper reports ~20"
        );
    }

    // ---- Fig. 4(a): switch point over data size moves with memory -------

    #[test]
    fn fig4a_oom_cutoff_tracks_container_size() {
        let e = hive();
        // 3 GB containers hold up to ~3.45 GB ("BHJ runs out of memory
        // after [3.4 GB]"), 9 GB hold ~10.35 GB.
        let cap3 = e.bhj_capacity_gb(3.0);
        assert!((3.2..3.7).contains(&cap3), "cap(3GB)={cap3:.2}");
        let cap9 = e.bhj_capacity_gb(9.0);
        assert!((9.5..11.2).contains(&cap9), "cap(9GB)={cap9:.2}");
    }

    #[test]
    fn fig4a_switch_point_grows_with_container_size() {
        // At 3 GB containers the switch point is the OOM bound (~3.4 GB);
        // at 9 GB it is a genuine performance crossover near 6.4 GB.
        let e = hive();
        let switch_at = |cs: f64| -> f64 {
            let mut ss = 0.2;
            while ss < 12.0 {
                match e.join_time(JoinImpl::BroadcastHash, ss, LINEITEM_GB, 10.0, cs) {
                    Err(_) => return ss, // OOM bound
                    Ok(bhj) => {
                        let smj = e.join_time(JoinImpl::SortMerge, ss, LINEITEM_GB, 10.0, cs).unwrap();
                        if bhj > smj {
                            return ss;
                        }
                    }
                }
                ss += 0.2;
            }
            12.0
        };
        let s3 = switch_at(3.0);
        let s9 = switch_at(9.0);
        assert!((2.5..=4.5).contains(&s3), "switch(3GB)={s3:.1}, paper ~3.4");
        assert!((5.0..=8.5).contains(&s9), "switch(9GB)={s9:.1}, paper ~6.4");
        assert!(s9 > s3, "switch point must grow with container size");
    }

    // ---- Basic properties ----------------------------------------------

    #[test]
    fn times_monotone_in_probe_size() {
        let e = hive();
        for imp in JoinImpl::ALL {
            let t1 = e.join_time(imp, 1.0, 10.0, 10.0, 8.0).unwrap();
            let t2 = e.join_time(imp, 1.0, 20.0, 10.0, 8.0).unwrap();
            assert!(t2 > t1, "{imp} not monotone in probe size");
        }
    }

    #[test]
    fn smj_never_ooms() {
        let e = hive();
        assert!(e.join_time(JoinImpl::SortMerge, 500.0, 5000.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn oom_error_reports_sizes() {
        let e = hive();
        let err = e.join_time(JoinImpl::BroadcastHash, 10.0, 77.0, 10.0, 2.0).unwrap_err();
        assert_eq!(err.build_gb, 10.0);
        assert!(err.capacity_gb < 10.0);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn best_join_prefers_feasible_faster() {
        let e = hive();
        // Tiny build side: BHJ clearly wins.
        let (imp, _) = e.best_join(0.05, LINEITEM_GB, 10.0, 4.0);
        assert_eq!(imp, JoinImpl::BroadcastHash);
        // Infeasible BHJ: SMJ chosen.
        let (imp, _) = e.best_join(10.0, LINEITEM_GB, 10.0, 2.0);
        assert_eq!(imp, JoinImpl::SortMerge);
    }

    #[test]
    fn run_stages_sums_and_propagates_oom() {
        let e = hive();
        let s1 = SimJoinStage { join: JoinImpl::BroadcastHash, small_gb: 0.5, large_gb: 20.0 };
        let s2 = SimJoinStage { join: JoinImpl::SortMerge, small_gb: 2.0, large_gb: 20.0 };
        let total = e.run_stages(&[s1, s2], 10.0, 6.0).unwrap();
        let t1 = e.join_time(s1.join, s1.small_gb, s1.large_gb, 10.0, 6.0).unwrap();
        let t2 = e.join_time(s2.join, s2.small_gb, s2.large_gb, 10.0, 6.0).unwrap();
        assert!((total - (t1 + t2)).abs() < 1e-9);

        let oom = SimJoinStage { join: JoinImpl::BroadcastHash, small_gb: 50.0, large_gb: 60.0 };
        assert!(e.run_stages(&[s1, oom], 10.0, 6.0).is_err());
    }

    #[test]
    fn map_join_chain_reads_probe_once() {
        // Chaining two BHJs must beat running them as two stages (the
        // intermediate never hits disk again).
        let e = hive();
        let chained = e.map_join_chain_time(&[0.8, 2.5], 77.0, 10.0, 8.0).unwrap();
        let staged = e.join_time(JoinImpl::BroadcastHash, 0.8, 77.0, 10.0, 8.0).unwrap()
            + e.join_time(JoinImpl::BroadcastHash, 2.5, 80.0, 10.0, 8.0).unwrap();
        assert!(chained < staged, "chained={chained:.0} staged={staged:.0}");
    }

    #[test]
    fn map_join_chain_oom_uses_combined_build_size() {
        let e = hive();
        // Each side fits alone in 3 GB (capacity ~3.45) but not together.
        assert!(e.map_join_chain_time(&[2.0], 77.0, 10.0, 3.0).is_ok());
        assert!(e.map_join_chain_time(&[2.0, 2.0], 77.0, 10.0, 3.0).is_err());
        assert!(e.map_join_chain_time(&[2.0, 2.0], 77.0, 10.0, 6.0).is_ok());
    }

    #[test]
    fn single_element_chain_matches_bhj() {
        let e = hive();
        let chain = e.map_join_chain_time(&[1.5], 40.0, 10.0, 6.0).unwrap();
        let bhj = e.join_time(JoinImpl::BroadcastHash, 1.5, 40.0, 10.0, 6.0).unwrap();
        assert!((chain - bhj).abs() < 1e-9);
    }

    #[test]
    fn spark_preset_differs_from_hive() {
        let hive = Engine::hive();
        let spark = Engine::spark();
        // Spark's tighter memory fraction -> smaller BHJ capacity per GB.
        assert!(spark.bhj_capacity_gb(4.0) < hive.bhj_capacity_gb(4.0));
        // Same join, different engines, different times.
        let th = hive.join_time(JoinImpl::SortMerge, 2.0, 40.0, 10.0, 4.0).unwrap();
        let ts = spark.join_time(JoinImpl::SortMerge, 2.0, 40.0, 10.0, 4.0).unwrap();
        assert_ne!(th, ts);
    }

    #[test]
    fn default_cores_reproduce_the_2d_model() {
        let e = hive();
        let a = e.join_time(JoinImpl::SortMerge, 3.4, 77.0, 20.0, 3.0).unwrap();
        let b = e
            .join_time_with_cores(JoinImpl::SortMerge, 3.4, 77.0, 20.0, 3.0, 4.0)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_cores_slow_down_more_cores_speed_up_sublinearly() {
        let e = hive();
        let at = |cores: f64| {
            e.join_time_with_cores(JoinImpl::SortMerge, 3.4, 77.0, 20.0, 3.0, cores).unwrap()
        };
        let (one, four, sixteen) = (at(1.0), at(4.0), at(16.0));
        assert!(one > four, "1 core must be slower than 4");
        assert!(sixteen < four, "16 cores must be faster than 4");
        // Amdahl: quadrupling cores 4→16 gains far less than 4→1 loses.
        assert!(four / sixteen < one / four);
        // And the I/O floor bounds the speedup: never below the non-CPU
        // share of the 4-core time.
        assert!(sixteen > four * (1.0 - e.tuning.cpu_fraction));
    }

    #[test]
    fn cpu_factor_shape() {
        let e = hive();
        assert!((e.cpu_factor(4.0) - 1.0).abs() < 1e-12);
        assert!(e.cpu_factor(1.0) > 2.0); // 1 + 0.5*(4-1) = 2.5
        assert!(e.cpu_factor(100.0) > 0.5 && e.cpu_factor(100.0) < 1.0);
    }

    #[test]
    fn cores_do_not_change_oom_boundaries() {
        let e = hive();
        for cores in [1.0, 4.0, 16.0] {
            assert!(e
                .join_time_with_cores(JoinImpl::BroadcastHash, 5.1, 77.0, 10.0, 4.0, cores)
                .is_err());
            assert!(e
                .join_time_with_cores(JoinImpl::BroadcastHash, 5.1, 77.0, 10.0, 6.0, cores)
                .is_ok());
        }
    }

    #[test]
    fn abbreviations_and_display() {
        assert_eq!(JoinImpl::SortMerge.abbrev(), "SMJ");
        assert_eq!(JoinImpl::BroadcastHash.abbrev(), "BHJ");
        assert_eq!(EngineKind::Hive.to_string(), "Hive");
        assert_eq!(EngineKind::Spark.to_string(), "SparkSQL");
    }

    #[test]
    #[should_panic(expected = "at least one container")]
    fn zero_containers_rejected() {
        hive().join_time(JoinImpl::SortMerge, 1.0, 2.0, 0.0, 1.0).ok();
    }
}
