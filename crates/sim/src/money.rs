//! Monetary cost of a run (§III-C).
//!
//! > "We consider the recent trend of serverless analytics, where the users
//! > only pay for the total container hours consumed by their analytical
//! > queries."
//!
//! The paper reports "total resources used" as memory × time (its Fig. 2
//! y-axis is labelled TB·sec) and "monetary cost" as a price proportional to
//! it. We expose the TB·second quantity directly and let callers apply a
//! $-rate; since both joins run on the *same* resource configuration in a
//! sweep, the switch points in money coincide with the switch points in
//! time while the absolute values scale with `nc · cs` — exactly the §III-C
//! observation ("while the switching points remain the same, the absolute
//! values of monetary value change very differently").

/// Resources consumed by a run, in TB·seconds: `nc` containers of `cs` GB
/// held for `time_sec` seconds.
pub fn monetary_cost_tb_sec(time_sec: f64, nc: f64, cs_gb: f64) -> f64 {
    assert!(time_sec >= 0.0 && nc >= 0.0 && cs_gb >= 0.0);
    time_sec * nc * cs_gb / 1024.0
}

/// Dollar cost at a given price per TB·second (serverless billing).
pub fn dollars(time_sec: f64, nc: f64, cs_gb: f64, price_per_tb_sec: f64) -> f64 {
    monetary_cost_tb_sec(time_sec, nc, cs_gb) * price_per_tb_sec
}

/// Memory-equivalent price of one core, in GB: serverless SKUs bundle CPU
/// with memory at roughly this exchange rate (e.g. 1 vCPU ≈ 2 GB steps in
/// common container SKUs). Used by three-dimensional resource planning.
pub const CORE_GB_EQUIVALENT: f64 = 2.0;

/// TB·second-equivalent cost of a run that also holds `cores` CPU cores
/// per container: memory plus the cores' memory-equivalent.
pub fn monetary_cost_with_cores(time_sec: f64, nc: f64, cs_gb: f64, cores: f64) -> f64 {
    assert!(cores >= 0.0);
    monetary_cost_tb_sec(time_sec, nc, cs_gb + CORE_GB_EQUIVALENT * cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, JoinImpl};

    #[test]
    fn tb_seconds_arithmetic() {
        // 10 containers x 10 GB for 1024 s = 100 GB * 1024 s = 100 TB*s.
        assert!((monetary_cost_tb_sec(1024.0, 10.0, 10.0) - 100.0).abs() < 1e-9);
        assert_eq!(monetary_cost_tb_sec(0.0, 10.0, 10.0), 0.0);
    }

    #[test]
    fn dollars_scale_linearly_with_price() {
        let a = dollars(100.0, 10.0, 4.0, 1.0);
        let b = dollars(100.0, 10.0, 4.0, 2.5);
        assert!((b / a - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fig6_monetary_switch_points_match_time_switch_points() {
        // §III-C: on a shared resource sweep, the cheaper join in time is
        // the cheaper join in money at every point, because money is a
        // positive multiple of time at fixed (nc, cs).
        let e = Engine::hive();
        for cs in 5..=10 {
            let cs = cs as f64;
            let smj_t = e.join_time(JoinImpl::SortMerge, 5.1, 77.0, 10.0, cs).unwrap();
            let bhj_t = e.join_time(JoinImpl::BroadcastHash, 5.1, 77.0, 10.0, cs).unwrap();
            let smj_m = monetary_cost_tb_sec(smj_t, 10.0, cs);
            let bhj_m = monetary_cost_tb_sec(bhj_t, 10.0, cs);
            assert_eq!(smj_t < bhj_t, smj_m < bhj_m, "winner flipped at cs={cs}");
        }
    }

    #[test]
    fn fig6_absolute_money_grows_with_resources_even_when_time_shrinks() {
        // §III-C: "the absolute values of monetary value change very
        // differently" — BHJ gets faster with bigger containers, but the
        // bill can still grow because you pay for the extra memory.
        let e = Engine::hive();
        let t6 = e.join_time(JoinImpl::BroadcastHash, 5.1, 77.0, 10.0, 6.0).unwrap();
        let t10 = e.join_time(JoinImpl::BroadcastHash, 5.1, 77.0, 10.0, 10.0).unwrap();
        assert!(t10 < t6, "BHJ should speed up with memory");
        let m6 = monetary_cost_tb_sec(t6, 10.0, 6.0);
        let m10 = monetary_cost_tb_sec(t10, 10.0, 10.0);
        // Speedup from 6->10 GB is < 10/6, so money increases.
        assert!(m10 > m6, "money should grow: m6={m6:.2} m10={m10:.2}");
    }
}
