//! # raqo-faults — deterministic fault injection
//!
//! A zero-dependency injector for chaos-testing the planning stack. Library
//! crates expose named *probe sites* (e.g. `cost.model.scalar`,
//! `resource.worker.grid`); tests arm faults against a substring pattern and
//! the Nth matching probe fires the fault. Everything is deterministic: no
//! clocks, no RNG — the only "randomness" is a caller-supplied seed fed to a
//! fixed LCG, so a failing chaos run replays exactly.
//!
//! The injector is process-global (worker threads spawned by the planners
//! must see faults armed by the test thread) and disarmed by default; the
//! disarmed fast path is a single relaxed atomic load. Probe sites are only
//! compiled into consumers under `cfg(test)` or their `faults` cargo
//! feature, so production library builds carry no probes at all.
//!
//! Concurrency note: the injector is shared state. Chaos tests that arm
//! faults must serialize themselves (e.g. behind a `Mutex`) and disarm when
//! done; see `crates/bench/tests/chaos.rs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The probe site reports failure (the caller maps this to its local
    /// notion of failure: infeasible cost, `Err`, `None`, ...).
    Fail,
    /// Sleep for the given duration inside `probe` (models a stall; used to
    /// trip wall-clock deadlines deterministically).
    Delay(Duration),
    /// The caller substitutes NaN for the value it was about to produce
    /// (models a learned cost model emitting garbage).
    Nan,
    /// `probe` panics (models a crashed worker thread).
    Panic,
}

/// What a probe site should do, as decided by the injector. `Delay` and
/// `Panic` faults are executed inside [`probe`] itself (so the panic
/// originates on the probing thread); callers only ever see `Proceed`,
/// `Fail`, or `Nan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    Proceed,
    Fail,
    Nan,
}

/// An armed fault: fires at the `nth` probe whose site name contains
/// `pattern` (1-based), once — or at every matching probe from the `nth`
/// on when `repeat` is set.
#[derive(Debug, Clone)]
pub struct Fault {
    pub pattern: String,
    pub kind: FaultKind,
    pub nth: u64,
    pub repeat: bool,
}

impl Fault {
    /// One-shot fault at the first matching probe.
    pub fn once(pattern: impl Into<String>, kind: FaultKind) -> Self {
        Fault { pattern: pattern.into(), kind, nth: 1, repeat: false }
    }

    /// One-shot fault at the `nth` matching probe (1-based).
    pub fn at(pattern: impl Into<String>, kind: FaultKind, nth: u64) -> Self {
        Fault { pattern: pattern.into(), kind, nth: nth.max(1), repeat: false }
    }

    /// Repeating fault: fires at every matching probe from the `nth` on.
    pub fn repeating(pattern: impl Into<String>, kind: FaultKind) -> Self {
        Fault { pattern: pattern.into(), kind, nth: 1, repeat: true }
    }

    /// Seed-deterministic placement: fires once at probe
    /// `1 + lcg(seed) % window`.
    pub fn seeded(pattern: impl Into<String>, kind: FaultKind, seed: u64, window: u64) -> Self {
        let nth = 1 + lcg(seed) % window.max(1);
        Fault::at(pattern, kind, nth)
    }
}

struct Armed {
    fault: Fault,
    /// Matching probes seen so far.
    hits: u64,
    /// Times this fault has fired.
    fired: u64,
}

static ARMED_ANY: AtomicBool = AtomicBool::new(false);
static FIRED_TOTAL: AtomicU64 = AtomicU64::new(0);
static FAULTS: Mutex<Vec<Armed>> = Mutex::new(Vec::new());

fn faults() -> std::sync::MutexGuard<'static, Vec<Armed>> {
    // A panic fault fires while this lock is held by design (the probing
    // thread panics inside `probe`); recover the poisoned guard.
    FAULTS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm a fault. Faults accumulate until [`disarm_all`].
pub fn arm(fault: Fault) {
    faults().push(Armed { fault, hits: 0, fired: 0 });
    ARMED_ANY.store(true, Ordering::SeqCst);
}

/// Disarm every fault and reset probe counters.
pub fn disarm_all() {
    faults().clear();
    ARMED_ANY.store(false, Ordering::SeqCst);
}

/// True if any fault is currently armed.
pub fn armed() -> bool {
    ARMED_ANY.load(Ordering::Relaxed)
}

/// Total number of faults fired since the last [`disarm_all`] (the counter
/// itself is monotone across the process; take deltas).
pub fn fired_total() -> u64 {
    FIRED_TOTAL.load(Ordering::Relaxed)
}

/// A probe site. Disarmed cost: one relaxed atomic load. When a `Delay`
/// fault matches, this sleeps; when a `Panic` fault matches, this panics
/// (message prefixed `raqo-faults:` so recovery paths can assert on it);
/// otherwise the caller receives the action to apply.
pub fn probe(site: &str) -> Action {
    if !ARMED_ANY.load(Ordering::Relaxed) {
        return Action::Proceed;
    }
    let kind = {
        let mut guard = faults();
        let mut hit: Option<FaultKind> = None;
        for armed in guard.iter_mut() {
            if !site.contains(armed.fault.pattern.as_str()) {
                continue;
            }
            armed.hits += 1;
            let due = if armed.fault.repeat {
                armed.hits >= armed.fault.nth
            } else {
                armed.fired == 0 && armed.hits == armed.fault.nth
            };
            if due && hit.is_none() {
                armed.fired += 1;
                hit = Some(armed.fault.kind);
            }
        }
        hit
    };
    match kind {
        None => Action::Proceed,
        Some(k) => {
            FIRED_TOTAL.fetch_add(1, Ordering::Relaxed);
            match k {
                FaultKind::Fail => Action::Fail,
                FaultKind::Nan => Action::Nan,
                FaultKind::Delay(d) => {
                    std::thread::sleep(d);
                    Action::Proceed
                }
                FaultKind::Panic => panic!("raqo-faults: injected panic at site `{site}`"),
            }
        }
    }
}

/// Matching probes seen for a pattern since arming (sums across faults with
/// that exact pattern string).
pub fn probes_seen(pattern: &str) -> u64 {
    faults()
        .iter()
        .filter(|a| a.fault.pattern == pattern)
        .map(|a| a.hits)
        .sum()
}

/// RAII guard: disarms all faults when dropped (even on panic), so a
/// failing chaos test cannot leak faults into the next one.
pub struct FaultGuard(());

impl FaultGuard {
    pub fn new() -> Self {
        FaultGuard(())
    }
}

impl Default for FaultGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Fixed 64-bit LCG (Knuth MMIX constants) — the crate's only "randomness",
/// fully determined by the seed.
fn lcg(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Deterministically byte-corrupt a file: truncate it to
/// `1 + lcg(seed) % (len/2)` bytes and XOR the last surviving byte with
/// 0xA5. Guaranteed to structurally break any JSON document longer than a
/// couple of bytes; same seed, same corruption.
pub fn corrupt_file(path: &std::path::Path, seed: u64) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        bytes = vec![0xA5];
    } else {
        let keep = (1 + lcg(seed) % ((bytes.len() as u64 / 2).max(1))) as usize;
        bytes.truncate(keep);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xA5;
    }
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    // The injector is process-global; serialize these tests.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_probe_proceeds() {
        let _l = lock();
        let _g = FaultGuard::new();
        assert_eq!(probe("anything"), Action::Proceed);
    }

    #[test]
    fn nth_probe_fires_once() {
        let _l = lock();
        let _g = FaultGuard::new();
        arm(Fault::at("cost.model", FaultKind::Nan, 3));
        assert_eq!(probe("cost.model.scalar"), Action::Proceed);
        assert_eq!(probe("cost.model.scalar"), Action::Proceed);
        assert_eq!(probe("cost.model.scalar"), Action::Nan);
        assert_eq!(probe("cost.model.scalar"), Action::Proceed, "one-shot");
        assert_eq!(probes_seen("cost.model"), 4);
    }

    #[test]
    fn repeating_fault_fires_every_time() {
        let _l = lock();
        let _g = FaultGuard::new();
        arm(Fault::repeating("worker", FaultKind::Fail));
        assert_eq!(probe("resource.worker.grid"), Action::Fail);
        assert_eq!(probe("resource.worker.grid"), Action::Fail);
        assert_eq!(probe("unrelated.site"), Action::Proceed);
    }

    #[test]
    fn panic_fault_panics_and_lock_recovers() {
        let _l = lock();
        let _g = FaultGuard::new();
        arm(Fault::once("boom", FaultKind::Panic));
        let r = std::panic::catch_unwind(|| probe("worker.boom"));
        let msg = *r.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("raqo-faults"), "{msg}");
        // The injector stays usable after the panic (poison recovered).
        assert_eq!(probe("worker.boom"), Action::Proceed);
    }

    #[test]
    fn seeded_placement_is_deterministic() {
        let _l = lock();
        let a = Fault::seeded("x", FaultKind::Fail, 7, 100);
        let b = Fault::seeded("x", FaultKind::Fail, 7, 100);
        assert_eq!(a.nth, b.nth);
        assert!((1..=100).contains(&a.nth));
    }

    #[test]
    fn corrupt_file_is_deterministic_and_breaks_json() {
        let _l = lock();
        let dir = std::env::temp_dir();
        let p1 = dir.join("raqo_faults_corrupt_1.json");
        let p2 = dir.join("raqo_faults_corrupt_2.json");
        let body = br#"{"version":1,"entries":[1,2,3,4,5,6,7,8]}"#;
        std::fs::write(&p1, body).unwrap();
        std::fs::write(&p2, body).unwrap();
        corrupt_file(&p1, 99).unwrap();
        corrupt_file(&p2, 99).unwrap();
        let a = std::fs::read(&p1).unwrap();
        let b = std::fs::read(&p2).unwrap();
        assert_eq!(a, b, "same seed, same corruption");
        assert!(a.len() < body.len(), "truncated");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }
}
