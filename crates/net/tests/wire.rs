//! End-to-end wire tests: a real [`PlanServer`] on a loopback socket, real
//! [`PlanClient`]s, and raw sockets for the protocol-abuse cases. The
//! chaos suite (armed faults) lives in `crates/bench/tests/net_chaos.rs`;
//! everything here runs with the injector disarmed.

use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{
    PlanRequest, PlanningService, PlannerKind, Priority, RaqoOptimizer, ResourceStrategy,
    ServiceConfig, ShardedCacheBank,
};
use raqo_cost::SimOracleCost;
use raqo_net::{
    decode, ClientConfig, Decoded, ErrorCode, Frame, NetConfig, NetError, PlanClient, PlanServer,
    RequestFrame, DEFAULT_MAX_BODY, MAGIC, VERSION,
};
use raqo_resource::{CacheLookup, ClusterConditions};
use raqo_telemetry::{Counter, Telemetry};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_optimizer(_worker: usize) -> RaqoOptimizer<'static, SimOracleCost> {
    static MODEL: std::sync::OnceLock<SimOracleCost> = std::sync::OnceLock::new();
    static SCHEMA: std::sync::OnceLock<TpchSchema> = std::sync::OnceLock::new();
    let model = MODEL.get_or_init(SimOracleCost::hive);
    let schema = SCHEMA.get_or_init(|| TpchSchema::new(1.0));
    RaqoOptimizer::new(
        Arc::new(schema.catalog.clone()),
        Arc::new(schema.graph.clone()),
        model,
        ClusterConditions::paper_default(),
        PlannerKind::fast_randomized(7),
        ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.05 }),
    )
}

fn start_service(config: ServiceConfig, telemetry: Telemetry) -> Arc<PlanningService> {
    Arc::new(PlanningService::start(
        config,
        ShardedCacheBank::with_shards(8),
        telemetry,
        build_optimizer,
    ))
}

fn start_server(net: NetConfig, svc: ServiceConfig) -> (PlanServer, Telemetry) {
    let telemetry = Telemetry::enabled();
    let service = start_service(svc, telemetry.clone());
    let server = PlanServer::bind("127.0.0.1:0", net, service, telemetry.clone())
        .expect("bind loopback");
    (server, telemetry)
}

/// Frame reader over a raw socket: keeps a buffer across calls so frames
/// that coalesce into one `read` are not lost.
struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader { buf: Vec::new() }
    }

    fn next(&mut self, stream: &mut TcpStream) -> Option<Frame> {
        let mut chunk = [0u8; 4096];
        loop {
            match decode(&self.buf, DEFAULT_MAX_BODY) {
                Decoded::Frame(frame, consumed) => {
                    self.buf.drain(..consumed);
                    return Some(frame);
                }
                Decoded::Corrupt(_) => return None,
                Decoded::Incomplete { .. } => {}
            }
            match stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return None,
            }
        }
    }
}


/// Spin until `cond` holds or five seconds elapse.
fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

/// One-shot convenience for tests that expect a single frame.
fn read_frame(stream: &mut TcpStream) -> Option<Frame> {
    FrameReader::new().next(stream)
}

#[test]
fn wire_plans_match_in_process_planning_bit_for_bit() {
    let (server, _tel) = start_server(NetConfig::default(), ServiceConfig::default());
    let mut client = PlanClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    // In-process twin with its own bank: same factory, same budgets.
    let local = start_service(ServiceConfig::default(), Telemetry::disabled());

    for (query, priority) in [
        (QuerySpec::tpch_q12(), Priority::Interactive),
        (QuerySpec::tpch_q3(), Priority::Standard),
        (QuerySpec::tpch_q3(), Priority::Batch),
    ] {
        let wire = client.plan(&query, priority).expect("wire plan");
        assert!(!wire.shed);
        assert!(!wire.deadline_expired);
        let summary = wire.plan.as_ref().expect("plan summary decodes");
        assert!(summary.time_sec > 0.0);
        assert!(summary.cost > 0.0);

        let local_reply = local
            .submit(PlanRequest::new(query.clone(), priority))
            .wait();
        let local_json = serde_json::to_string(&local_reply.plan).unwrap();
        assert_eq!(
            wire.plan_json, local_json,
            "the wire answer must be byte-identical to in-process planning"
        );
    }
    server.shutdown();
}

#[test]
fn reply_carries_trace_id_and_timings() {
    let (server, _tel) = start_server(NetConfig::default(), ServiceConfig::default());
    let mut client = PlanClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    let reply = client.plan(&QuerySpec::tpch_q3(), Priority::Standard).unwrap();
    assert_ne!(reply.trace_id, 0, "enabled telemetry stamps a trace id into the frame");
    assert!(reply.service_us > 0);
    server.shutdown();
}

#[test]
fn expired_deadline_comes_back_annotated_not_stale() {
    // One worker and one dispatcher: queue a slow-ish request ahead so the
    // 1 ms deadline is long gone when the worker reaches it.
    let (server, _tel) = start_server(
        NetConfig { dispatchers: 1, ..NetConfig::default() },
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    );
    let addr = server.local_addr();
    // Pipeline a pile of cold-namespace batch requests on a raw socket (no
    // reads) so the single worker has real backlog when the deadline
    // request lands behind it.
    let mut ahead = TcpStream::connect(addr).unwrap();
    let mut backlog = Vec::new();
    for id in 0..32u64 {
        backlog.extend_from_slice(
            &RequestFrame {
                request_id: 500 + id,
                priority: Priority::Batch,
                namespace: 100 + id as u32,
                deadline_ms: 0,
                query: QuerySpec::tpch_q3(),
            }
            .encode(),
        );
    }
    ahead.write_all(&backlog).unwrap();
    // Let the backlog decode and enter the queues ahead of us.
    std::thread::sleep(Duration::from_millis(20));
    let mut client = PlanClient::connect(addr, ClientConfig::default()).unwrap();
    let reply = client
        .plan_with(&QuerySpec::tpch_q3(), Priority::Batch, 0, 1)
        .expect("an expired deadline still gets an answer");
    assert!(reply.deadline_expired, "queue wait must have consumed the 1 ms budget");
    let summary = reply.plan.expect("bottom-rung answer is still a plan");
    assert!(
        summary.degradation.is_some(),
        "expired-deadline plans are degradation-annotated"
    );
    drop(ahead);
    server.shutdown();
}

#[test]
fn same_request_id_is_deduped_from_the_reply_ring() {
    let (server, tel) = start_server(NetConfig::default(), ServiceConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frame = RequestFrame {
        request_id: 77,
        priority: Priority::Standard,
        namespace: 0,
        deadline_ms: 0,
        query: QuerySpec::tpch_q3(),
    }
    .encode();

    stream.write_all(&frame).unwrap();
    let first = match read_frame(&mut stream) {
        Some(Frame::Reply(r)) => r,
        other => panic!("expected a reply, got {other:?}"),
    };
    // The same id again — answered from the ring, byte-identical, and
    // counted as a dedup rather than planned twice.
    stream.write_all(&frame).unwrap();
    let second = match read_frame(&mut stream) {
        Some(Frame::Reply(r)) => r,
        other => panic!("expected a deduped reply, got {other:?}"),
    };
    assert_eq!(first, second, "ring replay returns the exact original reply");
    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetRepliesDeduped), 1);
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_then_close() {
    let (server, tel) = start_server(NetConfig::default(), ServiceConfig::default());

    // Garbage that isn't even magic.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    match read_frame(&mut stream) {
        Some(Frame::Error(e)) => assert_eq!(e.code, ErrorCode::BadMagic),
        other => panic!("garbage must earn a typed error, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(
        stream.read_to_end(&mut rest).unwrap_or(0),
        0,
        "after the error frame the server closes the connection"
    );

    // Right magic, hostile version.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(200); // version from the future
    bytes.push(1);
    bytes.extend_from_slice(&8u32.to_be_bytes());
    bytes.extend_from_slice(&[0u8; 8]);
    stream.write_all(&bytes).unwrap();
    match read_frame(&mut stream) {
        Some(Frame::Error(e)) => assert_eq!(e.code, ErrorCode::BadVersion),
        other => panic!("{other:?}"),
    }

    // Hostile length prefix: rejected from the header alone.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(1);
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    stream.write_all(&bytes).unwrap();
    match read_frame(&mut stream) {
        Some(Frame::Error(e)) => assert_eq!(e.code, ErrorCode::Oversized),
        other => panic!("{other:?}"),
    }

    // A valid header whose body is hostile JSON.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let body = b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0{\"name\":\"q\",\"relations\":[]}";
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(1);
    bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
    bytes.extend_from_slice(body);
    stream.write_all(&bytes).unwrap();
    match read_frame(&mut stream) {
        Some(Frame::Error(e)) => assert_eq!(e.code, ErrorCode::BadBody),
        other => panic!("{other:?}"),
    }

    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetFrameErrors), 4, "each abuse counted once");
    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_an_overloaded_frame() {
    let (server, tel) = start_server(
        NetConfig { max_connections: 1, ..NetConfig::default() },
        ServiceConfig::default(),
    );
    // Fill the only slot and prove it's live.
    let mut occupant = PlanClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    occupant.plan(&QuerySpec::tpch_q3(), Priority::Standard).unwrap();
    assert_eq!(server.live_connections(), 1);

    // The next connection is shed at accept with a typed reply.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match read_frame(&mut stream) {
        Some(Frame::Error(e)) => {
            assert_eq!(e.code, ErrorCode::Overloaded);
            assert_eq!(e.request_id, 0);
        }
        other => panic!("cap overflow must answer Overloaded, got {other:?}"),
    }
    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetShedConnCap), 1);
    server.shutdown();
}

#[test]
fn dispatch_overload_sheds_with_typed_replies_not_hangs() {
    // A dispatch queue of 1 and a deliberately wedged service (zero ticket
    // timeout answers WaitTimeout fast, but the queue only holds one):
    // burst requests on one socket and count typed answers.
    let (server, tel) = start_server(
        NetConfig {
            dispatchers: 1,
            dispatch_capacity: 1,
            ticket_timeout: Duration::from_secs(30),
            ..NetConfig::default()
        },
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let burst = 8u64;
    let mut bytes = Vec::new();
    for id in 0..burst {
        bytes.extend_from_slice(
            &RequestFrame {
                request_id: 1000 + id,
                priority: Priority::Standard,
                namespace: 0,
                deadline_ms: 0,
                query: QuerySpec::tpch_q3(),
            }
            .encode(),
        );
    }
    stream.write_all(&bytes).unwrap();
    let mut reader = FrameReader::new();
    let mut replies = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..burst {
        match reader.next(&mut stream) {
            Some(Frame::Reply(_)) => replies += 1,
            Some(Frame::Error(e)) if e.code == ErrorCode::Overloaded => overloaded += 1,
            other => panic!("every request gets a typed answer, got {other:?}"),
        }
    }
    assert_eq!(replies + overloaded, burst);
    assert!(overloaded > 0, "a 1-slot handoff under an 8-burst must shed");
    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetShedOverloaded), overloaded);
    server.shutdown();
}

#[test]
fn wedged_tickets_surface_as_wait_timeout_errors() {
    let (server, _tel) = start_server(
        NetConfig { ticket_timeout: Duration::ZERO, ..NetConfig::default() },
        ServiceConfig::default(),
    );
    let mut client = PlanClient::connect(
        server.local_addr(),
        ClientConfig { retries: 1, ..ClientConfig::default() },
    )
    .unwrap();
    match client.plan(&QuerySpec::tpch_q3(), Priority::Standard) {
        Err(NetError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 2);
            match *last {
                NetError::Server { code, .. } => assert_eq!(code, ErrorCode::WaitTimeout),
                other => panic!("{other}"),
            }
        }
        other => panic!("a zero ticket timeout must exhaust retries, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_working_ones_are_not() {
    let (server, tel) = start_server(
        NetConfig { idle_timeout: Duration::from_millis(80), ..NetConfig::default() },
        ServiceConfig::default(),
    );
    let mut client = PlanClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    client.plan(&QuerySpec::tpch_q3(), Priority::Standard).unwrap();
    assert_eq!(server.live_connections(), 1);
    // Planning kept the connection alive past several idle windows;
    // silence now gets it reaped.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.live_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.live_connections(), 0, "idle connection must be reaped");
    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetIdleReaped), 1);
    assert_eq!(
        snap.get(Counter::NetConnectionsOpened),
        snap.get(Counter::NetConnectionsClosed),
        "reaped connections are accounted closed"
    );
    server.shutdown();
}

#[test]
fn half_frame_slow_loris_is_reaped_with_a_torn_error() {
    // A peer that sends a valid prefix of a frame and then goes silent
    // (crash without FIN, deliberate slow loris) must not hold its
    // connection slot forever: the reaper takes it back on inactivity
    // alone, answering with a typed Torn error first.
    let (server, tel) = start_server(
        NetConfig { idle_timeout: Duration::from_millis(80), ..NetConfig::default() },
        ServiceConfig::default(),
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let full = RequestFrame {
        request_id: 5,
        priority: Priority::Standard,
        namespace: 0,
        deadline_ms: 0,
        query: QuerySpec::tpch_q3(),
    }
    .encode();
    // Header complete, body torn off: decodes as Incomplete forever.
    stream.write_all(&full[..12]).unwrap();

    assert!(
        wait_until(|| {
            let snap = tel.snapshot().unwrap();
            snap.get(Counter::NetConnectionsOpened) == 1
                && snap.get(Counter::NetConnectionsClosed) == 1
        }),
        "half-frame connection must be reaped"
    );
    assert_eq!(server.live_connections(), 0);
    match read_frame(&mut stream) {
        Some(Frame::Error(e)) => assert_eq!(e.code, ErrorCode::Torn),
        other => panic!("reap of a half-frame must answer Torn, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0, "reaped socket closes");
    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetIdleReaped), 1);
    assert_eq!(
        snap.get(Counter::NetConnectionsOpened),
        snap.get(Counter::NetConnectionsClosed),
    );
    server.shutdown();
}

#[test]
fn eof_mid_frame_is_answered_with_a_torn_error_frame() {
    // The peer's write side closes mid-frame: no more bytes are coming, so
    // the torn stream draws a typed error before the close — never silent.
    let (server, tel) = start_server(NetConfig::default(), ServiceConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let full = RequestFrame {
        request_id: 6,
        priority: Priority::Standard,
        namespace: 0,
        deadline_ms: 0,
        query: QuerySpec::tpch_q3(),
    }
    .encode();
    stream.write_all(&full[..full.len() - 3]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    match read_frame(&mut stream) {
        Some(Frame::Error(e)) => assert_eq!(e.code, ErrorCode::Torn),
        other => panic!("EOF mid-frame must answer Torn, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);
    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetFrameErrors), 1, "the torn stream is counted once");
    server.shutdown();
}

#[test]
fn slow_readers_are_shed_at_the_output_cap() {
    // A peer that sends requests but never reads its socket must not grow
    // the server's per-connection output buffer without bound: once the
    // buffered replies would pass `output_cap` the connection is dropped.
    let (server, tel) = start_server(
        // Smaller than any reply frame, so the very first completion
        // overflows deterministically without having to out-race the
        // kernel's socket buffers.
        NetConfig { output_cap: 64, ..NetConfig::default() },
        ServiceConfig::default(),
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(
            &RequestFrame {
                request_id: 8,
                priority: Priority::Standard,
                namespace: 0,
                deadline_ms: 0,
                query: QuerySpec::tpch_q3(),
            }
            .encode(),
        )
        .unwrap();
    // Monotonic counters, not `live_connections`: accept through shed can
    // all land inside one poll of this test's wait loop.
    assert!(
        wait_until(|| {
            let snap = tel.snapshot().unwrap();
            snap.get(Counter::NetConnectionsOpened) == 1
                && snap.get(Counter::NetConnectionsClosed) == 1
        }),
        "slow reader must be disconnected"
    );
    assert_eq!(server.live_connections(), 0);
    let snap = tel.snapshot().unwrap();
    assert_eq!(snap.get(Counter::NetShedSlowReader), 1);
    assert_eq!(
        snap.get(Counter::NetConnectionsOpened),
        snap.get(Counter::NetConnectionsClosed),
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_flushes_the_checkpoint_and_balances_the_books() {
    let path = std::env::temp_dir().join("raqo_net_drain_ckpt.json");
    std::fs::remove_file(&path).ok();
    let (server, tel) = start_server(
        NetConfig::default(),
        ServiceConfig {
            checkpoint_path: Some(path.clone()),
            model_fingerprint: Some(0xabc),
            ..ServiceConfig::default()
        },
    );
    let mut client = PlanClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    client.plan(&QuerySpec::tpch_q3(), Priority::Standard).unwrap();
    client.plan(&QuerySpec::tpch_q12(), Priority::Interactive).unwrap();
    server.shutdown(); // must not hang, must close everything

    let snap = tel.snapshot().unwrap();
    assert_eq!(
        snap.get(Counter::NetConnectionsOpened),
        snap.get(Counter::NetConnectionsClosed),
        "every opened connection is closed by drain"
    );
    // The drain flushed the shared bank: a restarted server loads it warm.
    let (loaded, invalidated) =
        ShardedCacheBank::load_checked_with_shards(&path, 0xabc, 8).unwrap();
    assert!(!invalidated);
    assert!(loaded.total_entries() > 0, "drain checkpoint carries the warm cache");
    std::fs::remove_file(&path).ok();
}

#[test]
fn client_retries_reconnect_after_the_server_drops_the_connection() {
    // The server reaps the client's idle connection; the next call's first
    // attempt hits the dead socket, and a bounded retry reconnects — same
    // request id throughout, so a duplicate answer would have been deduped.
    let (server, _tel) = start_server(
        NetConfig { idle_timeout: Duration::from_millis(60), ..NetConfig::default() },
        ServiceConfig::default(),
    );
    let tel = Telemetry::enabled();
    let mut client = PlanClient::connect(
        server.local_addr(),
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    )
    .unwrap()
    .with_telemetry(tel.clone());
    client.plan(&QuerySpec::tpch_q3(), Priority::Standard).unwrap();

    // Wait until the reaper has taken the connection out from under us.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.live_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.live_connections(), 0);

    let reply = client
        .plan(&QuerySpec::tpch_q3(), Priority::Standard)
        .expect("a retry must carry the call onto a fresh connection");
    assert!(reply.plan.is_some());
    let snap = tel.snapshot().unwrap();
    assert!(
        snap.get(Counter::NetClientRetries) >= 1,
        "the dead first connection must have cost at least one retry"
    );
    server.shutdown();
}
