//! Fault-injection probe shim (same pattern as `raqo-core`).
//!
//! With the `faults` cargo feature on, probes forward to `raqo-faults`; in
//! normal builds this compiles to a no-op enum and an `#[inline(always)]`
//! function returning `Proceed`, so production builds of the wire front end
//! carry no injection machinery at all.
//!
//! Sites exposed by this crate:
//! * `net.accept` — just after a connection is accepted;
//! * `net.read`  — before draining readable bytes from a connection;
//! * `net.write` — before flushing a connection's output buffer;
//! * `net.frame` — before decoding buffered bytes into frames.
//!
//! `Fail` at a site models a hard transport fault (reset / torn stream);
//! `Nan` models garbage on the wire (a corrupted byte); `Delay` stalls the
//! event loop mid-operation; `Panic` is recovered by the chaos harness.

#[cfg(feature = "faults")]
pub(crate) use raqo_faults::Action;

#[cfg(feature = "faults")]
#[inline]
pub(crate) fn probe(site: &str) -> Action {
    raqo_faults::probe(site)
}

#[cfg(not(feature = "faults"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(dead_code)] // mirror of raqo_faults::Action; only Proceed is built here
pub(crate) enum Action {
    Proceed,
    Fail,
    Nan,
}

#[cfg(not(feature = "faults"))]
#[inline(always)]
pub(crate) fn probe(_site: &str) -> Action {
    Action::Proceed
}
