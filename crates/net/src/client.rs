//! [`PlanClient`]: a retrying, deadline-aware client for [`PlanServer`].
//!
//! The client keeps one connection, frames requests, and turns transport
//! noise into at most [`ClientConfig::retries`] bounded retries with
//! exponential backoff and deterministic seeded jitter (an LCG, no clock,
//! no RNG — the same seed replays the same schedule). Crucially, a retry
//! reuses the *same request id*: the server's reply ring recognises ids it
//! has already answered and serves the cached bytes instead of planning
//! twice, so retrying after a lost reply is safe by construction.
//!
//! Replies carry the plan as the exact JSON the server rendered
//! ([`NetReply::plan_json`], bit-comparable against in-process planning)
//! plus a hand-decoded [`PlanSummary`] for callers that just want numbers —
//! the workspace's vendored serde has no runtime deserializer, so the
//! summary walks the JSON `Value` tree directly.
//!
//! [`PlanServer`]: crate::server::PlanServer

use crate::frame::{self, Decoded, ErrorCode, Frame, ReplyFrame, RequestFrame};
use raqo_catalog::QuerySpec;
use raqo_core::Priority;
use raqo_telemetry::{Counter, Telemetry};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub connect_timeout: Duration,
    /// Per-read cap while waiting for a reply frame.
    pub read_timeout: Duration,
    pub write_timeout: Duration,
    /// Retries after the first attempt (total attempts = retries + 1).
    pub retries: u32,
    /// Backoff before retry k is `base · 2^k + jitter`, capped.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter LCG.
    pub jitter_seed: u64,
    /// Reply body cap (a server reply larger than this is a protocol
    /// error, not a memory balloon).
    pub max_body: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(2),
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5EED,
            max_body: frame::DEFAULT_MAX_BODY,
        }
    }
}

/// Degradation annotation decoded from the plan JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationSummary {
    pub rung: String,
    pub trigger: String,
    pub evals_used: u64,
    pub elapsed_ms: u64,
}

/// The numbers a caller usually wants from a wire plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    pub cost: f64,
    pub time_sec: f64,
    pub money_tb_sec: f64,
    pub degradation: Option<DegradationSummary>,
}

/// A successful wire round trip.
#[derive(Debug, Clone)]
pub struct NetReply {
    pub request_id: u64,
    /// Server-side telemetry trace id (0 when telemetry is disabled).
    pub trace_id: u128,
    /// Planned inline at the zero-eval rung after admission-control shed.
    pub shed: bool,
    /// Deadline expired server-side; the plan is the bottom-rung answer.
    pub deadline_expired: bool,
    pub queue_wait_us: u64,
    pub service_us: u64,
    /// The plan exactly as the server rendered it (`"null"` if the query
    /// was unplannable) — bit-comparable with in-process planning.
    pub plan_json: String,
    /// Hand-decoded view of `plan_json`; `None` when the plan was null or
    /// the summary fields were missing.
    pub plan: Option<PlanSummary>,
}

/// Why a wire call failed.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write, peer reset).
    Io(std::io::Error),
    /// The server's bytes did not decode as a protocol reply.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server { code: ErrorCode, message: String },
    /// Every attempt failed; `last` is the final attempt's error.
    RetriesExhausted { attempts: u32, last: Box<NetError> },
}

impl NetError {
    /// Whether another attempt could plausibly succeed.
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Io(_) => true,
            // A corrupt stream dies with its connection; the next attempt
            // starts clean.
            NetError::Protocol(_) => true,
            NetError::Server { code, .. } => code.retryable(),
            NetError::RetriesExhausted { .. } => false,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Server { code, message } => {
                write!(f, "server error ({}): {message}", code.name())
            }
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Deterministic 64-bit LCG (Knuth MMIX constants), the only "randomness"
/// in the retry schedule.
fn lcg(state: u64) -> u64 {
    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Backoff before retry `attempt` (1-based): exponential from `base`,
/// plus jitter in `[0, base)` drawn from the caller's LCG state, capped.
fn backoff_delay(config: &ClientConfig, attempt: u32, jitter_state: u64) -> Duration {
    let base_us = config.backoff_base.as_micros() as u64;
    let cap_us = config.backoff_cap.as_micros() as u64;
    let exp = base_us.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
    let jitter = if base_us > 0 { lcg(jitter_state) % base_us } else { 0 };
    Duration::from_micros(exp.saturating_add(jitter).min(cap_us))
}

/// The wire client. Not thread-safe by design (one connection, one id
/// counter); share work across threads by giving each its own client.
pub struct PlanClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    next_request_id: u64,
    jitter_state: u64,
    telemetry: Telemetry,
}

impl PlanClient {
    /// Resolve `addr` and build a client. The connection is lazy: it is
    /// established on the first call (and re-established after failures).
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<PlanClient> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let jitter_state = lcg(config.jitter_seed);
        Ok(PlanClient {
            addr,
            config,
            stream: None,
            next_request_id: 1,
            jitter_state,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Count client-side retries on this sink (`raqo_net_client_retries_total`).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Plan `query` at `priority` in the default namespace with no
    /// deadline.
    pub fn plan(&mut self, query: &QuerySpec, priority: Priority) -> Result<NetReply, NetError> {
        self.plan_with(query, priority, 0, 0)
    }

    /// Plan with a tenant namespace and a deadline budget in milliseconds
    /// (0 = none), anchored server-side at decode time.
    pub fn plan_with(
        &mut self,
        query: &QuerySpec,
        priority: Priority,
        namespace: u32,
        deadline_ms: u32,
    ) -> Result<NetReply, NetError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let bytes = RequestFrame {
            request_id,
            priority,
            namespace,
            deadline_ms,
            query: query.clone(),
        }
        .encode();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt(request_id, &bytes) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // A failed attempt may have desynced the stream;
                    // always start the next one on a fresh connection.
                    self.stream = None;
                    if e.retryable() && attempt <= self.config.retries {
                        self.telemetry.inc(Counter::NetClientRetries);
                        self.jitter_state = lcg(self.jitter_state);
                        std::thread::sleep(backoff_delay(
                            &self.config,
                            attempt,
                            self.jitter_state,
                        ));
                        continue;
                    }
                    if attempt == 1 {
                        return Err(e);
                    }
                    return Err(NetError::RetriesExhausted {
                        attempts: attempt,
                        last: Box::new(e),
                    });
                }
            }
        }
    }

    /// One send/receive round trip on the (re)used connection.
    fn attempt(&mut self, request_id: u64, bytes: &[u8]) -> Result<NetReply, NetError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
            stream.set_read_timeout(Some(self.config.read_timeout))?;
            stream.set_write_timeout(Some(self.config.write_timeout))?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just ensured");
        stream.write_all(bytes)?;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match frame::decode(&buf, self.config.max_body) {
                Decoded::Incomplete { .. } => {}
                Decoded::Corrupt(e) => {
                    return Err(NetError::Protocol(format!("reply stream corrupt: {e}")))
                }
                Decoded::Frame(frame, _) => {
                    return match frame {
                        Frame::Reply(reply) if reply.request_id == request_id => {
                            Ok(decode_reply(reply))
                        }
                        Frame::Reply(reply) => Err(NetError::Protocol(format!(
                            "reply for request {} while waiting for {}",
                            reply.request_id, request_id
                        ))),
                        Frame::Error(err) => Err(NetError::Server {
                            code: err.code,
                            message: err.message,
                        }),
                        Frame::Request(_) => {
                            Err(NetError::Protocol("server sent a request frame".into()))
                        }
                    };
                }
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-reply",
                )));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn decode_reply(reply: ReplyFrame) -> NetReply {
    let plan = plan_summary(&reply.plan_json);
    NetReply {
        request_id: reply.request_id,
        trace_id: reply.trace_id,
        shed: reply.shed(),
        deadline_expired: reply.deadline_expired(),
        queue_wait_us: reply.queue_wait_us,
        service_us: reply.service_us,
        plan_json: reply.plan_json,
        plan,
    }
}

// ---- plan-JSON walking -------------------------------------------------

fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn num(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Enum values render as a bare string for unit variants or a one-key
/// object for data-carrying ones; either way, the variant name.
fn variant_name(v: &Value) -> Option<String> {
    match v {
        Value::String(s) => Some(s.clone()),
        Value::Object(fields) => fields.first().map(|(k, _)| k.clone()),
        _ => None,
    }
}

/// Hand-walk a serialized plan (`{"query": {..., "cost", "objectives"},
/// "stats": ..., "degradation": null | {...}}`) into a [`PlanSummary`].
/// Returns `None` for a null plan or an unrecognised shape — never panics
/// on server output.
pub fn plan_summary(plan_json: &str) -> Option<PlanSummary> {
    let value = serde_json::from_str(plan_json).ok()?;
    let Value::Object(plan) = value else { return None };
    let Some(Value::Object(query)) = field(&plan, "query") else { return None };
    let cost = num(field(query, "cost"))?;
    let Some(Value::Object(objectives)) = field(query, "objectives") else { return None };
    let time_sec = num(field(objectives, "time_sec"))?;
    let money_tb_sec = num(field(objectives, "money_tb_sec"))?;
    let degradation = match field(&plan, "degradation") {
        Some(Value::Object(d)) => Some(DegradationSummary {
            rung: field(d, "rung").and_then(variant_name).unwrap_or_default(),
            trigger: field(d, "trigger").and_then(variant_name).unwrap_or_default(),
            evals_used: num(field(d, "evals_used")).unwrap_or(0.0) as u64,
            elapsed_ms: num(field(d, "elapsed_ms")).unwrap_or(0.0) as u64,
        }),
        _ => None,
    };
    Some(PlanSummary { cost, time_sec, money_tb_sec, degradation })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let config = ClientConfig::default();
        let d1 = backoff_delay(&config, 1, 7);
        let d2 = backoff_delay(&config, 2, 7);
        let d9 = backoff_delay(&config, 9, 7);
        assert!(d1 >= config.backoff_base, "{d1:?}");
        assert!(d2 > d1);
        assert_eq!(d9, config.backoff_cap, "deep retries pin to the cap");
        assert_eq!(backoff_delay(&config, 3, 42), backoff_delay(&config, 3, 42));
        assert_ne!(
            backoff_delay(&config, 1, 1).as_micros(),
            backoff_delay(&config, 1, 2).as_micros(),
            "different jitter states give different delays"
        );
    }

    #[test]
    fn plan_summary_walks_the_real_shape() {
        let json = r#"{
            "query": {
                "tree": {"Leaf": 3},
                "joins": [],
                "cost": 12.5,
                "objectives": {"time_sec": 10.0, "money_tb_sec": 2.5}
            },
            "stats": {"evals": 100},
            "degradation": {
                "rung": "RuleBased",
                "trigger": "EvalBudget",
                "evals_used": 17,
                "elapsed_ms": 3
            }
        }"#;
        let summary = plan_summary(json).expect("shape matches");
        assert_eq!(summary.cost, 12.5);
        assert_eq!(summary.time_sec, 10.0);
        assert_eq!(summary.money_tb_sec, 2.5);
        let d = summary.degradation.expect("annotated");
        assert_eq!(d.rung, "RuleBased");
        assert_eq!(d.trigger, "EvalBudget");
        assert_eq!(d.evals_used, 17);
        assert_eq!(d.elapsed_ms, 3);
    }

    #[test]
    fn plan_summary_tolerates_null_and_garbage() {
        assert!(plan_summary("null").is_none());
        assert!(plan_summary("not json").is_none());
        assert!(plan_summary("{}").is_none());
        assert!(plan_summary(r#"{"query": 5}"#).is_none());
        assert!(
            plan_summary(r#"{"query": {"cost": 1.0, "objectives": {}}}"#).is_none(),
            "missing objective fields surface as None, not a panic"
        );
    }
}
