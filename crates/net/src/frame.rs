//! The RAQO wire protocol: versioned, length-prefixed frames.
//!
//! Every frame is a fixed 10-byte header followed by a bounded body:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"RQNW"
//!      4     1  protocol version (currently 1)
//!      5     1  frame kind (1 = Request, 2 = Reply, 3 = Error)
//!      6     4  body length, u32 big-endian
//!     10     n  body (layout per kind, below)
//! ```
//!
//! Bodies mix fixed binary fields (ids, flags, timings — all big-endian)
//! with a JSON tail for the structured payloads ([`QuerySpec`] in requests,
//! the planned [`raqo_core::RaqoPlan`] in replies), rendered by the
//! workspace's vendored `serde_json`. The decoder never trusts the peer:
//! bad magic, an unknown version or kind, an oversized length prefix, or a
//! body that fails validation all surface as a typed [`DecodeError`] — the
//! caller answers with an [`ErrorFrame`] and closes, never panics, never
//! hangs on a torn prefix (incomplete input is reported as
//! [`Decoded::Incomplete`] with a byte count to wait for).
//!
//! Request body: `request_id u64 | priority u8 | namespace u32 |
//! deadline_ms u32 | QuerySpec JSON`. `deadline_ms` is a *budget* relative
//! to server receipt (0 = none): clients don't share a clock with the
//! server, so the server anchors the deadline at decode time and queue wait
//! counts against it.
//!
//! Reply body: `request_id u64 | trace_id u128 | flags u8 | queue_wait_us
//! u64 | service_us u64 | plan JSON` — flags bit 0 = shed, bit 1 = deadline
//! expired.
//!
//! Error body: `request_id u64 | code u8 | UTF-8 message` (request id 0
//! when the error is not attributable to a decoded request).

use raqo_catalog::{QuerySpec, TableId};
use raqo_core::Priority;
use serde::Value;

/// Frame magic: the first four bytes of every RAQO wire frame.
pub const MAGIC: [u8; 4] = *b"RQNW";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed header size: magic + version + kind + body length.
pub const HEADER_LEN: usize = 10;
/// Default cap on body size; a length prefix above the cap is rejected as
/// [`DecodeError::Oversized`] *before* buffering the body, so a hostile
/// 4 GiB length prefix cannot balloon server memory.
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// Frame kinds on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    Request = 1,
    Reply = 2,
    Error = 3,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Reply),
            3 => Some(FrameKind::Error),
            _ => None,
        }
    }
}

/// Typed error codes carried in [`ErrorFrame`]s. The split drives client
/// retry policy: transport-shaped failures ([`retryable`](Self::retryable))
/// may succeed on a fresh connection, protocol bugs will not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame did not start with [`MAGIC`].
    BadMagic = 1,
    /// Unknown protocol version.
    BadVersion = 2,
    /// Body length exceeded the server's cap.
    Oversized = 3,
    /// The connection closed (or was cut) mid-frame.
    Torn = 4,
    /// The body failed validation (bad JSON, missing fields, bad enum).
    BadBody = 5,
    /// Admission control shed the request (dispatch queue full).
    Overloaded = 6,
    /// The server is draining for shutdown and accepts no new work.
    Draining = 7,
    /// The planning ticket did not resolve within the server's wait cap.
    WaitTimeout = 8,
    /// Unattributable server-side failure.
    Internal = 9,
}

impl ErrorCode {
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::BadMagic),
            2 => Some(ErrorCode::BadVersion),
            3 => Some(ErrorCode::Oversized),
            4 => Some(ErrorCode::Torn),
            5 => Some(ErrorCode::BadBody),
            6 => Some(ErrorCode::Overloaded),
            7 => Some(ErrorCode::Draining),
            8 => Some(ErrorCode::WaitTimeout),
            9 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Stable lowercase name, used in logs and telemetry labels.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadMagic => "bad_magic",
            ErrorCode::BadVersion => "bad_version",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Torn => "torn",
            ErrorCode::BadBody => "bad_body",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::WaitTimeout => "wait_timeout",
            ErrorCode::Internal => "internal",
        }
    }

    /// Whether a client may retry the same request id after this error.
    /// Transient server conditions are retryable; protocol violations mean
    /// the client itself is broken and retrying would repeat the offense.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded
                | ErrorCode::Draining
                | ErrorCode::WaitTimeout
                | ErrorCode::Torn
                | ErrorCode::Internal
        )
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen id; echoed in the reply and used for retry dedup.
    pub request_id: u64,
    pub priority: Priority,
    /// Tenant cache namespace (0 = shared default).
    pub namespace: u32,
    /// Deadline budget in milliseconds from server receipt; 0 = none.
    pub deadline_ms: u32,
    pub query: QuerySpec,
}

impl RequestFrame {
    /// FNV-1a content fingerprint over every request field. The server's
    /// reply ring deduplicates on `(request_id, fingerprint)`: a retry of
    /// the *same* request is answered from the ring, while an unrelated
    /// client that happens to reuse an id (every client counts from the
    /// same default sequence) can never be handed another request's reply.
    pub fn fingerprint(&self) -> u64 {
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = eat(h, &self.request_id.to_be_bytes());
        h = eat(h, &[self.priority as u8]);
        h = eat(h, &self.namespace.to_be_bytes());
        h = eat(h, &self.deadline_ms.to_be_bytes());
        h = eat(h, self.query.name.as_bytes());
        for relation in &self.query.relations {
            h = eat(h, &relation.0.to_be_bytes());
        }
        h
    }
}

/// Reply flag bit: the request was shed and planned at the zero-eval rung.
pub const FLAG_SHED: u8 = 1 << 0;
/// Reply flag bit: the deadline expired in the queue; bottom-rung answer.
pub const FLAG_DEADLINE_EXPIRED: u8 = 1 << 1;

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyFrame {
    pub request_id: u64,
    /// Telemetry trace id for this request (0 if telemetry disabled), so a
    /// client can point an operator at the exact exported trace.
    pub trace_id: u128,
    /// [`FLAG_SHED`] | [`FLAG_DEADLINE_EXPIRED`].
    pub flags: u8,
    pub queue_wait_us: u64,
    pub service_us: u64,
    /// The plan as rendered by `serde_json::to_string(&reply.plan)` —
    /// `"null"` when the optimizer found the query unplannable. Kept as raw
    /// text so clients can bit-compare against in-process planning.
    pub plan_json: String,
}

impl ReplyFrame {
    pub fn shed(&self) -> bool {
        self.flags & FLAG_SHED != 0
    }

    pub fn deadline_expired(&self) -> bool {
        self.flags & FLAG_DEADLINE_EXPIRED != 0
    }
}

/// A decoded error frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// The request this answers, or 0 when the stream itself is broken.
    pub request_id: u64,
    pub code: ErrorCode,
    pub message: String,
}

/// Any frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Request(RequestFrame),
    Reply(ReplyFrame),
    Error(ErrorFrame),
}

/// Why a buffer failed to decode. Each maps onto the [`ErrorCode`] the
/// server answers with before closing the connection.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    BadMagic,
    BadVersion(u8),
    BadKind(u8),
    Oversized { len: usize, max: usize },
    BadBody(String),
}

impl DecodeError {
    pub fn code(&self) -> ErrorCode {
        match self {
            DecodeError::BadMagic => ErrorCode::BadMagic,
            DecodeError::BadVersion(_) => ErrorCode::BadVersion,
            // An unknown kind byte means the streams disagree about where
            // frames start — same failure class as bad magic.
            DecodeError::BadKind(_) => ErrorCode::BadMagic,
            DecodeError::Oversized { .. } => ErrorCode::Oversized,
            DecodeError::BadBody(_) => ErrorCode::BadBody,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "frame does not start with RQNW magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            DecodeError::BadBody(msg) => write!(f, "bad frame body: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Result of [`decode`] on a byte buffer.
#[derive(Debug)]
pub enum Decoded {
    /// One complete frame, plus the number of bytes it consumed from the
    /// front of the buffer.
    Frame(Frame, usize),
    /// Not enough bytes yet. `needed` is the total frame size once the
    /// header is readable, or [`HEADER_LEN`] before that — a torn prefix is
    /// simply "wait for more", never an error, so slow or chunked writers
    /// are handled for free.
    Incomplete { needed: usize },
    /// The stream is corrupt at the front of the buffer. Framing is lost
    /// from here on: answer with a typed error and close.
    Corrupt(DecodeError),
}

// ---- encoding ----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn finish(kind: FrameKind, body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind as u8);
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

impl RequestFrame {
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.request_id);
        body.push(self.priority as u8);
        put_u32(&mut body, self.namespace);
        put_u32(&mut body, self.deadline_ms);
        let json = serde_json::to_string(&self.query).unwrap_or_default();
        body.extend_from_slice(json.as_bytes());
        finish(FrameKind::Request, body)
    }
}

impl ReplyFrame {
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.request_id);
        put_u128(&mut body, self.trace_id);
        body.push(self.flags);
        put_u64(&mut body, self.queue_wait_us);
        put_u64(&mut body, self.service_us);
        body.extend_from_slice(self.plan_json.as_bytes());
        finish(FrameKind::Reply, body)
    }
}

impl ErrorFrame {
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.request_id);
        body.push(self.code as u8);
        body.extend_from_slice(self.message.as_bytes());
        finish(FrameKind::Error, body)
    }
}

impl Frame {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Request(f) => f.encode(),
            Frame::Reply(f) => f.encode(),
            Frame::Error(f) => f.encode(),
        }
    }
}

// ---- decoding ----------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::BadBody(format!(
                "body truncated: wanted {n} bytes at offset {}, body is {} bytes",
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn rest_utf8(&mut self) -> Result<&'a str, DecodeError> {
        let rest = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        std::str::from_utf8(rest)
            .map_err(|e| DecodeError::BadBody(format!("body tail is not UTF-8: {e}")))
    }
}

fn decode_priority(b: u8) -> Result<Priority, DecodeError> {
    match b {
        0 => Ok(Priority::Interactive),
        1 => Ok(Priority::Standard),
        2 => Ok(Priority::Batch),
        other => Err(DecodeError::BadBody(format!("unknown priority class {other}"))),
    }
}

/// Hand-walk the `Value` tree of a QuerySpec document (`{"name": "...",
/// "relations": [ints]}`) — the vendored serde has no runtime deserializer.
fn decode_query(json: &str) -> Result<QuerySpec, DecodeError> {
    let value = serde_json::from_str(json)
        .map_err(|e| DecodeError::BadBody(format!("query JSON: {e}")))?;
    let Value::Object(fields) = value else {
        return Err(DecodeError::BadBody("query JSON is not an object".into()));
    };
    let mut name: Option<String> = None;
    let mut relations: Option<Vec<TableId>> = None;
    for (key, val) in fields {
        match (key.as_str(), val) {
            ("name", Value::String(s)) => name = Some(s),
            ("relations", Value::Array(items)) => {
                let mut rels = Vec::with_capacity(items.len());
                for item in items {
                    let Value::Num(n) = item else {
                        return Err(DecodeError::BadBody("relation id is not a number".into()));
                    };
                    if !(n.is_finite() && n >= 0.0 && n <= u32::MAX as f64 && n.fract() == 0.0) {
                        return Err(DecodeError::BadBody(format!(
                            "relation id {n} is not a valid table id"
                        )));
                    }
                    rels.push(TableId(n as u32));
                }
                relations = Some(rels);
            }
            _ => {
                return Err(DecodeError::BadBody(format!(
                    "unexpected or mistyped query field `{key}`"
                )))
            }
        }
    }
    let name = name.ok_or_else(|| DecodeError::BadBody("query JSON missing `name`".into()))?;
    let relations =
        relations.ok_or_else(|| DecodeError::BadBody("query JSON missing `relations`".into()))?;
    // QuerySpec::new asserts non-empty; validate first so a hostile frame
    // cannot panic the server.
    if relations.is_empty() {
        return Err(DecodeError::BadBody("query references no relations".into()));
    }
    Ok(QuerySpec::new(name, relations))
}

fn decode_body(kind: FrameKind, body: &[u8]) -> Result<Frame, DecodeError> {
    let mut r = Reader { bytes: body, pos: 0 };
    match kind {
        FrameKind::Request => {
            let request_id = r.u64()?;
            let priority = decode_priority(r.u8()?)?;
            let namespace = r.u32()?;
            let deadline_ms = r.u32()?;
            let query = decode_query(r.rest_utf8()?)?;
            Ok(Frame::Request(RequestFrame { request_id, priority, namespace, deadline_ms, query }))
        }
        FrameKind::Reply => {
            let request_id = r.u64()?;
            let trace_id = r.u128()?;
            let flags = r.u8()?;
            let queue_wait_us = r.u64()?;
            let service_us = r.u64()?;
            let plan_json = r.rest_utf8()?.to_string();
            // Validate the tail parses so a corrupt reply surfaces here as
            // a typed error, not later inside a client summary walk.
            serde_json::from_str(&plan_json)
                .map_err(|e| DecodeError::BadBody(format!("plan JSON: {e}")))?;
            Ok(Frame::Reply(ReplyFrame {
                request_id,
                trace_id,
                flags,
                queue_wait_us,
                service_us,
                plan_json,
            }))
        }
        FrameKind::Error => {
            let request_id = r.u64()?;
            let code_byte = r.u8()?;
            let code = ErrorCode::from_u8(code_byte)
                .ok_or_else(|| DecodeError::BadBody(format!("unknown error code {code_byte}")))?;
            let message = r.rest_utf8()?.to_string();
            Ok(Frame::Error(ErrorFrame { request_id, code, message }))
        }
    }
}

/// Try to decode one frame from the front of `buf`. Never panics on any
/// input; never reads past `buf`. See [`Decoded`] for the three outcomes.
pub fn decode(buf: &[u8], max_body: usize) -> Decoded {
    if buf.len() < HEADER_LEN {
        // Check what we do have of the magic so garbage fails fast instead
        // of idling as a forever-incomplete header.
        let have = buf.len().min(MAGIC.len());
        if buf[..have] != MAGIC[..have] {
            return Decoded::Corrupt(DecodeError::BadMagic);
        }
        return Decoded::Incomplete { needed: HEADER_LEN };
    }
    if buf[..4] != MAGIC {
        return Decoded::Corrupt(DecodeError::BadMagic);
    }
    if buf[4] != VERSION {
        return Decoded::Corrupt(DecodeError::BadVersion(buf[4]));
    }
    let Some(kind) = FrameKind::from_u8(buf[5]) else {
        return Decoded::Corrupt(DecodeError::BadKind(buf[5]));
    };
    let len = u32::from_be_bytes(buf[6..10].try_into().unwrap()) as usize;
    if len > max_body {
        return Decoded::Corrupt(DecodeError::Oversized { len, max: max_body });
    }
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Decoded::Incomplete { needed: total };
    }
    match decode_body(kind, &buf[HEADER_LEN..total]) {
        Ok(frame) => Decoded::Frame(frame, total),
        Err(e) => Decoded::Corrupt(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> RequestFrame {
        RequestFrame {
            request_id: 42,
            priority: Priority::Interactive,
            namespace: 7,
            deadline_ms: 1500,
            query: QuerySpec::tpch_q3(),
        }
    }

    fn reply() -> ReplyFrame {
        ReplyFrame {
            request_id: 42,
            trace_id: 0xdead_beef_dead_beef_dead_beef,
            flags: FLAG_SHED | FLAG_DEADLINE_EXPIRED,
            queue_wait_us: 1234,
            service_us: 5678,
            plan_json: r#"{"cost": 10.5, "note": "not a real plan, any JSON rides"}"#.into(),
        }
    }

    fn error() -> ErrorFrame {
        ErrorFrame {
            request_id: 9,
            code: ErrorCode::Overloaded,
            message: "dispatch queue full".into(),
        }
    }

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        match decode(&bytes, DEFAULT_MAX_BODY) {
            Decoded::Frame(decoded, consumed) => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(decoded, frame);
            }
            other => panic!("roundtrip failed: {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Request(request()));
        roundtrip(Frame::Reply(reply()));
        roundtrip(Frame::Error(error()));
    }

    #[test]
    fn every_truncation_is_incomplete_never_a_frame() {
        // A torn frame must never decode, never error, never panic: every
        // strict prefix is Incomplete (the stream just waits for the rest).
        for frame in [Frame::Request(request()), Frame::Reply(reply()), Frame::Error(error())] {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                match decode(&bytes[..cut], DEFAULT_MAX_BODY) {
                    Decoded::Incomplete { needed } => {
                        assert!(needed > cut, "needed {needed} must exceed the {cut} bytes held");
                        assert!(needed <= bytes.len());
                    }
                    other => panic!("prefix of {cut} bytes decoded as {other:?}"),
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_frame() {
        let mut bytes = Frame::Request(request()).encode();
        let first_len = bytes.len();
        bytes.extend_from_slice(&Frame::Error(error()).encode());
        match decode(&bytes, DEFAULT_MAX_BODY) {
            Decoded::Frame(Frame::Request(_), consumed) => assert_eq!(consumed, first_len),
            other => panic!("{other:?}"),
        }
        match decode(&bytes[first_len..], DEFAULT_MAX_BODY) {
            Decoded::Frame(Frame::Error(e), _) => assert_eq!(e, error()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_prefix_is_rejected_before_the_full_header_arrives() {
        // Even one wrong byte of magic fails immediately — a garbage stream
        // must not sit in "incomplete" limbo until the idle reaper.
        match decode(b"HTTP", DEFAULT_MAX_BODY) {
            Decoded::Corrupt(DecodeError::BadMagic) => {}
            other => panic!("{other:?}"),
        }
        match decode(b"R", DEFAULT_MAX_BODY) {
            Decoded::Incomplete { .. } => {}
            other => panic!("valid magic prefix must wait for more: {other:?}"),
        }
    }

    #[test]
    fn bad_version_kind_and_oversize_are_typed() {
        let mut bytes = Frame::Request(request()).encode();
        bytes[4] = 99;
        assert!(matches!(
            decode(&bytes, DEFAULT_MAX_BODY),
            Decoded::Corrupt(DecodeError::BadVersion(99))
        ));
        let mut bytes = Frame::Request(request()).encode();
        bytes[5] = 0;
        assert!(matches!(
            decode(&bytes, DEFAULT_MAX_BODY),
            Decoded::Corrupt(DecodeError::BadKind(0))
        ));
        // Oversized is judged from the header alone: no body bytes needed.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(FrameKind::Request as u8);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        match decode(&bytes, DEFAULT_MAX_BODY) {
            Decoded::Corrupt(DecodeError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, DEFAULT_MAX_BODY);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hostile_request_bodies_are_typed_errors_not_panics() {
        let hostile: &[&[u8]] = &[
            b"",                          // no fixed fields at all
            b"\0\0\0\0\0\0\0\x01\x07",    // id + bad priority, nothing else
            b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0not json",
            b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0[1,2]", // not an object
            b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0{\"name\":\"q\",\"relations\":[]}",
            b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0{\"name\":\"q\",\"relations\":[-1]}",
            b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0{\"name\":\"q\",\"relations\":[1.5]}",
            b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0{\"name\":\"q\"}",
            b"\0\0\0\0\0\0\0\x01\x00\0\0\0\0\0\0\0\0{\"relations\":[1]}",
            b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff",
        ];
        for body in hostile {
            let bytes = finish(FrameKind::Request, body.to_vec());
            match decode(&bytes, DEFAULT_MAX_BODY) {
                Decoded::Corrupt(DecodeError::BadBody(_)) => {}
                other => panic!("hostile body {body:?} decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn request_query_json_matches_in_process_serialization() {
        // The wire carries exactly serde_json::to_string(&query); a decoded
        // request reconstructs a QuerySpec equal to the original.
        let bytes = Frame::Request(request()).encode();
        let json = serde_json::to_string(&QuerySpec::tpch_q3()).unwrap();
        let tail = &bytes[bytes.len() - json.len()..];
        assert_eq!(tail, json.as_bytes());
    }

    #[test]
    fn fingerprint_tracks_every_request_field() {
        let base = RequestFrame {
            request_id: 9,
            priority: Priority::Standard,
            namespace: 3,
            deadline_ms: 250,
            query: QuerySpec::tpch_q12(),
        };
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let variants = [
            RequestFrame { request_id: 10, ..base.clone() },
            RequestFrame { priority: Priority::Batch, ..base.clone() },
            RequestFrame { namespace: 4, ..base.clone() },
            RequestFrame { deadline_ms: 0, ..base.clone() },
            RequestFrame { query: QuerySpec::tpch_q3(), ..base.clone() },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(
                base.fingerprint(),
                v.fingerprint(),
                "variant {i} collided with the base fingerprint"
            );
        }
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        for code in [
            ErrorCode::BadMagic,
            ErrorCode::BadVersion,
            ErrorCode::Oversized,
            ErrorCode::Torn,
            ErrorCode::BadBody,
            ErrorCode::Overloaded,
            ErrorCode::Draining,
            ErrorCode::WaitTimeout,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(200), None);
        assert!(ErrorCode::Overloaded.retryable());
        assert!(ErrorCode::WaitTimeout.retryable());
        assert!(!ErrorCode::BadBody.retryable());
        assert!(!ErrorCode::BadMagic.retryable());
    }

    // ---- property tests -------------------------------------------------

    fn build_request(
        request_id: u64,
        class: usize,
        namespace: u32,
        deadline_ms: u32,
        rels: Vec<u32>,
    ) -> RequestFrame {
        RequestFrame {
            request_id,
            priority: Priority::ALL[class],
            namespace,
            deadline_ms,
            query: QuerySpec::new(
                format!("q{request_id}"),
                rels.into_iter().map(TableId).collect(),
            ),
        }
    }

    proptest::proptest! {
        fn prop_request_roundtrips(
            request_id in 0u64..u64::MAX,
            class in 0usize..3,
            namespace in 0u32..u32::MAX,
            deadline_ms in 0u32..100_000,
            rels in proptest::collection::vec(0u32..8, 1..6usize),
        ) {
            let req = build_request(request_id, class, namespace, deadline_ms, rels);
            let bytes = req.encode();
            match decode(&bytes, DEFAULT_MAX_BODY) {
                Decoded::Frame(Frame::Request(out), consumed) => {
                    proptest::prop_assert_eq!(consumed, bytes.len());
                    proptest::prop_assert_eq!(out, req);
                }
                other => proptest::prop_assert!(false, "roundtrip failed: {:?}", other),
            }
        }

        fn prop_truncation_at_every_boundary_is_incomplete(
            request_id in 0u64..u64::MAX,
            class in 0usize..3,
            rels in proptest::collection::vec(0u32..8, 1..6usize),
            cut_seed in 0u64..u64::MAX,
        ) {
            let req = build_request(request_id, class, 0, 250, rels);
            let bytes = req.encode();
            let cut = (cut_seed % bytes.len() as u64) as usize;
            match decode(&bytes[..cut], DEFAULT_MAX_BODY) {
                Decoded::Incomplete { needed } => proptest::prop_assert!(needed > cut),
                other => proptest::prop_assert!(false, "cut {}: {:?}", cut, other),
            }
        }

        fn prop_seeded_corruption_never_panics_and_never_lies(
            request_id in 0u64..u64::MAX,
            class in 0usize..3,
            rels in proptest::collection::vec(0u32..8, 1..6usize),
            idx_seed in 0u64..u64::MAX,
            xor in 1u8..=255,
        ) {
            // Flip one byte anywhere in the frame: decode must return
            // *something* sane — a frame (if the flip landed in a don't-care
            // spot like the request id), Corrupt, or Incomplete (the flip
            // grew the length prefix) — and the consumed/needed accounting
            // must stay consistent with the buffer.
            let req = build_request(request_id, class, 3, 250, rels);
            let mut bytes = req.encode();
            let idx = (idx_seed % bytes.len() as u64) as usize;
            bytes[idx] ^= xor;
            match decode(&bytes, DEFAULT_MAX_BODY) {
                Decoded::Frame(_, consumed) => proptest::prop_assert!(consumed <= bytes.len()),
                Decoded::Incomplete { needed } => proptest::prop_assert!(needed > bytes.len()),
                Decoded::Corrupt(_) => {}
            }
        }

        fn prop_random_garbage_never_panics_the_decoder(
            bytes in proptest::collection::vec(0u8..=255, 0..128usize),
        ) {
            // Random bytes must never panic the decoder. (They can only
            // decode as a frame by actually being one — vanishingly
            // unlikely and harmless; corrupt or incomplete are the
            // expected outcomes.)
            let _ = decode(&bytes, DEFAULT_MAX_BODY);
        }
    }
}
