//! # raqo-net — the hardened wire front end
//!
//! The paper's optimizer is a library call and [`raqo_core::PlanningService`]
//! turns it into an in-process service; this crate puts that service on the
//! network without giving up any of its robustness guarantees. Everything is
//! std-only (no async runtime, no protobuf): a nonblocking poll-style event
//! loop over plain `TcpListener`/`TcpStream`, a versioned length-prefixed
//! frame protocol ([`frame`]), and a bounded handoff into the planning
//! service's admission queue.
//!
//! Design invariants, each enforced by the chaos suite in
//! `crates/bench/tests/net_chaos.rs`:
//!
//! * **A malformed frame never hangs, panics, or silently closes** — bad
//!   magic, unknown versions, oversized length prefixes, torn bodies and
//!   hostile JSON all surface as typed [`frame::ErrorFrame`]s before the
//!   connection closes.
//! * **Deadlines propagate**: a request's `deadline_ms` budget is anchored
//!   at decode time, so server-side queue wait counts against it; a request
//!   whose deadline expired in the queue is answered from the ladder's
//!   zero-evaluation rung (still a plan, annotated), not planned stale.
//! * **Backpressure sheds, never buffers without bound**: the connection
//!   cap and the bounded dispatch queue answer `Overloaded` error frames
//!   instead of queueing forever; `raqo_net_shed_total{reason}` counts each
//!   shed class.
//! * **Shutdown drains**: stop accepting, answer `Draining` to new
//!   requests, finish in-flight work, flush the cache-bank checkpoint, then
//!   close — bounded by a drain timeout so shutdown itself cannot hang.
//! * **Retries are safe**: [`PlanClient`] retries transient failures with
//!   seeded-jitter exponential backoff under the *same* request id, and the
//!   server's reply ring deduplicates ids it has already answered, so a
//!   retry of a delivered reply costs no second planning run.

pub mod client;
pub mod frame;
pub(crate) mod probes;
pub mod server;

pub use client::{ClientConfig, NetError, NetReply, PlanClient, PlanSummary};
pub use frame::{
    decode, Decoded, DecodeError, ErrorCode, ErrorFrame, Frame, FrameKind, ReplyFrame,
    RequestFrame, DEFAULT_MAX_BODY, HEADER_LEN, MAGIC, VERSION,
};
pub use server::{NetConfig, PlanServer};
