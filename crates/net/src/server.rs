//! [`PlanServer`]: the planning service behind a hardened TCP front end.
//!
//! One event-loop thread owns the listener and every connection,
//! nonblocking throughout — accept, read, frame decode, write and the idle
//! reaper all run in a single poll-style loop, so no peer can block another
//! by stalling. Decoded requests hand off through a bounded
//! [`AdmissionQueue`] to a small pool of dispatcher threads; each
//! dispatcher submits to the in-process [`PlanningService`], waits on the
//! ticket *with a timeout*, encodes the reply, and posts it back to the
//! event loop for writing. The dispatch queue is the backpressure point:
//! when it is full the event loop answers `Overloaded` immediately instead
//! of buffering without bound.
//!
//! Robustness decisions worth naming:
//!
//! * **Deadline anchoring.** The wire carries a relative `deadline_ms`
//!   budget (clients don't share our clock); the server anchors it at
//!   decode time. Everything after — dispatch queue wait, the planning
//!   service's own admission queue — counts against the budget, and the
//!   planning workers answer expired requests from the ladder's
//!   zero-evaluation rung.
//! * **Reply-ring idempotence.** The last [`NetConfig::reply_ring`]
//!   successfully encoded replies are kept by request id *and* content
//!   fingerprint. A client retry of an answered request — including on a
//!   *new* connection after the original died mid-reply — is served from
//!   the ring without re-planning, while an unrelated client that happens
//!   to reuse an id never sees another request's reply. Error replies are
//!   never cached: a retry after `WaitTimeout` deserves a fresh attempt.
//! * **Graceful drain.** Shutdown stops accepting, answers `Draining` to
//!   new requests, lets in-flight work finish (bounded by
//!   [`NetConfig::drain_timeout`]) — past that bound even queued work is
//!   discarded, so drain can never overrun its timeout by a ticket wait —
//!   flushes the cache-bank checkpoint so a restarted server plans warm,
//!   then closes every connection and joins the dispatchers.
//! * **The reaper spares working connections, not half-open ones.** Idle
//!   is "no in-flight request and no socket activity" for
//!   [`NetConfig::idle_timeout`]; a connection waiting on a slow plan is
//!   not idle, but one holding a half-received frame (slow loris, peer
//!   crash without FIN) or ignoring its replies *is* — it gets a
//!   best-effort [`ErrorCode::Torn`] frame if it left a partial frame
//!   behind, then the slot back.
//! * **Output is bounded too.** A peer that pipelines requests but never
//!   reads accumulates at most [`NetConfig::output_cap`] bytes of replies;
//!   past the cap the connection is shed
//!   (`raqo_net_shed_total{reason="slow_reader"}`) instead of growing the
//!   buffer without bound.

use crate::frame::{
    self, Decoded, ErrorCode, ErrorFrame, Frame, ReplyFrame, RequestFrame, FLAG_DEADLINE_EXPIRED,
    FLAG_SHED,
};
use crate::probes;
use raqo_core::service::{PlanRequest, PlanningService};
use raqo_sim::AdmissionQueue;
use raqo_telemetry::{Counter, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wire front-end knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Live connections before accept-time shedding (`conn_cap`).
    pub max_connections: usize,
    /// Dispatcher threads bridging the event loop to the planning service.
    pub dispatchers: usize,
    /// Bounded dispatch handoff; full means `Overloaded` replies.
    pub dispatch_capacity: usize,
    /// Frame body cap; larger length prefixes are rejected unbuffered.
    pub max_body: usize,
    /// Cap on unflushed reply bytes buffered per connection. A peer that
    /// stops reading its socket is disconnected once its output backlog
    /// would pass this, rather than buffering without bound.
    pub output_cap: usize,
    /// Reap connections with no activity and no in-flight work after this.
    pub idle_timeout: Duration,
    /// Cap on waiting for a planning ticket before a `WaitTimeout` error
    /// frame — one wedged ticket must not hold a dispatcher forever.
    pub ticket_timeout: Duration,
    /// Recently answered request ids kept for retry dedup.
    pub reply_ring: usize,
    /// Event-loop poll cadence.
    pub poll_interval: Duration,
    /// Bound on waiting for in-flight work during graceful drain.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            dispatchers: 2,
            dispatch_capacity: 64,
            max_body: frame::DEFAULT_MAX_BODY,
            output_cap: 4 * frame::DEFAULT_MAX_BODY,
            idle_timeout: Duration::from_secs(30),
            ticket_timeout: Duration::from_secs(30),
            reply_ring: 128,
            poll_interval: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// A decoded request waiting for a dispatcher.
struct DispatchJob {
    conn_id: u64,
    request: RequestFrame,
    /// Content fingerprint, forwarded into the reply ring for dedup.
    fingerprint: u64,
    /// When the frame was decoded — the deadline anchor.
    decoded_at: Instant,
}

/// An encoded reply travelling back to the event loop.
struct Completion {
    conn_id: u64,
    request_id: u64,
    /// The request's content fingerprint, keyed into the reply ring.
    fingerprint: u64,
    bytes: Vec<u8>,
    /// Only successful replies enter the dedup ring; errors (WaitTimeout)
    /// must not be replayed to a retry that deserves a fresh attempt.
    cacheable: bool,
}

struct NetShared {
    service: Arc<PlanningService>,
    telemetry: Telemetry,
    config: NetConfig,
    /// Graceful-drain request (set by shutdown/Drop).
    stop: AtomicBool,
    dispatch: Mutex<AdmissionQueue<DispatchJob>>,
    dispatch_ready: Condvar,
    /// Set by the event loop once drained; releases the dispatchers.
    dispatch_stop: AtomicBool,
    completions: Mutex<Vec<Completion>>,
    /// Requests handed to dispatch whose completions the event loop has
    /// not yet consumed — the drain barrier.
    in_flight: AtomicUsize,
    live_connections: AtomicUsize,
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    // A panic fault inside a dispatcher (chaos suite) may poison these;
    // the protected state is structurally valid after any single push/pop.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The wire front end. Dropping (or [`shutdown`](PlanServer::shutdown))
/// drains gracefully; the underlying [`PlanningService`] is shared and
/// survives the server.
pub struct PlanServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    event: Option<std::thread::JoinHandle<()>>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
}

impl PlanServer {
    /// Bind `addr` and start serving `service`. Pass port 0 to let the OS
    /// pick; read the result back with [`local_addr`](Self::local_addr).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: NetConfig,
        service: Arc<PlanningService>,
        telemetry: Telemetry,
    ) -> std::io::Result<PlanServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let classes = raqo_core::Priority::ALL.len();
        let shared = Arc::new(NetShared {
            service,
            telemetry,
            dispatch: Mutex::new(AdmissionQueue::bounded(
                classes,
                config.dispatch_capacity.max(1),
            )),
            dispatch_ready: Condvar::new(),
            dispatch_stop: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            live_connections: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            config,
        });
        let mut dispatchers = Vec::new();
        for _ in 0..shared.config.dispatchers.max(1) {
            let shared = Arc::clone(&shared);
            dispatchers.push(std::thread::spawn(move || dispatcher_loop(&shared)));
        }
        let event = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || event_loop(&shared, listener))
        };
        Ok(PlanServer { shared, local_addr, event: Some(event), dispatchers })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently held by the event loop.
    pub fn live_connections(&self) -> usize {
        self.shared.live_connections.load(Ordering::Relaxed)
    }

    /// Requests dispatched but not yet answered back to the event loop.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, answer `Draining`, finish in-flight
    /// work, flush the cache-bank checkpoint, close, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
        // The event loop sets dispatch_stop on its way out; belt and
        // braces in case it died by panic.
        self.shared.dispatch_stop.store(true, Ordering::Release);
        self.shared.dispatch_ready.notify_all();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---- event loop --------------------------------------------------------

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    last_activity: Instant,
    in_flight: usize,
    close_after_flush: bool,
    /// Set when the output cap is blown: close now, no flush courtesy.
    kill: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            last_activity: Instant::now(),
            in_flight: 0,
            close_after_flush: false,
            kill: false,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    /// Unflushed output bytes waiting on the peer to read.
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Queue a frame for writing, bounded by `output_cap`: a peer that
    /// never drains its socket is marked for disconnect instead of growing
    /// the buffer without bound.
    fn push_frame(&mut self, bytes: &[u8], output_cap: usize, telemetry: &Telemetry) {
        if self.pending_out() + bytes.len() > output_cap {
            telemetry.inc(Counter::NetShedSlowReader);
            self.kill = true;
            return;
        }
        self.out.extend_from_slice(bytes);
        telemetry.inc(Counter::NetFramesOut);
    }
}

/// What a service pass decided about one connection.
#[derive(PartialEq)]
enum Fate {
    Keep,
    Close,
}

fn event_loop(shared: &NetShared, listener: TcpListener) {
    let cfg = &shared.config;
    let tel = &shared.telemetry;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    // Recently answered (request id + content fingerprint → encoded
    // reply): retry dedup.
    let mut reply_ring: VecDeque<(u64, u64, Vec<u8>)> = VecDeque::new();
    let mut drain_started: Option<Instant> = None;

    loop {
        let draining = shared.stop.load(Ordering::Acquire);
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
        }

        // Accept until the backlog is empty (skipped once draining).
        while !draining {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if probes::probe("net.accept") == probes::Action::Fail {
                        // Injected accept failure: the connection dies
                        // before entering the loop, exactly like a peer
                        // resetting inside the handshake.
                        continue;
                    }
                    if conns.len() >= cfg.max_connections {
                        shed_at_accept(stream, tel);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.insert(next_id, Conn::new(stream));
                    next_id += 1;
                    tel.inc(Counter::NetConnectionsOpened);
                    shared.live_connections.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Route finished plans back to their connections.
        let done: Vec<Completion> = std::mem::take(&mut *lock(&shared.completions));
        for c in done {
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            if c.cacheable {
                if reply_ring.len() >= cfg.reply_ring.max(1) {
                    reply_ring.pop_front();
                }
                reply_ring.push_back((c.request_id, c.fingerprint, c.bytes.clone()));
            }
            if let Some(conn) = conns.get_mut(&c.conn_id) {
                conn.in_flight = conn.in_flight.saturating_sub(1);
                conn.push_frame(&c.bytes, cfg.output_cap, tel);
            }
            // Connection gone: the ring above still serves a retry that
            // arrives on a replacement connection.
        }

        // Read, decode, dispatch and write for every connection.
        let mut to_close: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if service_conn(id, conn, shared, &mut reply_ring, draining) == Fate::Close {
                to_close.push(id);
            }
        }

        // Idle reaper: inactivity with no in-flight work is enough — a
        // half-received frame (slow loris, peer crash without FIN) or a
        // backlog the peer refuses to read must not hold a connection slot
        // forever. Only a request actually being planned earns a stay.
        for (&id, conn) in conns.iter_mut() {
            if conn.in_flight == 0
                && conn.last_activity.elapsed() >= cfg.idle_timeout
                && !to_close.contains(&id)
            {
                if !conn.read_buf.is_empty() && conn.flushed() {
                    // The peer left a partial frame behind: tell it the
                    // stream is torn before taking the slot back. One
                    // best-effort nonblocking write — the peer is likely
                    // gone, and the event loop must not wait on it. (With
                    // a half-written reply still pending the frame would
                    // splice mid-stream, so only a flushed stream gets
                    // the courtesy.)
                    let torn = ErrorFrame {
                        request_id: 0,
                        code: ErrorCode::Torn,
                        message: "connection idle holding an incomplete frame".into(),
                    }
                    .encode();
                    if conn.stream.write(&torn).is_ok() {
                        tel.inc(Counter::NetFramesOut);
                    }
                }
                tel.inc(Counter::NetIdleReaped);
                to_close.push(id);
            }
        }

        for id in to_close {
            if conns.remove(&id).is_some() {
                tel.inc(Counter::NetConnectionsClosed);
                shared.live_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }

        if draining {
            let quiesced = shared.in_flight.load(Ordering::Relaxed) == 0
                && conns.values().all(Conn::flushed);
            let expired =
                drain_started.map_or(false, |t| t.elapsed() >= cfg.drain_timeout);
            if quiesced || expired {
                break;
            }
        }

        std::thread::sleep(cfg.poll_interval);
    }

    // Drained (or drain timed out): flush the shared cache bank so a
    // restarted server starts warm, close everything, release dispatchers.
    let svc_cfg = shared.service.config();
    let bank = shared.service.bank();
    if let Some(high_water) = svc_cfg.compact_high_water {
        bank.compact(high_water);
    }
    if let Some(path) = &svc_cfg.checkpoint_path {
        let _ = match svc_cfg.model_fingerprint {
            Some(fp) => bank.checkpoint_with_fingerprint(path, fp).map(|_| ()),
            None => bank.checkpoint(path).map(|_| ()),
        };
    }
    for _ in conns.drain() {
        tel.inc(Counter::NetConnectionsClosed);
        shared.live_connections.fetch_sub(1, Ordering::Relaxed);
    }
    shared.dispatch_stop.store(true, Ordering::Release);
    shared.dispatch_ready.notify_all();
}

/// Best-effort `Overloaded` reply to a connection shed at the cap: one
/// nonblocking write, then the socket drops. This runs on the event-loop
/// thread, so it must never wait on the peer — a freshly accepted socket
/// has an empty send buffer, so the single write virtually always lands.
fn shed_at_accept(mut stream: TcpStream, telemetry: &Telemetry) {
    telemetry.inc(Counter::NetShedConnCap);
    let bytes = ErrorFrame {
        request_id: 0,
        code: ErrorCode::Overloaded,
        message: "connection cap reached".into(),
    }
    .encode();
    if stream.set_nonblocking(true).is_ok() && stream.write(&bytes).is_ok() {
        telemetry.inc(Counter::NetFramesOut);
    }
}

/// One poll pass over a connection: drain readable bytes, decode frames,
/// dispatch requests, flush output. Returns the connection's fate.
fn service_conn(
    id: u64,
    conn: &mut Conn,
    shared: &NetShared,
    reply_ring: &mut VecDeque<(u64, u64, Vec<u8>)>,
    draining: bool,
) -> Fate {
    let tel = &shared.telemetry;

    // -- read --
    if probes::probe("net.read") == probes::Action::Fail {
        return Fate::Close; // injected reset
    }
    let mut chunk = [0u8; 4096];
    let mut saw_eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer EOF: finish what's pending, then close.
                saw_eof = true;
                conn.close_after_flush = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Fate::Close,
        }
    }

    // -- decode --
    if !conn.read_buf.is_empty() {
        match probes::probe("net.frame") {
            probes::Action::Fail => {
                // Torn frame: the tail of the buffered bytes vanishes, as
                // if the network cut mid-frame. The surviving prefix is
                // either complete frames (served) or an incomplete one the
                // loop waits on until EOF or the reaper answers
                // `ErrorCode::Torn` and closes.
                let keep = conn.read_buf.len() / 2;
                conn.read_buf.truncate(keep);
            }
            probes::Action::Nan => {
                // Garbage on the wire: one buffered byte flips.
                let mid = conn.read_buf.len() / 2;
                conn.read_buf[mid] ^= 0xA5;
            }
            probes::Action::Proceed => {}
        }
    }
    let mut consumed = 0usize;
    loop {
        match frame::decode(&conn.read_buf[consumed..], shared.config.max_body) {
            Decoded::Incomplete { .. } => break,
            Decoded::Corrupt(e) => {
                // Framing is lost: answer with the typed error, then close
                // once it flushes. Never silent, never a hang, never a
                // panic.
                tel.inc(Counter::NetFrameErrors);
                let bytes = ErrorFrame {
                    request_id: 0,
                    code: e.code(),
                    message: e.to_string(),
                }
                .encode();
                conn.push_frame(&bytes, shared.config.output_cap, tel);
                conn.close_after_flush = true;
                conn.read_buf.clear();
                consumed = 0;
                break;
            }
            Decoded::Frame(frame, n) => {
                consumed += n;
                tel.inc(Counter::NetFramesIn);
                match frame {
                    Frame::Request(req) => {
                        handle_request(id, conn, req, shared, reply_ring, draining)
                    }
                    Frame::Reply(_) | Frame::Error(_) => {
                        // Clients send requests; anything else means the
                        // peer is confused about who is who.
                        tel.inc(Counter::NetFrameErrors);
                        let bytes = ErrorFrame {
                            request_id: 0,
                            code: ErrorCode::BadBody,
                            message: "only request frames are accepted here".into(),
                        }
                        .encode();
                        conn.push_frame(&bytes, shared.config.output_cap, tel);
                        conn.close_after_flush = true;
                    }
                }
            }
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }

    // Peer EOF with a partial frame still buffered: the stream tore
    // mid-frame and no more bytes are coming. Answer with the typed
    // `Torn` error before the close — never a silent drop.
    if saw_eof && !conn.read_buf.is_empty() {
        tel.inc(Counter::NetFrameErrors);
        let bytes = ErrorFrame {
            request_id: 0,
            code: ErrorCode::Torn,
            message: "stream ended mid-frame".into(),
        }
        .encode();
        conn.push_frame(&bytes, shared.config.output_cap, tel);
        conn.read_buf.clear();
    }

    // -- write --
    if !conn.flushed() {
        if probes::probe("net.write") == probes::Action::Fail {
            return Fate::Close; // injected reset on the write side
        }
        loop {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return Fate::Close,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                    if conn.flushed() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        if conn.flushed() {
            conn.out.clear();
            conn.out_pos = 0;
        }
    }

    if conn.kill {
        // Output cap blown: the peer is not reading, so there is nothing
        // left to flush to it. Drop the connection now.
        return Fate::Close;
    }
    if conn.close_after_flush && conn.flushed() && conn.in_flight == 0 {
        return Fate::Close;
    }
    Fate::Keep
}

fn handle_request(
    conn_id: u64,
    conn: &mut Conn,
    req: RequestFrame,
    shared: &NetShared,
    reply_ring: &mut VecDeque<(u64, u64, Vec<u8>)>,
    draining: bool,
) {
    let tel = &shared.telemetry;
    if draining {
        let bytes = ErrorFrame {
            request_id: req.request_id,
            code: ErrorCode::Draining,
            message: "server is draining for shutdown".into(),
        }
        .encode();
        conn.push_frame(&bytes, shared.config.output_cap, tel);
        return;
    }
    // Retry dedup: a request we already answered is served from the ring —
    // no second planning run, same bytes, even across connections. The
    // content fingerprint keeps the match honest: an unrelated client
    // reusing the same id (every client counts from the same default
    // sequence) never receives another request's reply.
    let fingerprint = req.fingerprint();
    if let Some((.., bytes)) = reply_ring
        .iter()
        .find(|(rid, rfp, _)| *rid == req.request_id && *rfp == fingerprint)
    {
        let bytes = bytes.clone();
        tel.inc(Counter::NetRepliesDeduped);
        conn.push_frame(&bytes, shared.config.output_cap, tel);
        return;
    }
    let class = req.priority as usize;
    let request_id = req.request_id;
    let job = DispatchJob { conn_id, request: req, fingerprint, decoded_at: Instant::now() };
    let pushed = lock(&shared.dispatch).try_push(class, job);
    match pushed {
        Ok(()) => {
            conn.in_flight += 1;
            shared.in_flight.fetch_add(1, Ordering::Relaxed);
            shared.dispatch_ready.notify_one();
        }
        Err(_rejected) => {
            // The bounded handoff is full: shed with a typed reply rather
            // than buffer without bound.
            tel.inc(Counter::NetShedOverloaded);
            let bytes = ErrorFrame {
                request_id,
                code: ErrorCode::Overloaded,
                message: "dispatch queue full".into(),
            }
            .encode();
            conn.push_frame(&bytes, shared.config.output_cap, tel);
        }
    }
}

// ---- dispatchers -------------------------------------------------------

fn dispatcher_loop(shared: &NetShared) {
    loop {
        let job = {
            let mut queue = lock(&shared.dispatch);
            loop {
                // Stop check first: once the drain (or its timeout) has
                // released the dispatchers, leftover queued jobs are
                // discarded, not planned — each could wait up to
                // `ticket_timeout`, and shutdown joins this thread, so
                // planning them would let shutdown overrun the
                // `drain_timeout` bound by queued_jobs × ticket_timeout.
                if shared.dispatch_stop.load(Ordering::Acquire) {
                    while queue.pop_next().is_some() {
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                    break None;
                }
                if let Some((_, job)) = queue.pop_next() {
                    break Some(job);
                }
                queue = shared
                    .dispatch_ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        let completion = run_job(shared, job);
        lock(&shared.completions).push(completion);
    }
}

/// Plan one request through the in-process service and encode the answer.
fn run_job(shared: &NetShared, job: DispatchJob) -> Completion {
    let req = &job.request;
    let mut request =
        PlanRequest::new(req.query.clone(), req.priority).with_namespace(req.namespace);
    if req.deadline_ms > 0 {
        // Anchor at decode time: dispatch-queue wait has already been
        // spent, and the planning service charges its own queue wait too.
        request = request.with_deadline_at(
            job.decoded_at + Duration::from_millis(u64::from(req.deadline_ms)),
        );
    }
    let ticket = shared.service.submit(request);
    match ticket.wait_timeout(shared.config.ticket_timeout) {
        Ok(reply) => {
            if reply.deadline_expired {
                shared.telemetry.inc(Counter::NetShedDeadline);
            }
            let mut flags = 0u8;
            if reply.shed {
                flags |= FLAG_SHED;
            }
            if reply.deadline_expired {
                flags |= FLAG_DEADLINE_EXPIRED;
            }
            let plan_json =
                serde_json::to_string(&reply.plan).unwrap_or_else(|_| "null".to_string());
            let bytes = ReplyFrame {
                request_id: req.request_id,
                trace_id: reply.trace_id,
                flags,
                queue_wait_us: reply.queue_wait_us,
                service_us: reply.service_us,
                plan_json,
            }
            .encode();
            Completion {
                conn_id: job.conn_id,
                request_id: req.request_id,
                fingerprint: job.fingerprint,
                bytes,
                cacheable: true,
            }
        }
        Err(_timeout) => {
            let bytes = ErrorFrame {
                request_id: req.request_id,
                code: ErrorCode::WaitTimeout,
                message: format!(
                    "planning did not finish within {:?}",
                    shared.config.ticket_timeout
                ),
            }
            .encode();
            Completion {
                conn_id: job.conn_id,
                request_id: req.request_id,
                fingerprint: job.fingerprint,
                bytes,
                cacheable: false,
            }
        }
    }
}
