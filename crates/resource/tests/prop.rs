//! Property tests for the resource-planning primitives.

use proptest::prelude::*;
use raqo_resource::{
    brute_force, hill_climb, CacheLookup, ClusterConditions, ResourceConfig, ResourcePlanCache,
};

proptest! {
    /// The grid iterator enumerates exactly `grid_size()` in-bounds points
    /// for arbitrary bounds and steps.
    #[test]
    fn grid_iterator_is_exact(
        nc_lo in 1.0f64..20.0,
        nc_extra in 0.0f64..40.0,
        cs_lo in 1.0f64..5.0,
        cs_extra in 0.0f64..10.0,
        nc_step in 1.0f64..4.0,
        cs_step in 1.0f64..3.0,
    ) {
        let (nc_lo, cs_lo) = (nc_lo.round(), cs_lo.round());
        let (nc_step, cs_step) = (nc_step.round(), cs_step.round());
        let cluster = ClusterConditions::two_dim(
            nc_lo..=(nc_lo + nc_extra.round()),
            cs_lo..=(cs_lo + cs_extra.round()),
            nc_step,
            cs_step,
        );
        let pts: Vec<ResourceConfig> = cluster.grid().collect();
        prop_assert_eq!(pts.len() as u64, cluster.grid_size());
        for p in &pts {
            prop_assert!(cluster.contains(p));
        }
        // Pairwise distinct.
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }

    /// Hill climbing on a surface with a flat plateau terminates (no
    /// infinite loop) and stays in bounds.
    #[test]
    fn hill_climb_terminates_on_plateaus(
        plateau in 0.0f64..50.0,
        cx in 1.0f64..100.0,
    ) {
        let cluster = ClusterConditions::paper_default();
        let cost = |r: &ResourceConfig| -> f64 {
            let d = (r.containers() - cx).abs();
            if d < plateau { 0.0 } else { d }
        };
        let out = hill_climb(&cluster, cluster.min, cost);
        prop_assert!(cluster.contains(&out.config));
        prop_assert!(out.iterations < 10_000);
    }

    /// Weighted-average cache results stay inside the bounding box of the
    /// neighbours that produced them.
    #[test]
    fn weighted_average_stays_in_neighbor_hull(
        keys in proptest::collection::vec((0.0f64..10.0, 1.0f64..100.0, 1.0f64..10.0), 2..12),
        query in 0.0f64..10.0,
        threshold in 0.1f64..5.0,
    ) {
        let mut cache = ResourcePlanCache::new();
        for (k, nc, cs) in &keys {
            cache.insert(*k, ResourceConfig::containers_and_size(nc.round(), cs.round()));
        }
        if let Some(cfg) = cache.lookup(query, CacheLookup::WeightedAverage { threshold }) {
            let neighbors: Vec<_> = keys
                .iter()
                .filter(|(k, _, _)| (k - query).abs() <= threshold)
                .collect();
            if !neighbors.is_empty() {
                // Exact hits return a stored config, which is in the hull
                // trivially; interpolations must be too.
                let (lo_nc, hi_nc) = neighbors.iter().fold((f64::INFINITY, 0.0f64), |(l, h), (_, nc, _)| {
                    (l.min(nc.round()), h.max(nc.round()))
                });
                prop_assert!(cfg.containers() >= lo_nc - 1e-9 && cfg.containers() <= hi_nc + 1e-9,
                    "containers {} outside [{lo_nc}, {hi_nc}]", cfg.containers());
            }
        }
    }

    /// On strictly monotone surfaces brute force and hill climbing agree
    /// on the optimum (a corner).
    #[test]
    fn monotone_surfaces_agree(sign_nc in proptest::bool::ANY, sign_cs in proptest::bool::ANY) {
        let cluster = ClusterConditions::two_dim(1.0..=25.0, 1.0..=8.0, 1.0, 1.0);
        let a = if sign_nc { 1.0 } else { -1.0 };
        let b = if sign_cs { 1.0 } else { -1.0 };
        let cost = |r: &ResourceConfig| a * r.containers() + b * r.container_size_gb();
        let bf = brute_force(&cluster, cost);
        let hc = hill_climb(&cluster, cluster.min, cost);
        prop_assert!((bf.cost - hc.cost).abs() < 1e-9, "bf {} hc {}", bf.cost, hc.cost);
        prop_assert_eq!(bf.config, hc.config);
    }
}
