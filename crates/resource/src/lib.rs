//! # raqo-resource
//!
//! Resource planning for RAQO (§VI-B of the paper).
//!
//! A *resource configuration* is the vector of per-operator resource knobs —
//! in the paper's evaluation the number of YARN containers and the container
//! size in GB, i.e. a two-dimensional discrete space; the representation here
//! supports up to four dimensions so CPU cores etc. can be added without API
//! changes.
//!
//! Three planners search that space for the configuration minimizing a cost
//! function `f(r) → cost` (the cost model is supplied by the caller, which
//! closes over the sub-plan's data characteristics):
//!
//! * [`brute_force`] — exhaustive grid search (the paper's baseline),
//! * [`hill_climb`] — Algorithm 1: greedy coordinate descent from the
//!   smallest configuration, ±1 discrete step per dimension, terminating at
//!   a local optimum ("users want to minimize the resources used ... start
//!   from the smallest resource configuration and then climb"),
//! * [`cache::ResourcePlanCache`] — memoization of planned configurations by
//!   data characteristics with exact / nearest-neighbour / weighted-average
//!   lookup (§VI-B3).
//!
//! All planners report how many cost evaluations ("resource iterations",
//! the unit of Figs. 13–14) they performed.

pub mod budget;
pub mod cache;
pub mod cluster;
pub mod config;
pub mod parallel;
pub mod persist;
pub mod planner;
pub(crate) mod probes;
pub mod shared;
pub mod sharded;
pub mod stress;

pub use budget::{BudgetTracker, BudgetTrigger, PlanningBudget, DEADLINE_CHECK_EVERY};
pub use cache::{CacheBank, CacheLookup, CacheStats, ResourcePlanCache};
pub use cluster::ClusterConditions;
pub use config::{ResourceConfig, MAX_DIMS};
pub use parallel::{
    brute_force_parallel, brute_force_parallel_batch, brute_force_parallel_batch_traced,
    brute_force_parallel_traced, hill_climb_multi, hill_climb_multi_batched,
    hill_climb_multi_batched_traced, hill_climb_multi_with, hill_climb_multi_with_traced,
    multi_start_seeds, seeds_with, Parallelism, SeedStrategy,
};
pub use persist::PersistError;
pub use planner::{brute_force, brute_force_batch, hill_climb, PlanningOutcome, BATCH_CHUNK};
pub use shared::SharedCacheBank;
pub use sharded::ShardedCacheBank;
pub use stress::{concurrency_stress, StressReport};
