//! Sharded resource-plan cache banks.
//!
//! [`SharedCacheBank`](crate::SharedCacheBank) serializes every lookup and
//! insertion behind one bank-wide lock. Under the concurrent planning
//! service that lock — and, worse, whole-bank re-serialization at every
//! periodic checkpoint — becomes the bottleneck. [`ShardedCacheBank`]
//! splits the §VI-B3 bank into `N` independently locked shards:
//!
//! * a (cost model, operator) pair is owned by exactly one shard, chosen by
//!   an FNV-1a hash of the pair salted with a tenant/cluster salt, so the
//!   per-pair cache semantics (and therefore every lookup result and every
//!   statistic) are bit-identical to the single-lock bank;
//! * each shard carries a dirty flag and a cached rendition of its member
//!   caches in the version-1 persistence format. A [`checkpoint`]
//!   re-renders only shards dirtied since the previous checkpoint and
//!   concatenates cached fragments for the rest — `O(entries in dirty
//!   shards)` instead of the single bank's `O(all entries)` — then writes
//!   the file outside every lock;
//! * `N = 1` degenerates to exactly the single-lock bank (one shard owns
//!   every pair and every checkpoint is a whole-bank render).
//!
//! [`checkpoint`]: ShardedCacheBank::checkpoint

use crate::cache::{CacheBank, CacheLookup, CacheStats};
use crate::config::ResourceConfig;
use crate::persist::{self, PersistError};
use parking_lot::{Mutex, RwLock};
use raqo_telemetry::{Counter, Hist, Telemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One lock's worth of the bank, plus its incremental-checkpoint state.
struct Shard {
    bank: RwLock<CacheBank>,
    /// Set on any mutation of the shard's entries; cleared when the
    /// fragment below is re-rendered from the current contents.
    dirty: AtomicBool,
    /// Cached v1 `caches[]` fragment for this shard. The mutex also
    /// serializes concurrent checkpoints per shard so a stale render can
    /// never overwrite a fresher one.
    fragment: Mutex<Option<String>>,
}

impl Shard {
    fn new(bank: CacheBank) -> Shard {
        Shard { bank: RwLock::new(bank), dirty: AtomicBool::new(true), fragment: Mutex::new(None) }
    }
}

struct Inner {
    shards: Vec<Shard>,
    salt: u64,
}

/// A cloneable handle to a cache bank split across independently locked
/// shards. Clones share the shards; telemetry is per-handle, so each
/// worker can carry its own sink (or none).
#[derive(Clone)]
pub struct ShardedCacheBank {
    inner: Arc<Inner>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for ShardedCacheBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCacheBank")
            .field("shards", &self.inner.shards.len())
            .field("salt", &self.inner.salt)
            .field("entries", &self.total_entries())
            .finish()
    }
}

impl Default for ShardedCacheBank {
    fn default() -> Self {
        Self::new()
    }
}

/// Twice the core count, rounded up to a power of two: enough shards that
/// workers rarely collide, few enough that a checkpoint's fragment walk
/// stays trivial.
fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (2 * cores).next_power_of_two()
}

impl ShardedCacheBank {
    /// An empty bank with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// An empty bank with `shards` shards (rounded up to a power of two so
    /// the shard index is a mask, minimum 1). `with_shards(1)` is the
    /// single-lock bank.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_salt(shards, 0)
    }

    /// An empty bank with an explicit tenant/cluster salt folded into the
    /// shard hash, so co-hosted tenants with identical (model, operator)
    /// working sets land on different shards.
    pub fn with_shards_and_salt(shards: usize, salt: u64) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n).map(|_| Shard::new(CacheBank::new())).collect();
        ShardedCacheBank {
            inner: Arc::new(Inner { shards, salt }),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Distribute an existing bank (e.g. one loaded from disk) across the
    /// default shard count.
    pub fn from_bank(bank: CacheBank) -> Self {
        Self::from_bank_with_shards(bank, default_shard_count())
    }

    /// Distribute an existing bank across `shards` shards.
    pub fn from_bank_with_shards(bank: CacheBank, shards: usize) -> Self {
        Self::from_bank_with_shards_and_salt(bank, shards, 0)
    }

    /// Distribute an existing bank across `shards` shards under `salt`.
    pub fn from_bank_with_shards_and_salt(bank: CacheBank, shards: usize, salt: u64) -> Self {
        let out = Self::with_shards_and_salt(shards, salt);
        for (&(model, operator), cache) in bank.iter() {
            let shard = &out.inner.shards[out.shard_of(model, operator)];
            shard.bank.write().insert_cache(model, operator, cache.clone());
        }
        out
    }

    /// Attach a telemetry sink to this handle (shard-lookup counters and
    /// the lock-wait histogram). Clones made afterwards inherit it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of live handles to this bank (diagnostics/tests).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// The shard owning a (model, operator) pair: salted FNV-1a over the
    /// pair's little-endian bytes, masked onto the power-of-two shard
    /// count.
    pub fn shard_of(&self, model: u32, operator: u32) -> usize {
        let mut h = FNV_BASIS ^ self.inner.salt;
        for b in model.to_le_bytes().into_iter().chain(operator.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        (h as usize) & (self.inner.shards.len() - 1)
    }

    /// Look up the (model, operator) cache under `mode`. Counts a hit or a
    /// miss, exactly as [`SharedCacheBank`](crate::SharedCacheBank) does —
    /// only the shard's lock is taken, not the whole bank's.
    pub fn lookup(
        &self,
        model: u32,
        operator: u32,
        key: f64,
        mode: CacheLookup,
    ) -> Option<ResourceConfig> {
        let idx = self.shard_of(model, operator);
        self.telemetry.inc(Counter::cache_shard(idx));
        let sw = self.telemetry.stopwatch();
        let mut bank = self.inner.shards[idx].bank.write();
        self.telemetry.observe_elapsed_us(Hist::CacheLockWaitUs, &sw);
        bank.cache(model, operator).lookup(key, mode)
    }

    /// Insert the best configuration found for `key` into the
    /// (model, operator) cache and mark the owning shard dirty.
    pub fn insert(&self, model: u32, operator: u32, key: f64, config: ResourceConfig) {
        let idx = self.shard_of(model, operator);
        let shard = &self.inner.shards[idx];
        let sw = self.telemetry.stopwatch();
        let mut bank = shard.bank.write();
        self.telemetry.observe_elapsed_us(Hist::CacheLockWaitUs, &sw);
        bank.cache(model, operator).insert(key, config);
        shard.dirty.store(true, Ordering::Release);
    }

    /// Aggregate hit/miss/insertion counters summed across every shard.
    pub fn aggregate_stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for shard in &self.inner.shards {
            let s = shard.bank.read().aggregate_stats();
            out.hits += s.hits;
            out.misses += s.misses;
            out.insertions += s.insertions;
        }
        out
    }

    /// Total entries across every shard.
    pub fn total_entries(&self) -> usize {
        self.inner.shards.iter().map(|s| s.bank.read().total_entries()).sum()
    }

    /// Clear every member cache in every shard.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.bank.write().clear();
            shard.dirty.store(true, Ordering::Release);
        }
    }

    /// Run `f` with exclusive access to the shard owning (model, operator),
    /// for multi-step atomic sections on that pair's cache. The shard is
    /// marked dirty (the closure gets mutable access).
    pub fn with_shard_bank<T>(
        &self,
        model: u32,
        operator: u32,
        f: impl FnOnce(&mut CacheBank) -> T,
    ) -> T {
        let shard = &self.inner.shards[self.shard_of(model, operator)];
        let out = f(&mut shard.bank.write());
        shard.dirty.store(true, Ordering::Release);
        out
    }

    /// Evict the coldest entries across every shard until the bank holds
    /// at most `high_water` entries — the same staleness-first,
    /// deterministic-tie-break policy as [`CacheBank::compact`], applied
    /// globally, so a sharded bank and a single-lock bank with the same
    /// access history compact to the same retained set. Evicted-from
    /// shards are marked dirty for the next incremental checkpoint;
    /// evictions are counted on `raqo_cache_evictions_total`. Candidate
    /// collection runs under per-shard read locks, eviction under
    /// per-shard write locks (best-effort against concurrent inserts:
    /// entries added mid-compaction survive). Returns the eviction count.
    pub fn compact(&self, high_water: usize) -> usize {
        let total = self.total_entries();
        if total <= high_water {
            return 0;
        }
        // (staleness, model, operator, key bits, shard) — the shard index
        // rides along for the apply pass and never influences the order.
        let mut victims: Vec<(u64, u32, u32, u64, usize)> = Vec::with_capacity(total);
        for (idx, shard) in self.inner.shards.iter().enumerate() {
            let bank = shard.bank.read();
            for (&(model, operator), cache) in bank.iter() {
                let clock = cache.generation();
                for (key, generation) in cache.entry_generations() {
                    victims.push((clock - generation, model, operator, key.to_bits(), idx));
                }
            }
        }
        victims.sort_by(|a, b| {
            b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)).then(a.3.cmp(&b.3))
        });
        victims.truncate(total - high_water);
        let mut evicted = 0u64;
        for (idx, shard) in self.inner.shards.iter().enumerate() {
            let mine: Vec<&(u64, u32, u32, u64, usize)> =
                victims.iter().filter(|v| v.4 == idx).collect();
            if mine.is_empty() {
                continue;
            }
            let mut bank = shard.bank.write();
            for &(_, model, operator, bits, _) in mine {
                if bank.remove_entry(model, operator, f64::from_bits(bits)) {
                    evicted += 1;
                }
            }
            shard.dirty.store(true, Ordering::Release);
        }
        self.telemetry.add(Counter::CacheEvictions, evicted);
        evicted as usize
    }

    /// Number of shards currently marked dirty (bench/diagnostics: the
    /// work a checkpoint would re-render).
    pub fn dirty_shard_count(&self) -> usize {
        self.inner.shards.iter().filter(|s| s.dirty.load(Ordering::Acquire)).count()
    }

    /// A merged copy of all shards as one [`CacheBank`] (canonical global
    /// key order). Shard locks are taken one at a time, read-only.
    pub fn merged_bank(&self) -> CacheBank {
        let mut merged = CacheBank::new();
        for shard in &self.inner.shards {
            for (&(model, operator), cache) in shard.bank.read().iter() {
                merged.insert_cache(model, operator, cache.clone());
            }
        }
        merged
    }

    /// Persist the merged bank to `path` in the canonical version-1 format
    /// — byte-identical to [`SharedCacheBank::save`](crate::SharedCacheBank)
    /// of the same entries. Serialization and I/O run outside all locks.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        persist::save_bank(&self.merged_bank(), path)
    }

    /// Canonical save with the cost-model fingerprint stamped in.
    pub fn save_with_fingerprint(
        &self,
        path: impl AsRef<std::path::Path>,
        model_fingerprint: u64,
    ) -> Result<(), PersistError> {
        persist::save_bank_with(&self.merged_bank(), path, Some(model_fingerprint))
    }

    /// Load a bank saved by any of the v1 writers into a fresh sharded
    /// handle with the default shard count.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        Self::load_with_shards(path, default_shard_count())
    }

    /// Load into an explicit shard count.
    pub fn load_with_shards(
        path: impl AsRef<std::path::Path>,
        shards: usize,
    ) -> Result<Self, PersistError> {
        Ok(Self::from_bank_with_shards(persist::load_bank(path)?, shards))
    }

    /// Fingerprint-checked load (see
    /// [`SharedCacheBank::load_checked`](crate::SharedCacheBank::load_checked))
    /// into the default shard count.
    pub fn load_checked(
        path: impl AsRef<std::path::Path>,
        model_fingerprint: u64,
    ) -> Result<(Self, bool), PersistError> {
        Self::load_checked_with_shards(path, model_fingerprint, default_shard_count())
    }

    /// Fingerprint-checked load into an explicit shard count.
    pub fn load_checked_with_shards(
        path: impl AsRef<std::path::Path>,
        model_fingerprint: u64,
        shards: usize,
    ) -> Result<(Self, bool), PersistError> {
        let (bank, invalidated) = persist::load_bank_checked(path, Some(model_fingerprint))?;
        Ok((Self::from_bank_with_shards(bank, shards), invalidated))
    }

    /// The per-shard fragment, re-rendered only when the shard is dirty.
    fn shard_fragment(&self, shard: &Shard) -> String {
        let mut slot = shard.fragment.lock();
        if !shard.dirty.load(Ordering::Acquire) {
            if let Some(fragment) = slot.as_ref() {
                return fragment.clone();
            }
        }
        // Render under the shard's read lock: writers are excluded, so the
        // dirty flag can be cleared before rendering without losing a
        // concurrent mutation (any post-render insert re-sets it).
        let bank = shard.bank.read();
        shard.dirty.store(false, Ordering::Release);
        let fragment = persist::caches_fragment(&bank);
        drop(bank);
        *slot = Some(fragment.clone());
        fragment
    }

    /// Incremental checkpoint: re-render only shards dirtied since the
    /// previous checkpoint, splice cached fragments for the rest, and
    /// write one valid version-1 document (element order follows shard
    /// order; loads are order-independent). The file write happens outside
    /// every lock. Returns the number of shards that had to be
    /// re-rendered.
    pub fn checkpoint(&self, path: impl AsRef<std::path::Path>) -> Result<usize, PersistError> {
        self.checkpoint_inner(path, None)
    }

    /// Incremental checkpoint with the cost-model fingerprint stamped in.
    pub fn checkpoint_with_fingerprint(
        &self,
        path: impl AsRef<std::path::Path>,
        model_fingerprint: u64,
    ) -> Result<usize, PersistError> {
        self.checkpoint_inner(path, Some(model_fingerprint))
    }

    fn checkpoint_inner(
        &self,
        path: impl AsRef<std::path::Path>,
        model_fingerprint: Option<u64>,
    ) -> Result<usize, PersistError> {
        let mut rendered = 0;
        let fragments: Vec<String> = self
            .inner
            .shards
            .iter()
            .map(|shard| {
                let was_dirty =
                    shard.dirty.load(Ordering::Acquire) || shard.fragment.lock().is_none();
                if was_dirty {
                    rendered += 1;
                }
                self.shard_fragment(shard)
            })
            .collect();
        let doc = persist::document_from_fragments(&fragments, model_fingerprint);
        std::fs::write(path, doc)?;
        Ok(rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedCacheBank;

    fn cfg(c: f64, s: f64) -> ResourceConfig {
        ResourceConfig::containers_and_size(c, s)
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCacheBank::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedCacheBank::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedCacheBank::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedCacheBank::with_shards(16).shard_count(), 16);
        assert!(ShardedCacheBank::new().shard_count().is_power_of_two());
    }

    #[test]
    fn clones_share_state() {
        let a = ShardedCacheBank::with_shards(8);
        let b = a.clone();
        a.insert(0, 0, 1.5, cfg(10.0, 3.0));
        assert_eq!(b.lookup(0, 0, 1.5, CacheLookup::Exact), Some(cfg(10.0, 3.0)));
        assert_eq!(b.total_entries(), 1);
        assert_eq!(a.handle_count(), 2);
        b.clear();
        assert_eq!(a.total_entries(), 0);
    }

    #[test]
    fn salt_changes_placement_not_semantics() {
        let plain = ShardedCacheBank::with_shards_and_salt(16, 0);
        let salted = ShardedCacheBank::with_shards_and_salt(16, 0x5eed);
        let mut moved = 0;
        for model in 0..32 {
            if plain.shard_of(model, 0) != salted.shard_of(model, 0) {
                moved += 1;
            }
            plain.insert(model, 0, 1.0, cfg(model as f64, 1.0));
            salted.insert(model, 0, 1.0, cfg(model as f64, 1.0));
        }
        assert!(moved > 0, "salt must perturb shard placement");
        for model in 0..32 {
            assert_eq!(
                plain.lookup(model, 0, 1.0, CacheLookup::Exact),
                salted.lookup(model, 0, 1.0, CacheLookup::Exact),
            );
        }
    }

    /// The core bit-parity claim: any op sequence gives identical results,
    /// stats, and persisted bytes on the sharded and single-lock banks.
    fn parity_under_ops(shards: usize, salt: u64, ops: &[(u32, u32, f64, u8)]) {
        let sharded = ShardedCacheBank::with_shards_and_salt(shards, salt);
        let single = SharedCacheBank::new();
        for &(model, operator, key, kind) in ops {
            match kind % 5 {
                0 => {
                    sharded.insert(model, operator, key, cfg(key + 1.0, 2.0));
                    single.insert(model, operator, key, cfg(key + 1.0, 2.0));
                }
                1 => assert_eq!(
                    sharded.lookup(model, operator, key, CacheLookup::Exact),
                    single.lookup(model, operator, key, CacheLookup::Exact),
                ),
                2 => assert_eq!(
                    sharded.lookup(
                        model,
                        operator,
                        key,
                        CacheLookup::NearestNeighbor { threshold: 1.5 }
                    ),
                    single.lookup(
                        model,
                        operator,
                        key,
                        CacheLookup::NearestNeighbor { threshold: 1.5 }
                    ),
                ),
                3 => assert_eq!(
                    sharded.lookup(
                        model,
                        operator,
                        key,
                        CacheLookup::WeightedAverage { threshold: 2.5 }
                    ),
                    single.lookup(
                        model,
                        operator,
                        key,
                        CacheLookup::WeightedAverage { threshold: 2.5 }
                    ),
                ),
                _ => {
                    sharded.clear();
                    single.clear();
                }
            }
        }
        assert_eq!(sharded.total_entries(), single.total_entries());
        assert_eq!(sharded.aggregate_stats(), single.aggregate_stats());
        // Canonical persistence is byte-identical.
        let merged = sharded.merged_bank();
        let single_json = single.with_bank(|b| persist::bank_to_json(b));
        assert_eq!(persist::bank_to_json(&merged), single_json);
    }

    #[test]
    fn bit_parity_with_single_lock_bank() {
        let ops: Vec<(u32, u32, f64, u8)> = (0..200)
            .map(|i| {
                let model = (i * 7) % 13;
                let operator = (i * 3) % 2;
                let key = ((i * 31) % 17) as f64 / 2.0;
                (model as u32, operator as u32, key, (i % 5) as u8)
            })
            .collect();
        for shards in [1, 2, 8, 16] {
            for salt in [0u64, 0xdead_beef] {
                parity_under_ops(shards, salt, &ops);
            }
        }
    }

    proptest::proptest! {
        /// Property form of the parity claim: arbitrary op sequences over
        /// arbitrary shard counts and salts never diverge from the
        /// single-lock bank in results, stats, or persisted bytes.
        #[test]
        fn prop_sharded_bank_is_bit_identical(
            raw_ops in proptest::collection::vec((0u32..12, 0u32..3, 0u64..48, 0u8..5), 0..120),
            shards in 1usize..33,
            salt in 0u64..=u64::MAX,
        ) {
            let ops: Vec<(u32, u32, f64, u8)> = raw_ops
                .into_iter()
                .map(|(m, o, k, t)| (m, o, k as f64 / 4.0, t))
                .collect();
            parity_under_ops(shards, salt, &ops);
        }
    }

    #[test]
    fn one_shard_is_the_single_lock_bank() {
        let one = ShardedCacheBank::with_shards(1);
        for model in 0..64 {
            for operator in 0..4 {
                assert_eq!(one.shard_of(model, operator), 0);
            }
        }
    }

    #[test]
    fn checkpoint_rerenders_only_dirty_shards() {
        let bank = ShardedCacheBank::with_shards(8);
        for model in 0..32u32 {
            bank.insert(model, 0, 1.0, cfg(model as f64, 1.0));
        }
        let path = std::env::temp_dir().join("raqo_sharded_ckpt_test.json");
        // First checkpoint renders every populated shard.
        let first = bank.checkpoint(&path).unwrap();
        assert_eq!(first, 8, "all shards start dirty");
        assert_eq!(bank.dirty_shard_count(), 0);
        // No mutations: the next checkpoint splices cached fragments only.
        assert_eq!(bank.checkpoint(&path).unwrap(), 0);
        // One insert dirties exactly one shard.
        bank.insert(5, 0, 2.0, cfg(9.0, 9.0));
        assert_eq!(bank.dirty_shard_count(), 1);
        assert_eq!(bank.checkpoint(&path).unwrap(), 1);
        // The incremental file loads to exactly the merged contents.
        let loaded = persist::load_bank(&path).unwrap();
        assert_eq!(
            persist::bank_to_json(&loaded),
            persist::bank_to_json(&bank.merged_bank())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_and_canonical_save_load_identically() {
        let bank = ShardedCacheBank::with_shards_and_salt(4, 7);
        for i in 0..20u32 {
            bank.insert(i % 6, i % 2, i as f64 / 3.0, cfg(i as f64, 2.0));
        }
        let dir = std::env::temp_dir();
        let ckpt = dir.join("raqo_sharded_ckpt_vs_save_a.json");
        let save = dir.join("raqo_sharded_ckpt_vs_save_b.json");
        bank.checkpoint_with_fingerprint(&ckpt, 0xabc).unwrap();
        bank.save_with_fingerprint(&save, 0xabc).unwrap();
        let (from_ckpt, inv_a) = persist::load_bank_checked(&ckpt, Some(0xabc)).unwrap();
        let (from_save, inv_b) = persist::load_bank_checked(&save, Some(0xabc)).unwrap();
        assert!(!inv_a && !inv_b);
        assert_eq!(persist::bank_to_json(&from_ckpt), persist::bank_to_json(&from_save));
        // Stale fingerprint invalidates the checkpoint file like any v1 file.
        let (stale, invalidated) = ShardedCacheBank::load_checked_with_shards(&ckpt, 0xdef, 4)
            .unwrap();
        assert!(invalidated);
        assert_eq!(stale.total_entries(), 0);
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&save).ok();
    }

    #[test]
    fn canonical_save_matches_single_bank_bytes() {
        let sharded = ShardedCacheBank::with_shards(16);
        let single = SharedCacheBank::new();
        for i in 0..40u32 {
            let key = i as f64 / 7.0;
            sharded.insert(i % 9, i % 3, key, cfg(i as f64, 3.0));
            single.insert(i % 9, i % 3, key, cfg(i as f64, 3.0));
        }
        let dir = std::env::temp_dir();
        let a = dir.join("raqo_sharded_canonical_a.json");
        let b = dir.join("raqo_sharded_canonical_b.json");
        sharded.save_with_fingerprint(&a, 42).unwrap();
        single.save_with_fingerprint(&b, 42).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn from_bank_round_trips_through_shards() {
        let mut bank = CacheBank::new();
        for i in 0..24u32 {
            bank.cache(i % 8, i % 2).insert(i as f64, cfg(i as f64, 1.0));
        }
        let canonical = persist::bank_to_json(&bank);
        let sharded = ShardedCacheBank::from_bank_with_shards(bank, 8);
        assert_eq!(persist::bank_to_json(&sharded.merged_bank()), canonical);
    }

    #[test]
    fn telemetry_counts_shard_lookups_and_lock_waits() {
        let tel = Telemetry::enabled();
        let bank = ShardedCacheBank::with_shards(8).with_telemetry(tel.clone());
        for model in 0..16u32 {
            bank.insert(model, 0, 1.0, cfg(1.0, 1.0));
            bank.lookup(model, 0, 1.0, CacheLookup::Exact);
        }
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.cache_shard_lookups_total(), 16);
        // Inserts and lookups both time the lock acquire.
        assert_eq!(snap.hist(Hist::CacheLockWaitUs).count, 32);
    }

    #[test]
    fn compact_matches_single_lock_bank_and_dirties_shards() {
        let sharded = ShardedCacheBank::with_shards(8);
        let single = SharedCacheBank::new();
        for i in 0..40u32 {
            let key = i as f64 / 3.0;
            sharded.insert(i % 7, i % 2, key, cfg(i as f64, 2.0));
            single.insert(i % 7, i % 2, key, cfg(i as f64, 2.0));
        }
        // Touch a hot subset on both banks identically.
        for i in 0..12u32 {
            let key = i as f64 / 3.0;
            sharded.lookup(i % 7, i % 2, key, CacheLookup::Exact);
            single.lookup(i % 7, i % 2, key, CacheLookup::Exact);
        }
        let path = std::env::temp_dir().join("raqo_sharded_compact_ckpt.json");
        sharded.checkpoint(&path).unwrap();
        assert_eq!(sharded.dirty_shard_count(), 0);
        let evicted_sharded = sharded.compact(15);
        let evicted_single = single.compact(15);
        assert_eq!(evicted_sharded, evicted_single);
        assert_eq!(sharded.total_entries(), 15);
        assert_eq!(single.total_entries(), 15);
        // Same global eviction policy → identical retained sets and bytes.
        let single_json = single.with_bank(|b| persist::bank_to_json(b));
        assert_eq!(persist::bank_to_json(&sharded.merged_bank()), single_json);
        // Evicted-from shards are dirty; the next checkpoint persists the
        // compacted contents.
        assert!(sharded.dirty_shard_count() > 0, "compaction dirties shards");
        sharded.checkpoint(&path).unwrap();
        let loaded = persist::load_bank(&path).unwrap();
        assert_eq!(loaded.total_entries(), 15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_counts_evictions_in_telemetry() {
        let tel = Telemetry::enabled();
        let bank = ShardedCacheBank::with_shards(4).with_telemetry(tel.clone());
        for i in 0..20u32 {
            bank.insert(i, 0, 1.0, cfg(1.0, 1.0));
        }
        assert_eq!(bank.compact(8), 12);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.get(Counter::CacheEvictions), 12);
        assert_eq!(bank.compact(8), 0, "already at the mark");
    }

    #[test]
    fn concurrent_inserts_and_checkpoints_lose_nothing() {
        let bank = ShardedCacheBank::with_shards(8);
        let path = std::env::temp_dir().join("raqo_sharded_concurrent_ckpt.json");
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let handle = bank.clone();
                scope.spawn(move || {
                    for k in 0..50u32 {
                        let key = (t * 1000 + k) as f64;
                        handle.insert(t, 0, key, cfg(k as f64 + 1.0, t as f64 + 1.0));
                        assert_eq!(
                            handle.lookup(t, 0, key, CacheLookup::Exact),
                            Some(cfg(k as f64 + 1.0, t as f64 + 1.0)),
                            "thread {t} lost its own insert for key {key}"
                        );
                    }
                });
            }
            let ckpt = bank.clone();
            let ckpt_path = path.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    ckpt.checkpoint(&ckpt_path).unwrap();
                }
            });
        });
        assert_eq!(bank.total_entries(), 200);
        let stats = bank.aggregate_stats();
        assert_eq!(stats.insertions, 200);
        assert_eq!(stats.hits, 200);
        // A final checkpoint reflects every insert.
        bank.checkpoint(&path).unwrap();
        let loaded = persist::load_bank(&path).unwrap();
        assert_eq!(loaded.total_entries(), 200);
        std::fs::remove_file(&path).ok();
    }
}
