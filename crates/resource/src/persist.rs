//! Cache-bank persistence: save/load a [`CacheBank`] as versioned JSON so
//! `repro` sweeps can warm-start across processes (the Fig. 15(b)
//! across-query caching mode, extended across process lifetimes).
//!
//! Format (version 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "caches": [
//!     {"model": 0, "operator": 0, "entries": [[3.4, [10, 3]], ...]},
//!     ...
//!   ]
//! }
//! ```
//!
//! Keys and configuration coordinates are `f64`s rendered with Rust's
//! shortest-repr `Display` (integral values as integers), which parses back
//! to the identical bits — a reloaded bank answers exact-match lookups
//! byte-for-byte like the bank that was saved. Hit/miss/insertion statistics
//! are *not* persisted; a loaded bank starts with fresh counters.

use crate::cache::{CacheBank, ResourcePlanCache};
use crate::config::ResourceConfig;
use serde::Value;
use std::io;
use std::path::{Path, PathBuf};

/// Current on-disk format version.
pub const FORMAT_VERSION: u64 = 1;

/// Typed persistence failure. Truncated, garbage, or wrong-shape JSON is
/// always reported as [`PersistError::Corrupt`] — never a panic — and the
/// file-loading entry points quarantine the offending file by renaming it
/// to `<name>.corrupt` so it can be inspected instead of silently
/// re-parsed (and re-failed) on every warm start.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error (missing file, permissions, ...).
    Io(io::Error),
    /// The content is not a valid version-1 cache-bank document.
    Corrupt {
        /// What was wrong with the document.
        msg: String,
        /// Where the bad file was moved, when loading from disk and the
        /// quarantine rename succeeded.
        quarantined: Option<PathBuf>,
    },
}

impl PersistError {
    fn corrupt(msg: &str) -> PersistError {
        PersistError::Corrupt { msg: msg.to_string(), quarantined: None }
    }

    /// True for content-level corruption (as opposed to I/O failure).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, PersistError::Corrupt { .. })
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache bank file: {e}"),
            PersistError::Corrupt { msg, quarantined: None } => {
                write!(f, "cache bank file: {msg}")
            }
            PersistError::Corrupt { msg, quarantined: Some(q) } => {
                write!(f, "cache bank file: {msg} (quarantined to {})", q.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Render `bank` as the version-1 JSON document without a model
/// fingerprint (legacy writer; loads under any model).
pub fn bank_to_json(bank: &CacheBank) -> String {
    bank_to_json_with(bank, None)
}

/// Render `bank` as the version-1 JSON document, optionally stamping the
/// cost-model fingerprint into the header. Cached resource plans are only
/// as good as the model that priced them — a stamped file is invalidated
/// on load when the model has retrained (fingerprint mismatch).
pub fn bank_to_json_with(bank: &CacheBank, model_fingerprint: Option<u64>) -> String {
    document_from_fragments(std::slice::from_ref(&caches_fragment(bank)), model_fingerprint)
}

/// One member cache as its `caches[]` array element.
fn cache_value(model: u32, operator: u32, cache: &ResourcePlanCache) -> Value {
    let entries: Vec<Value> = cache
        .entries()
        .iter()
        .map(|(key, cfg)| {
            let coords: Vec<Value> = (0..cfg.dims()).map(|i| Value::Num(cfg.get(i))).collect();
            Value::Array(vec![Value::Num(*key), Value::Array(coords)])
        })
        .collect();
    Value::Object(vec![
        ("model".to_string(), Value::Num(model as f64)),
        ("operator".to_string(), Value::Num(operator as f64)),
        ("entries".to_string(), Value::Array(entries)),
    ])
}

/// Render `bank`'s member caches as a pre-indented, comma-joined run of
/// `caches[]` array elements (empty string for an empty bank). Fragments
/// from disjoint banks concatenate into one document via
/// [`document_from_fragments`] — the sharded bank caches one fragment per
/// shard and re-renders only dirty shards at checkpoint time.
pub(crate) fn caches_fragment(bank: &CacheBank) -> String {
    let mut out = String::new();
    for (i, (&(model, operator), cache)) in bank.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // The `caches` array sits at depth 1 of the document, so its
        // elements render at depth 2 behind a 4-space pad.
        out.push_str("    ");
        serde::write_value(&mut out, &cache_value(model, operator, cache), Some(2), 2);
    }
    out
}

/// Assemble the version-1 document from pre-rendered [`caches_fragment`]
/// runs. With a single whole-bank fragment this is byte-identical to the
/// historical writer; with per-shard fragments the element order follows
/// shard order instead of global key order, which loads identically
/// (parsing is order-independent).
pub(crate) fn document_from_fragments(
    fragments: &[String],
    model_fingerprint: Option<u64>,
) -> String {
    let mut out = format!("{{\n  \"version\": {FORMAT_VERSION},");
    if let Some(fp) = model_fingerprint {
        // Hex string, not a number: the JSON number space is f64 (53-bit
        // mantissa) and cannot hold a 64-bit fingerprint losslessly.
        out.push_str(&format!("\n  \"model_fingerprint\": \"{fp:016x}\","));
    }
    let mut live = fragments.iter().filter(|f| !f.is_empty()).peekable();
    if live.peek().is_none() {
        out.push_str("\n  \"caches\": []\n}\n");
        return out;
    }
    out.push_str("\n  \"caches\": [\n");
    for (i, fragment) in live.enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(fragment);
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn bad(msg: &str) -> PersistError {
    PersistError::corrupt(msg)
}

fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, PersistError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| bad(&format!("missing field `{name}`")))
}

fn as_num(v: &Value, what: &str) -> Result<f64, PersistError> {
    match v {
        Value::Num(n) => Ok(*n),
        _ => Err(bad(&format!("{what} is not a number"))),
    }
}

/// Parse the `model_fingerprint` header of a version-1 document, if
/// present (files written before fingerprint stamping have none).
pub fn json_fingerprint(text: &str) -> Result<Option<u64>, PersistError> {
    let doc = serde_json::from_str(text).map_err(|e| bad(&e.to_string()))?;
    let Value::Object(top) = &doc else {
        return Err(bad("top level is not an object"));
    };
    match top.iter().find(|(k, _)| k == "model_fingerprint") {
        None => Ok(None),
        Some((_, Value::String(s))) => u64::from_str_radix(s, 16)
            .map(Some)
            .map_err(|_| bad("model_fingerprint is not a hex u64")),
        Some(_) => Err(bad("model_fingerprint is not a string")),
    }
}

/// Parse a version-1 document, enforcing the model fingerprint when the
/// caller expects one. Returns `(bank, invalidated)`: on mismatch — a file
/// stamped with a *different* fingerprint, or an unstamped legacy file
/// when a fingerprint is expected — the stale entries are discarded and an
/// empty bank comes back with `invalidated = true`. The file itself is
/// untouched; the next save overwrites it with freshly stamped entries.
pub fn bank_from_json_checked(
    text: &str,
    expected_fingerprint: Option<u64>,
) -> Result<(CacheBank, bool), PersistError> {
    if let Some(expected) = expected_fingerprint {
        if json_fingerprint(text)? != Some(expected) {
            return Ok((CacheBank::new(), true));
        }
    }
    Ok((bank_from_json(text)?, false))
}

/// Parse the version-1 JSON document back into a [`CacheBank`].
pub fn bank_from_json(text: &str) -> Result<CacheBank, PersistError> {
    let doc = serde_json::from_str(text).map_err(|e| bad(&e.to_string()))?;
    let Value::Object(top) = &doc else {
        return Err(bad("top level is not an object"));
    };
    let version = as_num(field(top, "version")?, "version")? as u64;
    if version != FORMAT_VERSION {
        return Err(bad(&format!(
            "unsupported version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let Value::Array(caches) = field(top, "caches")? else {
        return Err(bad("`caches` is not an array"));
    };
    let mut bank = CacheBank::new();
    for cache in caches {
        let Value::Object(obj) = cache else {
            return Err(bad("cache element is not an object"));
        };
        let model = as_num(field(obj, "model")?, "model")? as u32;
        let operator = as_num(field(obj, "operator")?, "operator")? as u32;
        let Value::Array(raw_entries) = field(obj, "entries")? else {
            return Err(bad("`entries` is not an array"));
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for e in raw_entries {
            let Value::Array(pair) = e else {
                return Err(bad("entry is not a [key, config] pair"));
            };
            let [key, config] = pair.as_slice() else {
                return Err(bad("entry is not a [key, config] pair"));
            };
            let key = as_num(key, "entry key")?;
            let Value::Array(coords) = config else {
                return Err(bad("entry config is not an array"));
            };
            let mut vals = Vec::with_capacity(coords.len());
            for c in coords {
                vals.push(as_num(c, "config coordinate")?);
            }
            entries.push((key, ResourceConfig::from_slice(&vals)));
        }
        bank.insert_cache(model, operator, ResourcePlanCache::from_entries(entries));
    }
    Ok(bank)
}

/// Write `bank` to `path` (version-1 JSON, atomic only at the filesystem's
/// whole-file-write granularity).
pub fn save_bank(bank: &CacheBank, path: impl AsRef<Path>) -> Result<(), PersistError> {
    std::fs::write(path, bank_to_json(bank))?;
    Ok(())
}

/// Move a corrupt file out of the way by renaming it to `<name>.corrupt`.
/// Best-effort: a failed rename (e.g. read-only directory) leaves the file
/// in place and reports no quarantine location.
fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut target = path.as_os_str().to_os_string();
    target.push(".corrupt");
    let target = PathBuf::from(target);
    std::fs::rename(path, &target).ok().map(|_| target)
}

/// Attach a quarantine step to a parse result: corrupt content moves the
/// source file to `<name>.corrupt` and records where it went.
fn with_quarantine<T>(result: Result<T, PersistError>, path: &Path) -> Result<T, PersistError> {
    result.map_err(|e| match e {
        PersistError::Corrupt { msg, quarantined: None } => {
            PersistError::Corrupt { msg, quarantined: quarantine(path) }
        }
        other => other,
    })
}

/// Read the file as text, classifying invalid UTF-8 as corruption (the
/// writer only ever emits ASCII JSON) rather than a plain I/O failure, so
/// byte-mangled files take the quarantine path instead of looking like a
/// transient read error.
fn read_text(path: &Path) -> Result<String, PersistError> {
    let bytes = std::fs::read(path)?;
    String::from_utf8(bytes)
        .map_err(|_| PersistError::corrupt("cache file is not valid UTF-8"))
}

/// Read a bank previously written by [`save_bank`]. Truncated or garbage
/// content returns [`PersistError::Corrupt`] and the file is quarantined
/// (renamed to `<name>.corrupt`) so the next warm start doesn't trip over
/// it again.
pub fn load_bank(path: impl AsRef<Path>) -> Result<CacheBank, PersistError> {
    let path = path.as_ref();
    with_quarantine(read_text(path).and_then(|text| bank_from_json(&text)), path)
}

/// Write `bank` to `path` with the cost-model fingerprint stamped into the
/// header (see [`bank_to_json_with`]).
pub fn save_bank_with(
    bank: &CacheBank,
    path: impl AsRef<Path>,
    model_fingerprint: Option<u64>,
) -> Result<(), PersistError> {
    std::fs::write(path, bank_to_json_with(bank, model_fingerprint))?;
    Ok(())
}

/// Read a bank, discarding it as stale when its stamped fingerprint does
/// not match `expected_fingerprint` (see [`bank_from_json_checked`]).
/// Corrupt files are quarantined like [`load_bank`].
pub fn load_bank_checked(
    path: impl AsRef<Path>,
    expected_fingerprint: Option<u64>,
) -> Result<(CacheBank, bool), PersistError> {
    let path = path.as_ref();
    with_quarantine(
        read_text(path).and_then(|text| bank_from_json_checked(&text, expected_fingerprint)),
        path,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheLookup;

    fn cfg(c: f64, s: f64) -> ResourceConfig {
        ResourceConfig::containers_and_size(c, s)
    }

    #[test]
    fn bank_round_trips_through_json() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(3.4, cfg(10.0, 3.0));
        bank.cache(0, 0).insert(0.1, cfg(1.0, 1.0));
        bank.cache(1, 0).insert(1.0 / 3.0, cfg(99.0, 9.0));
        bank.cache(2, 7); // empty member cache persists too

        let json = bank_to_json(&bank);
        let mut loaded = bank_from_json(&json).unwrap();

        assert_eq!(loaded.total_entries(), bank.total_entries());
        // Exact-match lookups see bit-identical keys after the round trip.
        assert_eq!(loaded.cache(0, 0).lookup(3.4, CacheLookup::Exact), Some(cfg(10.0, 3.0)));
        assert_eq!(loaded.cache(0, 0).lookup(0.1, CacheLookup::Exact), Some(cfg(1.0, 1.0)));
        assert_eq!(
            loaded.cache(1, 0).lookup(1.0 / 3.0, CacheLookup::Exact),
            Some(cfg(99.0, 9.0))
        );
        // Stats start fresh: the original insertions are not replayed.
        assert_eq!(loaded.aggregate_stats().insertions, 0);
    }

    #[test]
    fn save_load_via_files() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(5.5, cfg(40.0, 7.0));
        let path = std::env::temp_dir().join("raqo_persist_test_bank.json");
        save_bank(&bank, &path).unwrap();
        let mut loaded = load_bank(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.cache(0, 0).lookup(5.5, CacheLookup::Exact), Some(cfg(40.0, 7.0)));
    }

    #[test]
    fn version_and_shape_checks() {
        assert!(bank_from_json("[]").is_err());
        assert!(bank_from_json(r#"{"version": 2, "caches": []}"#).is_err());
        assert!(bank_from_json(r#"{"version": 1}"#).is_err());
        assert!(bank_from_json(r#"{"version": 1, "caches": [{"model": 0}]}"#).is_err());
        assert!(bank_from_json("not json").is_err());
        // Minimal valid document.
        let bank = bank_from_json(r#"{"version": 1, "caches": []}"#).unwrap();
        assert_eq!(bank.total_entries(), 0);
    }

    #[test]
    fn fingerprint_stamp_round_trips() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(3.4, cfg(10.0, 3.0));
        let fp = 0xdead_beef_0123_4567u64;
        let json = bank_to_json_with(&bank, Some(fp));
        assert!(json.contains("\"model_fingerprint\": \"deadbeef01234567\""));
        assert_eq!(json_fingerprint(&json).unwrap(), Some(fp));

        // Matching fingerprint: entries load intact.
        let (mut loaded, invalidated) = bank_from_json_checked(&json, Some(fp)).unwrap();
        assert!(!invalidated);
        assert_eq!(loaded.cache(0, 0).lookup(3.4, CacheLookup::Exact), Some(cfg(10.0, 3.0)));

        // Mismatched fingerprint: stale file discarded, empty bank back.
        let (stale, invalidated) = bank_from_json_checked(&json, Some(fp ^ 1)).unwrap();
        assert!(invalidated);
        assert_eq!(stale.total_entries(), 0);

        // No expectation: the stamp is ignored, entries load.
        let (loaded, invalidated) = bank_from_json_checked(&json, None).unwrap();
        assert!(!invalidated);
        assert_eq!(loaded.total_entries(), 1);
    }

    #[test]
    fn unstamped_legacy_file_is_stale_when_fingerprint_expected() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(1.0, cfg(2.0, 2.0));
        let legacy = bank_to_json(&bank); // no fingerprint header
        assert_eq!(json_fingerprint(&legacy).unwrap(), None);
        let (loaded, invalidated) = bank_from_json_checked(&legacy, Some(7)).unwrap();
        assert!(invalidated, "unverifiable legacy file must not warm-start a stamped run");
        assert_eq!(loaded.total_entries(), 0);
        // Fingerprint-over-2^53 values survive the hex-string encoding.
        let big = u64::MAX - 12;
        let json = bank_to_json_with(&bank, Some(big));
        assert_eq!(json_fingerprint(&json).unwrap(), Some(big));
    }

    #[test]
    fn fingerprinted_save_load_via_files() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(5.5, cfg(40.0, 7.0));
        let path = std::env::temp_dir().join("raqo_persist_test_bank_fp.json");
        save_bank_with(&bank, &path, Some(42)).unwrap();
        let (mut loaded, invalidated) = load_bank_checked(&path, Some(42)).unwrap();
        assert!(!invalidated);
        assert_eq!(loaded.cache(0, 0).lookup(5.5, CacheLookup::Exact), Some(cfg(40.0, 7.0)));
        let (_, invalidated) = load_bank_checked(&path, Some(43)).unwrap();
        assert!(invalidated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_returns_typed_error_and_is_quarantined() {
        let dir = std::env::temp_dir();
        for (name, content) in [
            ("raqo_persist_truncated.json", &br#"{"version": 1, "cach"#[..]),
            ("raqo_persist_garbage.json", &b"\x00\xffnot json at all"[..]),
            ("raqo_persist_wrong_shape.json", &br#"{"version": 1}"#[..]),
        ] {
            let path = dir.join(name);
            let quarantined = dir.join(format!("{name}.corrupt"));
            std::fs::remove_file(&quarantined).ok();
            std::fs::write(&path, content).unwrap();
            let err = load_bank(&path).expect_err("corrupt content must not load");
            match &err {
                PersistError::Corrupt { quarantined: Some(q), .. } => {
                    assert_eq!(q, &quarantined, "{name}");
                }
                other => panic!("expected Corrupt with quarantine, got {other:?}"),
            }
            assert!(err.is_corrupt());
            assert!(!path.exists(), "{name}: original must be renamed away");
            assert!(quarantined.exists(), "{name}: quarantine file must exist");
            assert_eq!(std::fs::read(&quarantined).unwrap(), content, "content preserved");
            std::fs::remove_file(&quarantined).ok();
        }
    }

    #[test]
    fn corrupt_file_quarantined_under_checked_load_too() {
        let dir = std::env::temp_dir();
        let path = dir.join("raqo_persist_checked_corrupt.json");
        let quarantined = dir.join("raqo_persist_checked_corrupt.json.corrupt");
        std::fs::remove_file(&quarantined).ok();
        std::fs::write(&path, "{{{{").unwrap();
        let err = load_bank_checked(&path, Some(42)).expect_err("must fail");
        assert!(err.is_corrupt());
        assert!(quarantined.exists());
        std::fs::remove_file(&quarantined).ok();
    }

    #[test]
    fn missing_file_is_io_not_corrupt_and_nothing_quarantined() {
        let path = std::env::temp_dir().join("raqo_persist_never_written.json");
        let err = load_bank(&path).expect_err("missing file");
        assert!(matches!(err, PersistError::Io(_)));
        assert!(!err.is_corrupt());
    }

    #[test]
    fn fragment_assembly_matches_whole_bank_writer() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(3.4, cfg(10.0, 3.0));
        bank.cache(1, 0).insert(0.5, cfg(4.0, 2.0));
        bank.cache(2, 7); // empty member cache
        let canonical = bank_to_json_with(&bank, Some(0xfeed));

        // Splitting the bank into per-cache fragments and re-assembling
        // must reproduce the canonical bytes when order is preserved.
        let mut split = CacheBank::new();
        split.cache(0, 0).insert(3.4, cfg(10.0, 3.0));
        let mut rest = CacheBank::new();
        rest.cache(1, 0).insert(0.5, cfg(4.0, 2.0));
        rest.cache(2, 7);
        let doc = document_from_fragments(
            &[caches_fragment(&split), String::new(), caches_fragment(&rest)],
            Some(0xfeed),
        );
        assert_eq!(doc, canonical);

        // Out-of-order fragments still parse to the same bank.
        let reordered = document_from_fragments(
            &[caches_fragment(&rest), caches_fragment(&split)],
            None,
        );
        let loaded = bank_from_json(&reordered).unwrap();
        assert_eq!(bank_to_json(&loaded), bank_to_json(&bank));

        // All-empty fragments render the canonical empty document.
        assert_eq!(
            document_from_fragments(&[String::new()], None),
            bank_to_json(&CacheBank::new())
        );
    }

    #[test]
    fn from_entries_last_duplicate_wins() {
        let cache = ResourcePlanCache::from_entries(vec![
            (2.0, cfg(1.0, 1.0)),
            (1.0, cfg(5.0, 5.0)),
            (2.0, cfg(9.0, 9.0)),
            (f64::NAN, cfg(3.0, 3.0)), // dropped: non-finite key
        ]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.entries()[0].0, 1.0);
        assert_eq!(cache.entries()[1], (2.0, cfg(9.0, 9.0)));
    }
}
