//! Thread-safe resource-plan cache sharing.
//!
//! Two RAQO modes need one cache visible from several places at once:
//! concurrent costers during parallel resource planning, and the Fig. 15(b)
//! "across-query caching" mode where a workload's queries warm a cache that
//! outlives any single optimizer run. [`SharedCacheBank`] wraps the §VI-B3
//! [`CacheBank`] in `Arc<RwLock<_>>`: clones are handles onto the same
//! underlying bank, lookups and insertions take the write lock (lookups
//! mutate hit/miss statistics), and the Exact / NearestNeighbor /
//! WeightedAverage semantics are exactly those of the wrapped bank — the
//! lock adds atomicity per operation, nothing else.

use crate::cache::{CacheBank, CacheLookup, CacheStats};
use crate::config::ResourceConfig;
use crate::persist::PersistError;
use parking_lot::RwLock;
use std::sync::Arc;

/// A cloneable handle to a [`CacheBank`] shared across threads and queries.
#[derive(Debug, Clone, Default)]
pub struct SharedCacheBank {
    inner: Arc<RwLock<CacheBank>>,
}

impl SharedCacheBank {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing bank (e.g. one pre-warmed by an earlier workload).
    pub fn from_bank(bank: CacheBank) -> Self {
        SharedCacheBank { inner: Arc::new(RwLock::new(bank)) }
    }

    /// Look up the (model, operator) cache under `mode`. Counts a hit or a
    /// miss, as the unshared cache does.
    pub fn lookup(
        &self,
        model: u32,
        operator: u32,
        key: f64,
        mode: CacheLookup,
    ) -> Option<ResourceConfig> {
        self.inner.write().cache(model, operator).lookup(key, mode)
    }

    /// Insert the best configuration found for `key` into the
    /// (model, operator) cache.
    pub fn insert(&self, model: u32, operator: u32, key: f64, config: ResourceConfig) {
        self.inner.write().cache(model, operator).insert(key, config);
    }

    /// Aggregate hit/miss/insertion counters across all member caches.
    pub fn aggregate_stats(&self) -> CacheStats {
        self.inner.read().aggregate_stats()
    }

    /// Total entries across all member caches.
    pub fn total_entries(&self) -> usize {
        self.inner.read().total_entries()
    }

    /// Clear every member cache (between queries, unless evaluating
    /// across-query caching).
    pub fn clear(&self) {
        self.inner.write().clear();
    }

    /// Number of live handles to this bank (diagnostics/tests).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Run `f` with exclusive access to the underlying bank, for callers
    /// that need multi-step atomic sections or APIs not mirrored here.
    pub fn with_bank<T>(&self, f: impl FnOnce(&mut CacheBank) -> T) -> T {
        f(&mut self.inner.write())
    }

    /// Evict the coldest entries until the bank holds at most `high_water`
    /// entries (see [`CacheBank::compact`]). Returns the eviction count.
    pub fn compact(&self, high_water: usize) -> usize {
        self.with_bank(|bank| bank.compact(high_water))
    }

    /// Persist the bank to `path` as versioned JSON (see [`crate::persist`]).
    /// Snapshots under a short read lock; serialization and the file write
    /// happen outside it, so concurrent planners are never stalled behind
    /// disk I/O.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        let snapshot = self.inner.read().clone();
        crate::persist::save_bank(&snapshot, path)
    }

    /// Load a bank previously written with [`SharedCacheBank::save`] into a
    /// fresh handle. Statistics start at zero (they are not persisted).
    /// Corrupt files are quarantined (see [`crate::persist::load_bank`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        Ok(SharedCacheBank::from_bank(crate::persist::load_bank(path)?))
    }

    /// Persist the bank with the cost-model fingerprint stamped into the
    /// v1 header, so a later [`SharedCacheBank::load_checked`] can reject
    /// the file once the model retrains. Like [`SharedCacheBank::save`],
    /// the lock is held only for the in-memory snapshot, not for
    /// serialization or I/O.
    pub fn save_with_fingerprint(
        &self,
        path: impl AsRef<std::path::Path>,
        model_fingerprint: u64,
    ) -> Result<(), PersistError> {
        let snapshot = self.inner.read().clone();
        crate::persist::save_bank_with(&snapshot, path, Some(model_fingerprint))
    }

    /// Load a bank, discarding it as stale when its stamped fingerprint
    /// differs from `model_fingerprint` (or when the file predates
    /// stamping). Returns `(bank, invalidated)`; an invalidated load
    /// yields an empty, usable bank. Corrupt files are quarantined and
    /// reported as [`PersistError::Corrupt`].
    pub fn load_checked(
        path: impl AsRef<std::path::Path>,
        model_fingerprint: u64,
    ) -> Result<(Self, bool), PersistError> {
        let (bank, invalidated) =
            crate::persist::load_bank_checked(path, Some(model_fingerprint))?;
        Ok((SharedCacheBank::from_bank(bank), invalidated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(c: f64, s: f64) -> ResourceConfig {
        ResourceConfig::containers_and_size(c, s)
    }

    #[test]
    fn clones_share_state() {
        let a = SharedCacheBank::new();
        let b = a.clone();
        a.insert(0, 0, 1.5, cfg(10.0, 3.0));
        assert_eq!(b.lookup(0, 0, 1.5, CacheLookup::Exact), Some(cfg(10.0, 3.0)));
        assert_eq!(b.total_entries(), 1);
        assert_eq!(a.handle_count(), 2);
        b.clear();
        assert_eq!(a.total_entries(), 0);
    }

    #[test]
    fn lookup_modes_match_unshared_semantics() {
        let shared = SharedCacheBank::new();
        shared.insert(0, 0, 1.0, cfg(10.0, 2.0));
        shared.insert(0, 0, 3.0, cfg(30.0, 6.0));
        assert_eq!(shared.lookup(0, 0, 2.0, CacheLookup::Exact), None);
        assert_eq!(
            shared.lookup(0, 0, 2.2, CacheLookup::NearestNeighbor { threshold: 1.0 }),
            Some(cfg(30.0, 6.0))
        );
        let wa = shared
            .lookup(0, 0, 2.0, CacheLookup::WeightedAverage { threshold: 1.5 })
            .unwrap();
        assert!((wa.containers() - 20.0).abs() < 1e-9);
        // 1 miss + 2 hits recorded, as the unshared cache would.
        let stats = shared.aggregate_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn model_operator_pairs_stay_separate() {
        let shared = SharedCacheBank::new();
        shared.insert(0, 0, 1.0, cfg(1.0, 1.0));
        shared.insert(1, 0, 1.0, cfg(2.0, 2.0));
        assert_eq!(shared.lookup(0, 0, 1.0, CacheLookup::Exact), Some(cfg(1.0, 1.0)));
        assert_eq!(shared.lookup(1, 0, 1.0, CacheLookup::Exact), Some(cfg(2.0, 2.0)));
    }

    #[test]
    fn fingerprinted_save_and_checked_load() {
        let shared = SharedCacheBank::new();
        shared.insert(0, 0, 1.0, cfg(4.0, 2.0));
        let path = std::env::temp_dir().join("raqo_shared_bank_fp_test.json");
        shared.save_with_fingerprint(&path, 0xabc).unwrap();
        let (same, invalidated) = SharedCacheBank::load_checked(&path, 0xabc).unwrap();
        assert!(!invalidated);
        assert_eq!(same.total_entries(), 1);
        let (stale, invalidated) = SharedCacheBank::load_checked(&path, 0xdef).unwrap();
        assert!(invalidated, "retrained model must invalidate the persisted bank");
        assert_eq!(stale.total_entries(), 0);
        // Unstamped legacy files are also stale under a checked load.
        shared.save(&path).unwrap();
        let (_, invalidated) = SharedCacheBank::load_checked(&path, 0xabc).unwrap();
        assert!(invalidated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panic_inside_with_bank_does_not_poison_the_lock() {
        // The vendored parking_lot locks recover from a panicking critical
        // section (no std-style poisoning), so a worker dying mid-update must
        // leave the shared bank fully usable for every other handle.
        let shared = SharedCacheBank::new();
        shared.insert(0, 0, 1.0, cfg(5.0, 2.0));
        let clone = shared.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clone.with_bank(|bank| {
                bank.cache(0, 1).insert(9.0, cfg(9.0, 9.0));
                panic!("injected panic while holding the write lock");
            })
        }));
        assert!(caught.is_err(), "the injected panic must propagate");
        // Lock is free again: reads, writes, and multi-step sections all work.
        assert_eq!(shared.lookup(0, 0, 1.0, CacheLookup::Exact), Some(cfg(5.0, 2.0)));
        shared.insert(0, 0, 2.0, cfg(6.0, 3.0));
        assert_eq!(shared.lookup(0, 0, 2.0, CacheLookup::Exact), Some(cfg(6.0, 3.0)));
        assert_eq!(shared.with_bank(|bank| bank.total_entries()), 3);
    }

    #[test]
    fn concurrent_insert_lookup_round_trips() {
        let shared = SharedCacheBank::new();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let handle = shared.clone();
                scope.spawn(move || {
                    for k in 0..50u32 {
                        let key = (t * 1000 + k) as f64;
                        handle.insert(0, t, key, cfg(k as f64 + 1.0, t as f64 + 1.0));
                        assert_eq!(
                            handle.lookup(0, t, key, CacheLookup::Exact),
                            Some(cfg(k as f64 + 1.0, t as f64 + 1.0)),
                            "thread {t} lost its own insert for key {key}"
                        );
                    }
                });
            }
        });
        assert_eq!(shared.total_entries(), 200);
        let stats = shared.aggregate_stats();
        assert_eq!(stats.insertions, 200);
        assert_eq!(stats.hits, 200);
    }
}
