//! Resource planners: brute force (§VI-B1) and hill climbing (Algorithm 1).

use crate::cluster::ClusterConditions;
use crate::config::ResourceConfig;

/// Result of one resource-planning call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningOutcome {
    /// The chosen resource configuration.
    pub config: ResourceConfig,
    /// The cost model's value at `config`.
    pub cost: f64,
    /// Number of cost-model evaluations performed — the paper's "resource
    /// configurations explored" metric (Figs. 12–14).
    pub iterations: u64,
}

/// Exhaustive search over the whole resource grid (§VI-B1):
///
/// > "The brute force approach to resource planning would perform an
/// > exhaustive search of all possible resource configurations to find the
/// > best one."
///
/// Ties are broken toward the earlier grid point, which — because the grid
/// starts at the minimum allocation — prefers smaller resource footprints.
pub fn brute_force<F>(cluster: &ClusterConditions, mut cost_fn: F) -> PlanningOutcome
where
    F: FnMut(&ResourceConfig) -> f64,
{
    let mut best: Option<(ResourceConfig, f64)> = None;
    let mut iterations = 0u64;
    for r in cluster.grid() {
        let c = cost_fn(&r);
        iterations += 1;
        match best {
            Some((_, bc)) if bc <= c => {}
            _ => best = Some((r, c)),
        }
    }
    // Infallible: `ClusterConditions` guarantees min <= max along every
    // dimension, so `grid()` yields at least the min corner.
    let (config, cost) = best.expect("cluster grid is never empty");
    PlanningOutcome { config, cost, iterations }
}

/// Chunk size for the batched grid scans: large enough to amortize per-chunk
/// setup and give the cost kernel a vectorizable run, small enough that the
/// config/cost buffers stay cache-resident.
pub const BATCH_CHUNK: usize = 256;

/// Exhaustive grid search driven by a *batched* cost evaluator instead of a
/// per-point closure.
///
/// `batch_fn(start_index, configs, costs)` must fill `costs[i]` with the
/// cost at `configs[i]` (using `f64::INFINITY` for infeasible points), where
/// `start_index` is the row-major grid index of `configs[0]`. Winner
/// selection is by `(cost, grid index)` with ties toward the earlier point —
/// bit-identical to [`brute_force`] whenever the evaluator agrees with the
/// scalar cost function point-wise.
pub fn brute_force_batch<F>(cluster: &ClusterConditions, mut batch_fn: F) -> PlanningOutcome
where
    F: FnMut(u64, &[ResourceConfig], &mut [f64]),
{
    let total = cluster.grid_size();
    let mut configs: Vec<ResourceConfig> = Vec::with_capacity(BATCH_CHUNK);
    let mut costs = vec![0.0f64; BATCH_CHUNK];
    let mut best: Option<(u64, ResourceConfig, f64)> = None;
    let mut iter = cluster.grid();
    let mut at = 0u64;
    while at < total {
        configs.clear();
        configs.extend(iter.by_ref().take(BATCH_CHUNK));
        let n = configs.len();
        if n == 0 {
            break;
        }
        batch_fn(at, &configs, &mut costs[..n]);
        for (off, (r, &c)) in configs.iter().zip(&costs[..n]).enumerate() {
            match best {
                Some((_, _, bc)) if bc <= c => {}
                _ => best = Some((at + off as u64, *r, c)),
            }
        }
        at += n as u64;
    }
    // Infallible: same invariant as `brute_force` — the grid always
    // contains at least the min corner.
    let (_, config, cost) = best.expect("cluster grid is never empty");
    PlanningOutcome { config, cost, iterations: total }
}

/// Hill-climbing resource planning — a faithful transcription of the paper's
/// **Algorithm 1 (HillClimbResourcePlanning)**.
///
/// Starting from `start` (typically the minimum allocation,
/// `cluster.min`), each round considers a forward and a backward discrete
/// step (`candidate = [-1, 1]`) along every resource dimension, applies the
/// step that improves the cost most for that dimension (lines 7–19), and
/// terminates when no candidate step on any dimension improves on the
/// current configuration (lines 20–21, return at the local optimum).
///
/// The returned [`PlanningOutcome::iterations`] counts *distinct resource
/// configurations probed* (the start plus every neighbour evaluation).
/// This deviates from a literal reading of Algorithm 1, whose line 5
/// re-evaluates `cost(currRes)` at the top of every round: the winning
/// neighbour's cost from the previous round *is* the current
/// configuration's cost, so this implementation carries it forward instead
/// of recomputing it. The search trajectory — every step taken and the
/// final configuration — is unchanged; only redundant cost-model calls are
/// dropped, which matters once each call runs a full resource planning
/// simulation. Fig. 13(a)'s "resource configurations explored" metric is
/// reported in the same units.
///
/// ```
/// use raqo_resource::{hill_climb, ClusterConditions, ResourceConfig};
///
/// // A convex cost bowl with its optimum at 40 containers × 7 GB.
/// let cluster = ClusterConditions::paper_default();
/// let cost = |r: &ResourceConfig| {
///     (r.containers() - 40.0).powi(2) + 3.0 * (r.container_size_gb() - 7.0).powi(2)
/// };
/// let found = hill_climb(&cluster, cluster.min, cost);
/// assert_eq!(found.config, ResourceConfig::containers_and_size(40.0, 7.0));
/// assert!(found.iterations < cluster.grid_size()); // far fewer than brute force
/// ```
pub fn hill_climb<F>(
    cluster: &ClusterConditions,
    start: ResourceConfig,
    mut cost_fn: F,
) -> PlanningOutcome
where
    F: FnMut(&ResourceConfig) -> f64,
{
    assert_eq!(start.dims(), cluster.dims(), "start/cluster dimensionality mismatch");
    debug_assert!(cluster.contains(&start), "start must lie inside the cluster bounds");

    let step_size = cluster.discrete_steps(); // line 1: GetDiscreteSteps
    let candidate = [-1.0, 1.0]; // line 2
    let mut curr_res = start; // line 3
    // Evaluate the start once; every later round reuses the winning
    // neighbour's cost instead of re-running line 5 of Algorithm 1.
    let mut curr_cost = cost_fn(&curr_res);
    let mut iterations = 1u64;

    loop {
        let mut best_cost = curr_cost; // line 6

        for i in 0..curr_res.dims() {
            // lines 7–19: probe ±1 step on dimension i
            let mut best = None; // line 8: best = -1
            for &cand in &candidate {
                let i_val = step_size.get(i) * cand; // line 10
                let stepped = curr_res.get(i) + i_val;
                // line 11: respect cluster bounds
                if stepped <= cluster.max.get(i) && stepped >= cluster.min.get(i) {
                    curr_res.nudge(i, i_val); // line 12
                    let temp = cost_fn(&curr_res); // line 13
                    iterations += 1;
                    curr_res.nudge(i, -i_val); // line 14: backtrack
                    if temp < best_cost {
                        // lines 15–17
                        best_cost = temp;
                        best = Some(cand);
                    }
                }
            }
            if let Some(cand) = best {
                // lines 18–19: reapply the winning step
                curr_res.nudge(i, step_size.get(i) * cand);
            }
        }

        // lines 20–21: no better neighbour on any dimension → local optimum
        if best_cost >= curr_cost {
            return PlanningOutcome { config: curr_res, cost: curr_cost, iterations };
        }
        // A step was accepted: the last accepted probe was evaluated at the
        // configuration `curr_res` now holds, so `best_cost` is exactly
        // `cost_fn(&curr_res)` — carry it into the next round.
        curr_cost = best_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cluster() -> ClusterConditions {
        ClusterConditions::paper_default()
    }

    /// A convex bowl with minimum at (40, 7): hill climbing must find the
    /// global optimum of a unimodal cost surface.
    fn bowl(r: &ResourceConfig) -> f64 {
        let dc = r.containers() - 40.0;
        let ds = r.container_size_gb() - 7.0;
        dc * dc + 3.0 * ds * ds
    }

    #[test]
    fn brute_force_explores_whole_grid() {
        let out = brute_force(&paper_cluster(), bowl);
        assert_eq!(out.iterations, 1000);
        assert_eq!(out.config, ResourceConfig::containers_and_size(40.0, 7.0));
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn hill_climb_matches_brute_force_on_convex_surface() {
        let cluster = paper_cluster();
        let bf = brute_force(&cluster, bowl);
        let hc = hill_climb(&cluster, cluster.min, bowl);
        assert_eq!(hc.config, bf.config);
        assert_eq!(hc.cost, bf.cost);
    }

    #[test]
    fn hill_climb_uses_far_fewer_iterations() {
        // Fig. 13: "hill climbing explores 4 times less resource
        // configurations than brute force" — on this toy surface the gap is
        // much larger; assert at least 4x.
        let cluster = paper_cluster();
        let bf = brute_force(&cluster, bowl);
        let hc = hill_climb(&cluster, cluster.min, bowl);
        assert!(
            hc.iterations * 4 <= bf.iterations,
            "hc={} bf={}",
            hc.iterations,
            bf.iterations
        );
    }

    #[test]
    fn hill_climb_stops_at_local_optimum_of_multimodal_surface() {
        // Two basins: a shallow one near the start and a deep one far away.
        // Greedy climbing from the minimum allocation must settle in the
        // nearer basin — that is the documented local-optimum behaviour.
        let two_basins = |r: &ResourceConfig| -> f64 {
            let near = (r.containers() - 5.0).powi(2) + (r.container_size_gb() - 2.0).powi(2);
            let far =
                (r.containers() - 90.0).powi(2) + (r.container_size_gb() - 9.0).powi(2) - 50.0;
            near.min(far)
        };
        let cluster = paper_cluster();
        let hc = hill_climb(&cluster, cluster.min, two_basins);
        assert_eq!(hc.config, ResourceConfig::containers_and_size(5.0, 2.0));
        let bf = brute_force(&cluster, two_basins);
        assert_eq!(bf.config, ResourceConfig::containers_and_size(90.0, 9.0));
        assert!(bf.cost < hc.cost);
    }

    #[test]
    fn hill_climb_never_leaves_cluster_bounds() {
        // Cost decreasing toward huge configurations: the climber must stop
        // at the max corner rather than stepping outside.
        let decreasing = |r: &ResourceConfig| -> f64 { -(r.containers() + r.container_size_gb()) };
        let cluster = paper_cluster();
        let out = hill_climb(&cluster, cluster.min, decreasing);
        assert_eq!(out.config, ResourceConfig::containers_and_size(100.0, 10.0));
    }

    #[test]
    fn hill_climb_with_flat_cost_returns_start_immediately() {
        let cluster = paper_cluster();
        let out = hill_climb(&cluster, cluster.min, |_| 42.0);
        assert_eq!(out.config, cluster.min);
        assert_eq!(out.cost, 42.0);
        // 1 current evaluation + 1 inbound probe per dimension (the -1 step
        // is out of bounds at the minimum corner).
        assert_eq!(out.iterations, 3);
    }

    #[test]
    fn hill_climb_from_interior_start() {
        let cluster = paper_cluster();
        let start = ResourceConfig::containers_and_size(60.0, 9.0);
        let out = hill_climb(&cluster, start, bowl);
        assert_eq!(out.config, ResourceConfig::containers_and_size(40.0, 7.0));
    }

    #[test]
    fn brute_force_tie_break_prefers_first_grid_point() {
        let cluster = ClusterConditions::two_dim(1.0..=3.0, 1.0..=1.0, 1.0, 1.0);
        let out = brute_force(&cluster, |_| 1.0);
        assert_eq!(out.config, ResourceConfig::containers_and_size(1.0, 1.0));
    }

    #[test]
    fn batched_brute_force_matches_scalar() {
        let cluster = paper_cluster();
        let seq = brute_force(&cluster, bowl);
        let out = brute_force_batch(&cluster, |_, configs, costs| {
            for (r, c) in configs.iter().zip(costs.iter_mut()) {
                *c = bowl(r);
            }
        });
        assert_eq!(out.config, seq.config);
        assert_eq!(out.cost.to_bits(), seq.cost.to_bits());
        assert_eq!(out.iterations, seq.iterations);
    }

    #[test]
    fn batched_brute_force_tie_break_and_chunk_boundaries() {
        // Grid larger than one chunk with a constant surface: ties must
        // resolve to the first grid point regardless of chunking, and the
        // evaluator must see contiguous start indices covering the grid.
        let cluster = ClusterConditions::two_dim(1.0..=40.0, 1.0..=10.0, 1.0, 1.0);
        assert!(cluster.grid_size() > BATCH_CHUNK as u64);
        let mut seen = Vec::new();
        let out = brute_force_batch(&cluster, |start, configs, costs| {
            seen.push((start, configs.len() as u64));
            costs.fill(7.0);
        });
        assert_eq!(out.config, cluster.min);
        assert_eq!(out.cost, 7.0);
        let mut expect = 0u64;
        for (start, len) in &seen {
            assert_eq!(*start, expect);
            expect += len;
        }
        assert_eq!(expect, cluster.grid_size());
    }

    #[test]
    fn batched_brute_force_skips_infinite_costs() {
        // Infeasible (INFINITY) points lose to any finite point, matching
        // the scalar planner fed `f64::INFINITY` for infeasible configs.
        let cluster = paper_cluster();
        let masked = |r: &ResourceConfig| -> f64 {
            if r.containers() < 90.0 { f64::INFINITY } else { bowl(r) }
        };
        let seq = brute_force(&cluster, masked);
        let out = brute_force_batch(&cluster, |_, configs, costs| {
            for (r, c) in configs.iter().zip(costs.iter_mut()) {
                *c = masked(r);
            }
        });
        assert_eq!(out.config, seq.config);
        assert_eq!(out.cost.to_bits(), seq.cost.to_bits());
    }

    /// Pin the exact iteration count — distinct configurations probed — on
    /// a 1-D ridge with a known trajectory. `two_dim(1..=4, 1..=1)` with
    /// cost `|containers − 3|`, start (1,1):
    ///
    /// * start eval (1,1)=2 .............................. 1 iteration
    /// * round 1: dim 0 probes (2,1)=1 (the −1 step is out of bounds),
    ///   dim 1 has no in-bounds probes .................... 1 iteration, step to (2,1)
    /// * round 2: probes (1,1)=2 and (3,1)=0 ............. 2 iterations, step to (3,1)
    /// * round 3: probes (2,1)=1 and (4,1)=1 — no strict
    ///   improvement, terminate ........................... 2 iterations
    ///
    /// Total: 6 probes, optimum (3,1) at cost 0.
    #[test]
    fn hill_climb_iteration_count_pinned_on_ridge() {
        let cluster = ClusterConditions::two_dim(1.0..=4.0, 1.0..=1.0, 1.0, 1.0);
        let out = hill_climb(&cluster, cluster.min, |r| (r.containers() - 3.0).abs());
        assert_eq!(out.config, ResourceConfig::containers_and_size(3.0, 1.0));
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.iterations, 6);
    }

    /// Same pin on a 2-D bowl where both dimensions step in one round.
    /// `two_dim(1..=3, 1..=2)` with cost `(c−2)² + (s−2)²`, start (1,1):
    ///
    /// * start eval (1,1)=2 .............................. 1 iteration
    /// * round 1: dim 0 probes (2,1)=1 → step; dim 1 probes
    ///   (2,2)=0 → step ................................... 2 iterations, now (2,2)
    /// * round 2: dim 0 probes (1,2)=1 and (3,2)=1; dim 1
    ///   probes (2,1)=1 — no strict improvement, stop ..... 3 iterations
    ///
    /// Total: 6 probes, optimum (2,2) at cost 0. (The round-2 count also
    /// pins the bounds rule: (2,3) is out of bounds and never probed.)
    #[test]
    fn hill_climb_iteration_count_pinned_on_bowl() {
        let cluster = ClusterConditions::two_dim(1.0..=3.0, 1.0..=2.0, 1.0, 1.0);
        let cost = |r: &ResourceConfig| {
            (r.containers() - 2.0).powi(2) + (r.container_size_gb() - 2.0).powi(2)
        };
        let out = hill_climb(&cluster, cluster.min, cost);
        assert_eq!(out.config, ResourceConfig::containers_and_size(2.0, 2.0));
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.iterations, 6);
    }

    #[test]
    fn hill_climb_respects_non_unit_steps() {
        let cluster = ClusterConditions::two_dim(10.0..=100.0, 10.0..=100.0, 10.0, 10.0);
        let target = |r: &ResourceConfig| -> f64 {
            (r.containers() - 50.0).abs() + (r.container_size_gb() - 30.0).abs()
        };
        let out = hill_climb(&cluster, cluster.min, target);
        assert_eq!(out.config, ResourceConfig::containers_and_size(50.0, 30.0));
    }
}
