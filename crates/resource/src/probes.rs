//! Fault-injection probe shim.
//!
//! With the `faults` cargo feature on, probes forward to `raqo-faults`; in
//! normal builds this compiles to a no-op enum and an `#[inline(always)]`
//! function returning `Proceed`, so production library code carries no
//! injection machinery at all (not even a disarmed atomic load).

#[cfg(feature = "faults")]
pub(crate) use raqo_faults::Action;

#[cfg(feature = "faults")]
#[inline]
pub(crate) fn probe(site: &str) -> Action {
    raqo_faults::probe(site)
}

#[cfg(not(feature = "faults"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(dead_code)] // mirror of raqo_faults::Action; only Proceed is built here
pub(crate) enum Action {
    Proceed,
    Fail,
    Nan,
}

#[cfg(not(feature = "faults"))]
#[inline(always)]
pub(crate) fn probe(_site: &str) -> Action {
    Action::Proceed
}
