//! The resource-configuration vector.

use serde::{Deserialize, Serialize};

/// Maximum number of resource dimensions supported without allocation.
/// The paper's space is two-dimensional (number of containers × container
/// size); four leaves room for CPU cores and tasks-per-vertex.
pub const MAX_DIMS: usize = 4;

/// A point in the (discrete) resource space.
///
/// Stored inline as a fixed array + length so planners can copy it freely on
/// their hot path — resource planning evaluates the cost model hundreds of
/// thousands of times per query (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceConfig {
    vals: [f64; MAX_DIMS],
    len: u8,
}

impl ResourceConfig {
    /// Build from a slice of dimension values (at most [`MAX_DIMS`]).
    pub fn from_slice(vals: &[f64]) -> Self {
        assert!(
            !vals.is_empty() && vals.len() <= MAX_DIMS,
            "resource config must have 1..={MAX_DIMS} dimensions"
        );
        let mut a = [0.0; MAX_DIMS];
        a[..vals.len()].copy_from_slice(vals);
        ResourceConfig { vals: a, len: vals.len() as u8 }
    }

    /// The paper's two-dimensional configuration:
    /// ⟨number of containers, container size in GB⟩.
    pub fn containers_and_size(containers: f64, container_size_gb: f64) -> Self {
        ResourceConfig::from_slice(&[containers, container_size_gb])
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.len as usize
    }

    /// Value of dimension `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.dims());
        self.vals[i]
    }

    /// Set dimension `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        debug_assert!(i < self.dims());
        self.vals[i] = v;
    }

    /// Add `delta` to dimension `i` (Algorithm 1's step/backtrack).
    #[inline]
    pub fn nudge(&mut self, i: usize, delta: f64) {
        debug_assert!(i < self.dims());
        self.vals[i] += delta;
    }

    /// The dimension values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.vals[..self.dims()]
    }

    // Convention accessors for the 2-D space used throughout the paper.

    /// Number of containers (dimension 0).
    #[inline]
    pub fn containers(&self) -> f64 {
        self.get(0)
    }

    /// Container size in GB (dimension 1).
    #[inline]
    pub fn container_size_gb(&self) -> f64 {
        self.get(1)
    }

    /// Total memory of the configuration in GB (containers × size). This is
    /// the quantity the monetary cost model charges for.
    #[inline]
    pub fn total_memory_gb(&self) -> f64 {
        self.containers() * self.container_size_gb()
    }

    /// Euclidean distance to another configuration (used by cache tests and
    /// diagnostics; both must have the same dimensionality).
    pub fn distance(&self, other: &ResourceConfig) -> f64 {
        assert_eq!(self.dims(), other.dims());
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl std::fmt::Display for ResourceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.dims() == 2 {
            write!(f, "<{} containers x {} GB>", self.get(0), self.get(1))
        } else {
            write!(f, "{:?}", self.as_slice())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dim_convention() {
        let r = ResourceConfig::containers_and_size(10.0, 3.0);
        assert_eq!(r.dims(), 2);
        assert_eq!(r.containers(), 10.0);
        assert_eq!(r.container_size_gb(), 3.0);
        assert_eq!(r.total_memory_gb(), 30.0);
    }

    #[test]
    fn nudge_and_backtrack_round_trip() {
        let mut r = ResourceConfig::containers_and_size(10.0, 3.0);
        r.nudge(0, 5.0);
        assert_eq!(r.containers(), 15.0);
        r.nudge(0, -5.0);
        assert_eq!(r, ResourceConfig::containers_and_size(10.0, 3.0));
    }

    #[test]
    fn from_slice_supports_up_to_max_dims() {
        let r = ResourceConfig::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.dims(), 4);
        assert_eq!(r.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn too_many_dims_rejected() {
        ResourceConfig::from_slice(&[1.0; 5]);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn empty_rejected() {
        ResourceConfig::from_slice(&[]);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = ResourceConfig::containers_and_size(0.0, 0.0);
        let b = ResourceConfig::containers_and_size(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn display_two_dims() {
        let r = ResourceConfig::containers_and_size(100.0, 10.0);
        assert_eq!(format!("{r}"), "<100 containers x 10 GB>");
    }
}
