//! Threaded stress harness for the sharded cache bank.
//!
//! `repro --smoke` runs this as its `concurrency` gate; the library also
//! exercises it as a plain test. The harness runs two phases on one
//! [`ShardedCacheBank`] shared by `threads` workers:
//!
//! 1. **Chaos phase** — every worker mixes inserts, lookups in all three
//!    modes, whole-bank clears, and canonical saves to a scratch file.
//!    Lookups may legitimately miss (another worker may have cleared), but
//!    a hit must return exactly the configuration some worker inserted for
//!    that key — a torn or mixed value is a failure, as is any panic.
//! 2. **Settle phase** — clears stop; every worker inserts a disjoint key
//!    set and then verifies every one of its own inserts. Lost entries,
//!    mismatched totals, or per-shard stats that do not sum to the
//!    aggregate all fail the gate.

use crate::cache::CacheLookup;
use crate::config::ResourceConfig;
use crate::sharded::ShardedCacheBank;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// What the stress run did, for the smoke-gate report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressReport {
    pub threads: usize,
    pub shards: usize,
    /// Total operations across both phases (inserts + lookups + clears + saves).
    pub ops: u64,
    /// Whole-bank clears observed during the chaos phase.
    pub clears: u64,
    /// Canonical saves written during the chaos phase.
    pub saves: u64,
    /// Entries present after the settle phase.
    pub entries: usize,
}

/// The configuration every worker inserts for `(model, key)`: derived from
/// the key alone, so a concurrent overwrite by another worker still stores
/// the same value and any hit can be checked exactly.
fn expected_cfg(model: u32, key: f64) -> ResourceConfig {
    ResourceConfig::containers_and_size(key + 1.0, model as f64 + 1.0)
}

/// Run the two-phase stress harness. Returns `Err` with a description on
/// the first detected violation (panics inside workers also surface as
/// errors, not aborts).
pub fn concurrency_stress(threads: usize, ops_per_thread: usize) -> Result<StressReport, String> {
    let threads = threads.max(2);
    let ops_per_thread = ops_per_thread.max(8);
    let bank = ShardedCacheBank::with_shards_and_salt(threads * 2, 0x57e5_5000);
    let shards = bank.shard_count();
    let ops = AtomicU64::new(0);
    let clears = AtomicU64::new(0);
    let saves = AtomicU64::new(0);
    let start = Barrier::new(threads);
    let settle = Barrier::new(threads);
    let scratch = std::env::temp_dir().join(format!(
        "raqo_stress_bank_{}_{threads}.json",
        std::process::id()
    ));

    let result: Result<(), String> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads {
            let bank = bank.clone();
            let ops = &ops;
            let clears = &clears;
            let saves = &saves;
            let start = &start;
            let settle = &settle;
            let scratch = &scratch;
            workers.push(scope.spawn(move || -> Result<(), String> {
                start.wait();
                // Phase 1: chaos. Models overlap across workers on purpose.
                for i in 0..ops_per_thread {
                    let model = ((t + i) % threads) as u32;
                    let key = ((i * 7) % 23) as f64 / 2.0;
                    match i % 8 {
                        6 if t == 0 => {
                            bank.clear();
                            clears.fetch_add(1, Ordering::Relaxed);
                        }
                        7 if t == 1 => {
                            bank.save(scratch)
                                .map_err(|e| format!("chaos save failed: {e}"))?;
                            saves.fetch_add(1, Ordering::Relaxed);
                        }
                        0 | 1 | 2 => bank.insert(model, 0, key, expected_cfg(model, key)),
                        _ => {
                            let mode = match i % 3 {
                                0 => CacheLookup::Exact,
                                1 => CacheLookup::NearestNeighbor { threshold: 0.0 },
                                _ => CacheLookup::WeightedAverage { threshold: 0.0 },
                            };
                            // Zero-threshold approximate modes only ever
                            // return exact matches, so every hit is
                            // checkable bit-for-bit.
                            if let Some(got) = bank.lookup(model, 0, key, mode) {
                                let want = expected_cfg(model, key);
                                if got != want {
                                    return Err(format!(
                                        "torn read: ({model}, {key}) returned {got:?}, \
                                         inserted values are always {want:?}"
                                    ));
                                }
                            }
                        }
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
                // Phase 2: settle. Disjoint keys per worker, no clears.
                settle.wait();
                let model = t as u32;
                for i in 0..ops_per_thread {
                    let key = (t * ops_per_thread + i) as f64;
                    bank.insert(model, 1, key, expected_cfg(model, key));
                    ops.fetch_add(1, Ordering::Relaxed);
                }
                for i in 0..ops_per_thread {
                    let key = (t * ops_per_thread + i) as f64;
                    let got = bank.lookup(model, 1, key, CacheLookup::Exact);
                    ops.fetch_add(1, Ordering::Relaxed);
                    if got != Some(expected_cfg(model, key)) {
                        return Err(format!(
                            "lost entry: worker {t} inserted ({model}, {key}) but read {got:?}"
                        ));
                    }
                }
                Ok(())
            }));
        }
        for worker in workers {
            match worker.join() {
                Ok(outcome) => outcome?,
                Err(_) => return Err("a stress worker panicked".to_string()),
            }
        }
        Ok(())
    });
    std::fs::remove_file(&scratch).ok();
    result?;

    // Settle-phase inserts are disjoint and un-cleared: all present.
    let settled = threads * ops_per_thread;
    let entries = bank.total_entries();
    if entries < settled {
        return Err(format!(
            "expected at least {settled} settle-phase entries, bank holds {entries}"
        ));
    }
    // Per-shard stats must sum to the aggregate the merged bank reports.
    let aggregate = bank.aggregate_stats();
    let merged = bank.merged_bank().aggregate_stats();
    if aggregate != merged {
        return Err(format!(
            "shard stats {aggregate:?} do not sum to merged-bank stats {merged:?}"
        ));
    }
    if aggregate.insertions < settled as u64 {
        return Err(format!(
            "aggregate insertions {} below settle-phase floor {settled}",
            aggregate.insertions
        ));
    }
    Ok(StressReport {
        threads,
        shards,
        ops: ops.into_inner(),
        clears: clears.into_inner(),
        saves: saves.into_inner(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_thread_stress_passes() {
        let report = concurrency_stress(8, 200).expect("stress gate must pass");
        assert_eq!(report.threads, 8);
        assert_eq!(report.shards, 16);
        assert!(report.clears > 0, "chaos phase must exercise clears");
        assert!(report.saves > 0, "chaos phase must exercise saves");
        assert!(report.entries >= 8 * 200);
    }

    #[test]
    fn floors_are_applied() {
        let report = concurrency_stress(0, 0).expect("tiny parameters are floored, not rejected");
        assert_eq!(report.threads, 2);
        assert!(report.ops >= 2 * 8);
    }
}
