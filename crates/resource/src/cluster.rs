//! Cluster conditions: the dynamically changing min/max/step bounds of the
//! resource space.
//!
//! §VI-B: Algorithm 1 takes "the current cluster conditions (mainly providing
//! the minimum and maximum cluster resources available currently)" and
//! "gathers the hill climb step sizes along all resource dimensions"
//! (`GetDiscreteSteps`). §VII Setup instantiates this as: "a cluster of 100
//! containers each having a maximum size of 10GB. Minimum allocation is 1
//! container of size 1GB and resources could be increased in discrete
//! intervals of 1 on either axis."

use crate::config::ResourceConfig;
use serde::{Deserialize, Serialize};

/// Bounds and granularity of the resource space, per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConditions {
    pub min: ResourceConfig,
    pub max: ResourceConfig,
    step: ResourceConfig,
}

impl ClusterConditions {
    /// Build conditions from per-dimension min/max/step vectors.
    pub fn new(min: ResourceConfig, max: ResourceConfig, step: ResourceConfig) -> Self {
        assert_eq!(min.dims(), max.dims(), "min/max dimensionality mismatch");
        assert_eq!(min.dims(), step.dims(), "min/step dimensionality mismatch");
        for i in 0..min.dims() {
            assert!(
                min.get(i) <= max.get(i),
                "dimension {i}: min {} > max {}",
                min.get(i),
                max.get(i)
            );
            assert!(step.get(i) > 0.0, "dimension {i}: step must be positive");
        }
        ClusterConditions { min, max, step }
    }

    /// The paper's default evaluation cluster (§VII Setup): 1–100 containers,
    /// 1–10 GB each, unit steps on both axes.
    pub fn paper_default() -> Self {
        ClusterConditions::two_dim(1.0..=100.0, 1.0..=10.0, 1.0, 1.0)
    }

    /// Convenience constructor for the 2-D ⟨containers, size⟩ space.
    pub fn two_dim(
        containers: std::ops::RangeInclusive<f64>,
        size_gb: std::ops::RangeInclusive<f64>,
        container_step: f64,
        size_step: f64,
    ) -> Self {
        ClusterConditions::new(
            ResourceConfig::containers_and_size(*containers.start(), *size_gb.start()),
            ResourceConfig::containers_and_size(*containers.end(), *size_gb.end()),
            ResourceConfig::containers_and_size(container_step, size_step),
        )
    }

    /// `GetDiscreteSteps` of Algorithm 1.
    #[inline]
    pub fn discrete_steps(&self) -> ResourceConfig {
        self.step
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.min.dims()
    }

    /// Number of grid points along dimension `i`.
    pub fn points_along(&self, i: usize) -> u64 {
        ((self.max.get(i) - self.min.get(i)) / self.step.get(i)).floor() as u64 + 1
    }

    /// Total number of grid points in the space (the brute-force search
    /// size; `rp · rc` in the paper's search-space formula §VI-B).
    pub fn grid_size(&self) -> u64 {
        (0..self.dims()).map(|i| self.points_along(i)).product()
    }

    /// Is `r` inside the bounds on every dimension? (Algorithm 1 lines
    /// 11–12 check each step against `cluster.min`/`cluster.max`.)
    pub fn contains(&self, r: &ResourceConfig) -> bool {
        (0..self.dims()).all(|i| r.get(i) >= self.min.get(i) && r.get(i) <= self.max.get(i))
    }

    /// Clamp `r` into bounds (used when cached configurations from a larger
    /// cluster are replayed under shrunken conditions).
    pub fn clamp(&self, r: &ResourceConfig) -> ResourceConfig {
        let mut out = *r;
        for i in 0..self.dims() {
            out.set(i, r.get(i).clamp(self.min.get(i), self.max.get(i)));
        }
        out
    }

    /// Iterate every grid point (row-major over dimensions). Used by the
    /// brute-force planner and by tests that cross-check hill climbing.
    pub fn grid(&self) -> GridIter {
        GridIter { cond: *self, current: Some(self.min) }
    }

    /// The grid point at row-major `index` (dimension 0 most significant,
    /// matching [`ClusterConditions::grid`] enumeration order). Lets the
    /// parallel brute-force planner split the grid into index ranges and
    /// break ties by global index, identically to a sequential scan.
    pub fn point_at(&self, index: u64) -> ResourceConfig {
        debug_assert!(index < self.grid_size(), "grid index out of range");
        let mut rem = index;
        let mut out = self.min;
        for i in (0..self.dims()).rev() {
            let n = self.points_along(i);
            let coord = rem % n;
            rem /= n;
            // Accumulate by repeated addition exactly as GridIter does, so
            // chunked scans see bit-identical coordinates even when the
            // step is not exactly representable (e.g. 0.1).
            let mut v = self.min.get(i);
            for _ in 0..coord {
                v += self.step.get(i);
            }
            out.set(i, v);
        }
        out
    }

    /// Iterate grid points starting from row-major `index` (same order as
    /// [`ClusterConditions::grid`]); combine with `take` to scan a chunk.
    pub fn grid_from(&self, index: u64) -> GridIter {
        let current = (index < self.grid_size()).then(|| self.point_at(index));
        GridIter { cond: *self, current }
    }

    /// Stable 64-bit fingerprint of the exact bounds and steps (FNV-1a over
    /// the bit patterns of every min/max/step coordinate). Two conditions
    /// fingerprint equal iff their grids are identical, so memo entries
    /// keyed on it are never replayed under a different resource space.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.dims() as u64);
        for i in 0..self.dims() {
            mix(self.min.get(i).to_bits());
            mix(self.max.get(i).to_bits());
            mix(self.step.get(i).to_bits());
        }
        h
    }
}

/// Iterator over all grid points of a [`ClusterConditions`] space.
pub struct GridIter {
    cond: ClusterConditions,
    current: Option<ResourceConfig>,
}

impl Iterator for GridIter {
    type Item = ResourceConfig;

    fn next(&mut self) -> Option<ResourceConfig> {
        let out = self.current?;
        // Advance like an odometer, least-significant dimension last.
        let mut next = out;
        let dims = self.cond.dims();
        let mut i = dims;
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            let stepped = next.get(i) + self.cond.discrete_steps().get(i);
            if stepped <= self.cond.max.get(i) + 1e-9 {
                next.set(i, stepped);
                self.current = Some(next);
                break;
            }
            next.set(i, self.cond.min.get(i));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_grid_is_100_by_10() {
        let c = ClusterConditions::paper_default();
        assert_eq!(c.points_along(0), 100);
        assert_eq!(c.points_along(1), 10);
        assert_eq!(c.grid_size(), 1000);
    }

    #[test]
    fn contains_checks_all_dims() {
        let c = ClusterConditions::paper_default();
        assert!(c.contains(&ResourceConfig::containers_and_size(1.0, 1.0)));
        assert!(c.contains(&ResourceConfig::containers_and_size(100.0, 10.0)));
        assert!(!c.contains(&ResourceConfig::containers_and_size(101.0, 10.0)));
        assert!(!c.contains(&ResourceConfig::containers_and_size(100.0, 10.5)));
        assert!(!c.contains(&ResourceConfig::containers_and_size(0.0, 5.0)));
    }

    #[test]
    fn clamp_pulls_into_bounds() {
        let c = ClusterConditions::paper_default();
        let r = c.clamp(&ResourceConfig::containers_and_size(500.0, 0.5));
        assert_eq!(r, ResourceConfig::containers_and_size(100.0, 1.0));
    }

    #[test]
    fn grid_enumerates_every_point_once() {
        let c = ClusterConditions::two_dim(1.0..=3.0, 1.0..=2.0, 1.0, 1.0);
        let pts: Vec<_> = c.grid().collect();
        assert_eq!(pts.len() as u64, c.grid_size());
        assert_eq!(pts.len(), 6);
        // All unique.
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Bounds respected.
        assert!(pts.iter().all(|p| c.contains(p)));
    }

    #[test]
    fn grid_handles_non_unit_steps() {
        let c = ClusterConditions::two_dim(10.0..=50.0, 2.0..=8.0, 10.0, 2.0);
        assert_eq!(c.points_along(0), 5);
        assert_eq!(c.points_along(1), 4);
        let pts: Vec<_> = c.grid().collect();
        assert_eq!(pts.len(), 20);
    }

    #[test]
    fn single_point_grid() {
        let c = ClusterConditions::two_dim(5.0..=5.0, 3.0..=3.0, 1.0, 1.0);
        let pts: Vec<_> = c.grid().collect();
        assert_eq!(pts, vec![ResourceConfig::containers_and_size(5.0, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "min")]
    fn inverted_bounds_rejected() {
        ClusterConditions::two_dim(10.0..=1.0, 1.0..=10.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_rejected() {
        ClusterConditions::two_dim(1.0..=10.0, 1.0..=10.0, 0.0, 1.0);
    }

    #[test]
    fn fig15b_scaled_cluster_sizes() {
        // Fig. 15(b): up to 100K containers and 100 GB container sizes.
        let c = ClusterConditions::two_dim(1.0..=100_000.0, 1.0..=100.0, 1.0, 1.0);
        assert_eq!(c.grid_size(), 10_000_000);
    }
}
