//! Planning budgets: wall-clock deadlines and cost-evaluation caps, checked
//! cooperatively by the planning stack.
//!
//! §VI embeds a resource-planning search inside every `getPlanCost` call, so
//! one optimizer invocation can burn unbounded work. A [`PlanningBudget`]
//! bounds it: the coster charges every model evaluation against a shared
//! atomic counter and periodically re-checks the deadline; once either limit
//! trips, every subsequent cost evaluation short-circuits to "infeasible"
//! and the planners drain in bounded time. The optimizer then *degrades*
//! (see `raqo-core`'s ladder) instead of failing.
//!
//! Two invariants matter for reproducibility:
//!
//! - An **unlimited** tracker is free: `charge` is a branch on a `bool`,
//!   no atomics, no clock — plans are bit-identical to a build without
//!   budgets.
//! - A limited-but-unexhausted run performs the same evaluations in the
//!   same order as an unlimited one; budgets only ever cut work *off the
//!   end* of the search.
//!
//! Overshoot is bounded: exhaustion is detected at evaluation granularity,
//! so a search never runs more than one batched chunk (256 evaluations)
//! past its cap, and the deadline is re-checked at least every
//! [`DEADLINE_CHECK_EVERY`] evaluations.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How often (in cost evaluations) a limited tracker re-reads the clock.
pub const DEADLINE_CHECK_EVERY: u64 = 256;

/// A declarative planning budget: how much work one `optimize` call may
/// spend. `Default` is unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanningBudget {
    /// Wall-clock deadline for the whole planning call.
    pub deadline: Option<Duration>,
    /// Maximum number of cost-model evaluations.
    pub max_evals: Option<u64>,
}

impl PlanningBudget {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        PlanningBudget::default()
    }

    /// Budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        PlanningBudget { deadline: Some(deadline), max_evals: None }
    }

    /// Budget with only an evaluation cap.
    pub fn with_max_evals(max_evals: u64) -> Self {
        PlanningBudget { deadline: None, max_evals: Some(max_evals) }
    }

    /// Builder: add a deadline.
    pub fn and_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: add an evaluation cap.
    pub fn and_max_evals(mut self, max_evals: u64) -> Self {
        self.max_evals = Some(max_evals);
        self
    }

    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_evals.is_none()
    }
}

/// Which limit tripped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetTrigger {
    /// The wall-clock deadline passed.
    Deadline,
    /// The evaluation cap was reached.
    Evals,
}

impl std::fmt::Display for BudgetTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetTrigger::Deadline => write!(f, "deadline"),
            BudgetTrigger::Evals => write!(f, "eval_budget"),
        }
    }
}

const EXHAUSTED_NO: u8 = 0;
const EXHAUSTED_DEADLINE: u8 = 1;
const EXHAUSTED_EVALS: u8 = 2;

/// The runtime state of one planning call's budget, shared (by reference)
/// across the coster's worker threads. Created fresh per `optimize` call so
/// the deadline clock starts at the call, not at optimizer construction.
#[derive(Debug)]
pub struct BudgetTracker {
    limited: bool,
    deadline_at: Option<Instant>,
    max_evals: AtomicU64,
    evals: AtomicU64,
    exhausted: AtomicU8,
}

impl BudgetTracker {
    /// A tracker that never exhausts; `charge` is a single branch.
    pub fn unlimited() -> Self {
        BudgetTracker {
            limited: false,
            deadline_at: None,
            max_evals: AtomicU64::new(u64::MAX),
            evals: AtomicU64::new(0),
            exhausted: AtomicU8::new(EXHAUSTED_NO),
        }
    }

    /// Start the clock on a budget: the deadline is measured from now.
    pub fn start(budget: PlanningBudget) -> Self {
        if budget.is_unlimited() {
            return BudgetTracker::unlimited();
        }
        BudgetTracker {
            limited: true,
            deadline_at: budget.deadline.map(|d| Instant::now() + d),
            max_evals: AtomicU64::new(budget.max_evals.unwrap_or(u64::MAX)),
            evals: AtomicU64::new(0),
            exhausted: AtomicU8::new(EXHAUSTED_NO),
        }
    }

    fn latch(&self, code: u8) {
        // First trigger wins; later ones keep the original cause.
        let _ = self.exhausted.compare_exchange(
            EXHAUSTED_NO,
            code,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Charge `n` cost evaluations. Returns `true` while within budget.
    /// Re-checks the deadline whenever the running total crosses a
    /// [`DEADLINE_CHECK_EVERY`] boundary, so stalls inside a long scan are
    /// still noticed.
    pub fn charge(&self, n: u64) -> bool {
        if !self.limited {
            return true;
        }
        let total = self.evals.fetch_add(n, Ordering::Relaxed) + n;
        if total > self.max_evals.load(Ordering::Relaxed) {
            self.latch(EXHAUSTED_EVALS);
        }
        if total % DEADLINE_CHECK_EVERY < n {
            self.check_deadline();
        }
        self.exhausted.load(Ordering::Relaxed) == EXHAUSTED_NO
    }

    /// Explicit deadline check (called at coarse boundaries like
    /// `getPlanCost` entry). Free when no deadline is set.
    pub fn check_deadline(&self) -> bool {
        match self.deadline_at {
            None => true,
            Some(at) => {
                if Instant::now() >= at {
                    self.latch(EXHAUSTED_DEADLINE);
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Which limit tripped, if any. One relaxed load.
    pub fn exhausted(&self) -> Option<BudgetTrigger> {
        match self.exhausted.load(Ordering::Relaxed) {
            EXHAUSTED_DEADLINE => Some(BudgetTrigger::Deadline),
            EXHAUSTED_EVALS => Some(BudgetTrigger::Evals),
            _ => None,
        }
    }

    /// Evaluations charged so far.
    pub fn evals_used(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    pub fn is_limited(&self) -> bool {
        self.limited
    }

    /// Extend the evaluation cap by `extra` and clear the exhaustion latch,
    /// giving a lower degradation rung a bounded chance to produce a plan.
    /// The deadline is *not* extended — if it already passed, the next
    /// [`BudgetTracker::check_deadline`] re-latches immediately and the
    /// rung falls through fast.
    pub fn grant_grace(&self, extra: u64) {
        let cap = self.max_evals.load(Ordering::Relaxed);
        let used = self.evals.load(Ordering::Relaxed);
        // Re-base on whatever was actually spent so overshoot from a
        // mid-chunk exhaustion doesn't eat the whole grace allowance.
        self.max_evals.store(used.max(cap).saturating_add(extra), Ordering::Relaxed);
        self.exhausted.store(EXHAUSTED_NO, Ordering::Relaxed);
    }
}

impl Default for BudgetTracker {
    fn default() -> Self {
        BudgetTracker::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let t = BudgetTracker::unlimited();
        assert!(t.charge(1_000_000));
        assert!(t.check_deadline());
        assert_eq!(t.exhausted(), None);
        // Unlimited trackers skip the counter entirely (free path).
        assert_eq!(t.evals_used(), 0);
    }

    #[test]
    fn eval_cap_latches_evals_trigger() {
        let t = BudgetTracker::start(PlanningBudget::with_max_evals(10));
        assert!(t.charge(10), "exactly at cap is still within budget");
        assert!(!t.charge(1));
        assert_eq!(t.exhausted(), Some(BudgetTrigger::Evals));
        assert_eq!(t.evals_used(), 11);
    }

    #[test]
    fn zero_eval_budget_exhausts_on_first_charge() {
        let t = BudgetTracker::start(PlanningBudget::with_max_evals(0));
        assert!(!t.charge(1));
        assert_eq!(t.exhausted(), Some(BudgetTrigger::Evals));
    }

    #[test]
    fn elapsed_deadline_latches_deadline_trigger() {
        let t = BudgetTracker::start(PlanningBudget::with_deadline(Duration::ZERO));
        assert!(!t.check_deadline());
        assert_eq!(t.exhausted(), Some(BudgetTrigger::Deadline));
    }

    #[test]
    fn deadline_noticed_inside_charge_loop() {
        let t = BudgetTracker::start(PlanningBudget::with_deadline(Duration::ZERO));
        let mut within = true;
        for _ in 0..2 * DEADLINE_CHECK_EVERY {
            within = t.charge(1);
        }
        assert!(!within);
        assert_eq!(t.exhausted(), Some(BudgetTrigger::Deadline));
    }

    #[test]
    fn first_trigger_wins() {
        let t = BudgetTracker::start(
            PlanningBudget::with_max_evals(1).and_deadline(Duration::ZERO),
        );
        assert!(!t.charge(5));
        let first = t.exhausted().unwrap();
        t.check_deadline();
        t.charge(5);
        assert_eq!(t.exhausted(), Some(first));
    }

    #[test]
    fn grace_clears_eval_latch_but_not_the_clock() {
        let t = BudgetTracker::start(PlanningBudget::with_max_evals(5));
        assert!(!t.charge(10));
        t.grant_grace(100);
        assert_eq!(t.exhausted(), None);
        assert!(t.charge(50), "grace allowance is spendable");
        assert!(!t.charge(100), "grace allowance is itself bounded");
    }

    #[test]
    fn charges_are_shared_across_threads() {
        let t = BudgetTracker::start(PlanningBudget::with_max_evals(1000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        t.charge(1);
                    }
                });
            }
        });
        assert_eq!(t.evals_used(), 400);
        assert_eq!(t.exhausted(), None);
    }
}
