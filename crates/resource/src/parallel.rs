//! Parallel resource planning: chunked brute force and multi-start hill
//! climbing over OS threads.
//!
//! The paper's resource planners are embarrassingly parallel — every grid
//! point (brute force) and every start point (hill climbing) is an
//! independent cost-model evaluation. This module exploits that with
//! `std::thread::scope` workers while keeping results *deterministic*:
//!
//! * [`brute_force_parallel`] splits the grid into contiguous index ranges
//!   and merges per-chunk winners by `(cost, global grid index)`, which is
//!   exactly the sequential scan's "earlier grid point wins ties" rule —
//!   the outcome is bit-identical to [`brute_force`] for any worker count.
//! * [`hill_climb_multi`] climbs from a deterministic seed set (by default
//!   a low-discrepancy Halton spread plus the min and max grid corners, see
//!   [`SeedStrategy`]). Each climb is independent, so scheduling cannot
//!   change the merged result: the best local optimum wins, ties broken
//!   toward the earlier seed, and `iterations` sums all climbs (the true
//!   total of cost evaluations spent).
//!
//! [`Parallelism::Off`] routes both entry points through the sequential
//! code paths so the paper's Figs. 12–14 iteration accounting stays
//! reproducible run-to-run regardless of the host's core count.
//!
//! **Panic isolation**: every scoped worker runs under `catch_unwind`. A
//! worker that panics (a buggy cost model, an injected chaos fault) no
//! longer tears down the whole planning call — its chunk is re-executed
//! sequentially on the calling thread, which preserves bit-identical
//! results, and the recovery is counted as `raqo_worker_panics_total`. A
//! panic that *also* reproduces on the sequential re-run propagates: it is
//! deterministic, so hiding it would mask a real bug.

use crate::cluster::ClusterConditions;
use crate::config::ResourceConfig;
use crate::planner::{brute_force, brute_force_batch, hill_climb, PlanningOutcome, BATCH_CHUNK};
use crate::probes;
use raqo_telemetry::{Counter, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How much thread parallelism resource planning may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Strictly sequential: identical evaluation order and iteration
    /// accounting to the scalar planners (the reproducibility mode).
    Off,
    /// Exactly `n` worker threads (clamped to at least 1).
    Threads(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// Resolved worker count (≥ 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
        }
    }
}

/// Exhaustive grid search split across worker threads.
///
/// Bit-identical to [`brute_force`]: each worker scans a contiguous
/// row-major index range of the grid, tracking the lowest-cost point in its
/// range (first such point on ties); the merge then prefers lower cost and,
/// on equal cost, the lower global index — the same total order a single
/// sequential scan applies. `iterations` is the full grid size, as for the
/// sequential planner.
pub fn brute_force_parallel<F>(
    cluster: &ClusterConditions,
    cost_fn: F,
    parallelism: Parallelism,
) -> PlanningOutcome
where
    F: Fn(&ResourceConfig) -> f64 + Sync,
{
    brute_force_parallel_traced(cluster, cost_fn, parallelism, &Telemetry::disabled())
}

/// Sequential scan of one contiguous grid chunk `[lo, hi)`, tracking the
/// lowest-cost point (first on ties). Shared by the spawned workers and the
/// panic-recovery path so both produce identical results.
fn scan_chunk<F>(
    cluster: &ClusterConditions,
    lo: u64,
    hi: u64,
    cost_fn: &F,
) -> Option<(u64, ResourceConfig, f64)>
where
    F: Fn(&ResourceConfig) -> f64,
{
    let mut best: Option<(u64, ResourceConfig, f64)> = None;
    for (off, r) in cluster.grid_from(lo).take((hi.saturating_sub(lo)) as usize).enumerate() {
        let c = cost_fn(&r);
        match best {
            Some((_, _, bc)) if bc <= c => {}
            _ => best = Some((lo + off as u64, r, c)),
        }
    }
    best
}

/// [`brute_force_parallel`] with a telemetry sink for worker-panic
/// accounting.
pub fn brute_force_parallel_traced<F>(
    cluster: &ClusterConditions,
    cost_fn: F,
    parallelism: Parallelism,
    tel: &Telemetry,
) -> PlanningOutcome
where
    F: Fn(&ResourceConfig) -> f64 + Sync,
{
    let total = cluster.grid_size();
    let workers = parallelism.workers().min(total.max(1) as usize).max(1);
    if matches!(parallelism, Parallelism::Off) || workers == 1 {
        return brute_force(cluster, |r| cost_fn(r));
    }

    let chunk = total.div_ceil(workers as u64);
    let cost_fn = &cost_fn;
    // Workers enter the caller's trace scope so anything the cost closure
    // reports (e.g. a sanitized model output) attributes to the right
    // ticket rather than an ambient worker thread.
    let scope_token = tel.current_scope();
    // Ok(best) = worker finished; Err(lo, hi) = worker panicked, chunk
    // still owed.
    let per_chunk: Vec<Result<Option<(u64, ResourceConfig, f64)>, (u64, u64)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    let h = scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            let _in_scope = tel.enter_scope(scope_token);
                            let _ = probes::probe("resource.worker.grid");
                            scan_chunk(cluster, lo, hi, cost_fn)
                        }))
                    });
                    (lo, hi, h)
                })
                .collect();
            handles
                .into_iter()
                .map(|(lo, hi, h)| match h.join() {
                    Ok(Ok(best)) => Ok(best),
                    // The worker panicked (payload caught by catch_unwind) or
                    // died before reaching it; either way the chunk is re-run.
                    Ok(Err(_payload)) | Err(_payload) => Err((lo, hi)),
                })
                .collect()
        });

    let mut best: Option<(u64, ResourceConfig, f64)> = None;
    for entry in per_chunk {
        let chunk_best = match entry {
            Ok(b) => b,
            Err((lo, hi)) => {
                // Recover the lost chunk sequentially on this thread — same
                // scan, same tie-breaks, so the merged result is bit-identical
                // to an all-healthy run.
                tel.inc(Counter::WorkerPanics);
                scan_chunk(cluster, lo, hi, cost_fn)
            }
        };
        if let Some(c) = chunk_best {
            match best {
                Some(b) if b.2.total_cmp(&c.2).then(b.0.cmp(&c.0)).is_le() => {}
                _ => best = Some(c),
            }
        }
    }
    // Infallible: workers cover the whole grid, grids have >= 1 point by
    // construction (ClusterConditions ranges are inclusive), and failed
    // chunks were re-scanned above.
    let (_, config, cost) = best.expect("cluster grid is never empty");
    PlanningOutcome { config, cost, iterations: total }
}

/// Batched variant of [`brute_force_parallel`]: each worker scans its
/// contiguous index range in [`BATCH_CHUNK`]-sized slices through a batched
/// cost evaluator (see [`brute_force_batch`] for the evaluator contract),
/// instead of calling a per-point closure. Winner selection stays by
/// `(cost, global grid index)`, so the result is bit-identical to the
/// sequential scan for any worker count whenever the evaluator agrees with
/// the scalar cost function point-wise.
pub fn brute_force_parallel_batch<F>(
    cluster: &ClusterConditions,
    batch_fn: F,
    parallelism: Parallelism,
) -> PlanningOutcome
where
    F: Fn(u64, &[ResourceConfig], &mut [f64]) + Sync,
{
    brute_force_parallel_batch_traced(cluster, batch_fn, parallelism, &Telemetry::disabled())
}

/// Batched scan of one contiguous grid chunk `[lo, hi)` in
/// [`BATCH_CHUNK`]-sized slices. Shared by workers and panic recovery.
fn scan_chunk_batch<F>(
    cluster: &ClusterConditions,
    lo: u64,
    hi: u64,
    batch_fn: &F,
) -> Option<(u64, ResourceConfig, f64)>
where
    F: Fn(u64, &[ResourceConfig], &mut [f64]),
{
    let mut best: Option<(u64, ResourceConfig, f64)> = None;
    let mut configs: Vec<ResourceConfig> = Vec::with_capacity(BATCH_CHUNK);
    let mut costs = vec![0.0f64; BATCH_CHUNK];
    let mut iter = cluster.grid_from(lo);
    let mut at = lo;
    while at < hi {
        let take = ((hi - at) as usize).min(BATCH_CHUNK);
        configs.clear();
        configs.extend(iter.by_ref().take(take));
        let n = configs.len();
        if n == 0 {
            break;
        }
        batch_fn(at, &configs, &mut costs[..n]);
        for (off, (r, &c)) in configs.iter().zip(&costs[..n]).enumerate() {
            match best {
                Some((_, _, bc)) if bc <= c => {}
                _ => best = Some((at + off as u64, *r, c)),
            }
        }
        at += n as u64;
    }
    best
}

/// [`brute_force_parallel_batch`] with a telemetry sink for worker-panic
/// accounting.
pub fn brute_force_parallel_batch_traced<F>(
    cluster: &ClusterConditions,
    batch_fn: F,
    parallelism: Parallelism,
    tel: &Telemetry,
) -> PlanningOutcome
where
    F: Fn(u64, &[ResourceConfig], &mut [f64]) + Sync,
{
    let total = cluster.grid_size();
    let workers = parallelism.workers().min(total.max(1) as usize).max(1);
    if matches!(parallelism, Parallelism::Off) || workers == 1 {
        return brute_force_batch(cluster, |lo, configs, costs| batch_fn(lo, configs, costs));
    }

    let chunk = total.div_ceil(workers as u64);
    let batch_fn = &batch_fn;
    let scope_token = tel.current_scope();
    let per_chunk: Vec<Result<Option<(u64, ResourceConfig, f64)>, (u64, u64)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    let h = scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            let _in_scope = tel.enter_scope(scope_token);
                            let _ = probes::probe("resource.worker.grid_batch");
                            scan_chunk_batch(cluster, lo, hi, batch_fn)
                        }))
                    });
                    (lo, hi, h)
                })
                .collect();
            handles
                .into_iter()
                .map(|(lo, hi, h)| match h.join() {
                    Ok(Ok(best)) => Ok(best),
                    Ok(Err(_payload)) | Err(_payload) => Err((lo, hi)),
                })
                .collect()
        });

    let mut best: Option<(u64, ResourceConfig, f64)> = None;
    for entry in per_chunk {
        let chunk_best = match entry {
            Ok(b) => b,
            Err((lo, hi)) => {
                tel.inc(Counter::WorkerPanics);
                scan_chunk_batch(cluster, lo, hi, batch_fn)
            }
        };
        if let Some(c) = chunk_best {
            match best {
                Some(b) if b.2.total_cmp(&c.2).then(b.0.cmp(&c.0)).is_le() => {}
                _ => best = Some(c),
            }
        }
    }
    // Infallible for the same reason as the scalar variant: full grid
    // coverage, non-empty grid, failed chunks re-scanned.
    let (_, config, cost) = best.expect("cluster grid is never empty");
    PlanningOutcome { config, cost, iterations: total }
}

/// Which deterministic seed set multi-start hill climbing uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedStrategy {
    /// Low-discrepancy Halton points over the cluster bounding box, plus the
    /// min corner (the paper's Algorithm 1 start) and the grid-max corner
    /// (kept because BHJ feasibility is monotone in container size: whenever
    /// any grid point is feasible, the max corner is too). The default:
    /// Halton points spread over the interior instead of clustering on the
    /// boundary, so on multimodal surfaces they find interior basins the
    /// corner seeds miss.
    #[default]
    Halton,
    /// The former default: every corner of the bounding box followed by the
    /// grid-snapped centroid. Kept as a fallback/reference mode.
    CornersCentroid,
}

/// The value of grid point `steps` along dimension `dim`, computed by
/// repeated step addition so it is bit-identical to the grid iterator's
/// coordinates.
fn grid_value(cluster: &ClusterConditions, dim: usize, steps: u64) -> f64 {
    let mut v = cluster.min.get(dim);
    for _ in 0..steps {
        v += cluster.discrete_steps().get(dim);
    }
    v
}

/// Element `index` of the van der Corput sequence in the given base — the
/// per-dimension building block of the Halton sequence. Returns a value in
/// `(0, 1)` for `index >= 1`.
fn halton(mut index: u64, base: u64) -> f64 {
    let mut f = 1.0;
    let mut r = 0.0;
    while index > 0 {
        f /= base as f64;
        r += f * (index % base) as f64;
        index /= base;
    }
    r
}

/// Deterministic multi-start seeds with the default [`SeedStrategy`].
pub fn multi_start_seeds(cluster: &ClusterConditions) -> Vec<ResourceConfig> {
    seeds_with(cluster, SeedStrategy::default())
}

/// Deterministic multi-start seeds for an explicit strategy. The minimum
/// corner always comes first so a single seed degenerates to the paper's
/// Algorithm 1 start; every seed is a reachable grid point and duplicates
/// are removed (a 1-point cluster yields exactly one seed).
pub fn seeds_with(cluster: &ClusterConditions, strategy: SeedStrategy) -> Vec<ResourceConfig> {
    match strategy {
        SeedStrategy::Halton => halton_seeds(cluster),
        SeedStrategy::CornersCentroid => corners_centroid_seeds(cluster),
    }
}

/// Min corner, grid-max corner, then `2^dims - 1` Halton points (bases
/// 2, 3, 5, 7 per dimension) snapped to the grid — the same seed count as
/// the corners+centroid set on a full-dimensional cluster.
fn halton_seeds(cluster: &ClusterConditions) -> Vec<ResourceConfig> {
    const PRIMES: [u64; 4] = [2, 3, 5, 7];
    let dims = cluster.dims();
    assert!(dims <= PRIMES.len(), "Halton bases cover up to {} dims", PRIMES.len());
    let mut seeds: Vec<ResourceConfig> = Vec::with_capacity((1 << dims) + 1);
    seeds.push(cluster.min);
    let mut top = cluster.min;
    for i in 0..dims {
        top.set(i, grid_value(cluster, i, cluster.points_along(i) - 1));
    }
    if !seeds.contains(&top) {
        seeds.push(top);
    }
    let count = (1u64 << dims) - 1;
    for h in 1..=count {
        let mut r = cluster.min;
        for i in 0..dims {
            let n = cluster.points_along(i);
            let steps = (halton(h, PRIMES[i]) * (n - 1) as f64).round() as u64;
            r.set(i, grid_value(cluster, i, steps));
        }
        if !seeds.contains(&r) {
            seeds.push(r);
        }
    }
    seeds
}

/// Every corner of the bounding box (2^dims points, deduplicated when
/// min == max on a dimension) followed by the grid-snapped centroid.
fn corners_centroid_seeds(cluster: &ClusterConditions) -> Vec<ResourceConfig> {
    let dims = cluster.dims();
    let mut seeds: Vec<ResourceConfig> = Vec::with_capacity((1 << dims) + 1);
    for corner in 0u32..(1 << dims) {
        let mut r = cluster.min;
        for i in 0..dims {
            if corner & (1 << i) != 0 {
                // Top of the *grid*, not the raw max bound: step from min so
                // the seed is always a reachable grid point.
                r.set(i, grid_value(cluster, i, cluster.points_along(i) - 1));
            }
        }
        if !seeds.contains(&r) {
            seeds.push(r);
        }
    }
    let mut centroid = cluster.min;
    for i in 0..dims {
        centroid.set(i, grid_value(cluster, i, cluster.points_along(i) / 2));
    }
    if !seeds.contains(&centroid) {
        seeds.push(centroid);
    }
    seeds
}

/// Multi-start hill climbing: run Algorithm 1 from every
/// [`multi_start_seeds`] point and keep the best local optimum.
///
/// The merged outcome is independent of the worker count: climbs do not
/// interact, the winner is the lowest-cost optimum with ties broken toward
/// the earlier seed, and `iterations` is the sum over all climbs — the
/// actual number of cost evaluations spent, so speed/quality trade-offs
/// stay visible in the Figs. 13–14 accounting.
pub fn hill_climb_multi<F>(
    cluster: &ClusterConditions,
    cost_fn: F,
    parallelism: Parallelism,
) -> PlanningOutcome
where
    F: Fn(&ResourceConfig) -> f64 + Sync,
{
    hill_climb_multi_with(cluster, cost_fn, parallelism, SeedStrategy::default())
}

/// [`hill_climb_multi`] with an explicit [`SeedStrategy`].
pub fn hill_climb_multi_with<F>(
    cluster: &ClusterConditions,
    cost_fn: F,
    parallelism: Parallelism,
    strategy: SeedStrategy,
) -> PlanningOutcome
where
    F: Fn(&ResourceConfig) -> f64 + Sync,
{
    hill_climb_multi_with_traced(cluster, cost_fn, parallelism, strategy, &Telemetry::disabled())
}

/// [`hill_climb_multi_with`] with a telemetry sink for worker-panic
/// accounting.
pub fn hill_climb_multi_with_traced<F>(
    cluster: &ClusterConditions,
    cost_fn: F,
    parallelism: Parallelism,
    strategy: SeedStrategy,
    tel: &Telemetry,
) -> PlanningOutcome
where
    F: Fn(&ResourceConfig) -> f64 + Sync,
{
    let seeds = seeds_with(cluster, strategy);
    let outcomes: Vec<PlanningOutcome> = if matches!(parallelism, Parallelism::Off)
        || parallelism.workers() == 1
        || seeds.len() == 1
    {
        seeds.iter().map(|&s| hill_climb(cluster, s, |r| cost_fn(r))).collect()
    } else {
        let cost_fn = &cost_fn;
        let seeds = &seeds;
        let scope_token = tel.current_scope();
        let per_seed: Vec<Result<PlanningOutcome, ResourceConfig>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = seeds
                    .iter()
                    .map(|&s| {
                        let h = scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(|| {
                                let _in_scope = tel.enter_scope(scope_token);
                                let _ = probes::probe("resource.worker.climb");
                                hill_climb(cluster, s, |r| cost_fn(r))
                            }))
                        });
                        (s, h)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(s, h)| match h.join() {
                        Ok(Ok(out)) => Ok(out),
                        Ok(Err(_payload)) | Err(_payload) => Err(s),
                    })
                    .collect()
            });
        per_seed
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|seed| {
                    // Re-climb the lost seed sequentially; climbs are
                    // independent, so this reproduces the worker's result.
                    tel.inc(Counter::WorkerPanics);
                    hill_climb(cluster, seed, |r| cost_fn(r))
                })
            })
            .collect()
    };

    let iterations = outcomes.iter().map(|o| o.iterations).sum();
    let best = outcomes
        .into_iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| a.cost.total_cmp(&b.cost).then(ai.cmp(bi)))
        .map(|(_, o)| o)
        // Infallible: seeds_with always returns >= 1 seed (the min corner).
        .expect("at least one seed");
    PlanningOutcome { iterations, ..best }
}

/// Multi-start hill climbing driven by a *batched* cost evaluator: instead
/// of one thread per seed issuing scalar cost calls, a single thread runs
/// every live seed in lock-step and gathers each round's whole candidate
/// neighborhood (≤ 2 probes × dims × live seeds) into one `batch_fn` call
/// per dimension — wide enough for the batched cost kernel (and, with the
/// `simd` feature of `raqo-cost`, its AVX2 path) to pay off.
///
/// `batch_fn(configs, costs)` must fill `costs[i]` with the cost at
/// `configs[i]`, using `f64::INFINITY` for infeasible points — the same
/// contract as [`brute_force_batch`] minus the grid index (climb probes are
/// not grid-indexed).
///
/// The outcome is **bit-identical** to [`hill_climb_multi_with`] (for any
/// [`Parallelism`]) whenever the evaluator agrees with the scalar cost
/// function point-wise:
///
/// * probe configurations replay the scalar climber's nudge → evaluate →
///   backtrack arithmetic exactly, so even floating-point drift of a
///   backtracked coordinate is reproduced;
/// * the per-dimension accept logic (compare against the round's running
///   `best_cost`, last strict improvement wins, reapply the winning step
///   after both candidates) is replayed from the batched costs in the same
///   probe order;
/// * `iterations` counts the same distinct configurations probed, summed
///   over all seeds, and the winner is merged by `(cost, seed index)`.
pub fn hill_climb_multi_batched<F>(
    cluster: &ClusterConditions,
    batch_fn: F,
    strategy: SeedStrategy,
) -> PlanningOutcome
where
    F: FnMut(&[ResourceConfig], &mut [f64]),
{
    hill_climb_multi_batched_traced(cluster, batch_fn, strategy, &Telemetry::disabled())
}

/// [`hill_climb_multi_batched`] with a telemetry sink: each lock-step round
/// (one whole-neighborhood sweep over all live seeds) increments
/// `raqo_hill_climb_batched_rounds_total`.
pub fn hill_climb_multi_batched_traced<F>(
    cluster: &ClusterConditions,
    mut batch_fn: F,
    strategy: SeedStrategy,
    tel: &Telemetry,
) -> PlanningOutcome
where
    F: FnMut(&[ResourceConfig], &mut [f64]),
{
    /// One seed's climb state across lock-step rounds.
    struct Climb {
        curr: ResourceConfig,
        curr_cost: f64,
        /// The round's running best (Algorithm 1 line 6), shared across
        /// dimensions within a round exactly like the scalar climber's.
        best_cost: f64,
        iterations: u64,
        live: bool,
    }

    let seeds = seeds_with(cluster, strategy);
    let step_size = cluster.discrete_steps();
    let dims = cluster.dims();
    let candidate = [-1.0, 1.0];

    // Round 0: every seed's start cost in one batch.
    let mut costs = vec![0.0f64; seeds.len()];
    batch_fn(&seeds, &mut costs);
    let mut climbs: Vec<Climb> = seeds
        .iter()
        .zip(&costs)
        .map(|(&s, &c)| Climb { curr: s, curr_cost: c, best_cost: c, iterations: 1, live: true })
        .collect();

    let mut probe_configs: Vec<ResourceConfig> = Vec::new();
    // (climb index, candidate) per gathered probe, in replay order.
    let mut probe_meta: Vec<(usize, f64)> = Vec::new();

    while climbs.iter().any(|c| c.live) {
        tel.inc(Counter::HillClimbBatchedRounds);
        for c in climbs.iter_mut().filter(|c| c.live) {
            c.best_cost = c.curr_cost;
        }
        for i in 0..dims {
            probe_configs.clear();
            probe_meta.clear();
            for (ci, c) in climbs.iter_mut().enumerate().filter(|(_, c)| c.live) {
                for &cand in &candidate {
                    let i_val = step_size.get(i) * cand;
                    let stepped = c.curr.get(i) + i_val;
                    if stepped <= cluster.max.get(i) && stepped >= cluster.min.get(i) {
                        // Nudge + snapshot + backtrack, exactly as the scalar
                        // climber does, so any floating-point drift of the
                        // backtracked coordinate is replayed too.
                        c.curr.nudge(i, i_val);
                        probe_configs.push(c.curr);
                        c.curr.nudge(i, -i_val);
                        probe_meta.push((ci, cand));
                    }
                }
            }
            if probe_configs.is_empty() {
                continue;
            }
            costs.resize(probe_configs.len(), 0.0);
            batch_fn(&probe_configs, &mut costs[..probe_configs.len()]);

            // Replay lines 8–19 per seed from the batched costs: probes were
            // gathered in (seed, candidate) order, so a linear scan with a
            // per-seed `best` register reproduces the scalar accept logic.
            let mut at = 0;
            while at < probe_meta.len() {
                let ci = probe_meta[at].0;
                let mut best: Option<f64> = None;
                while at < probe_meta.len() && probe_meta[at].0 == ci {
                    let (_, cand) = probe_meta[at];
                    let temp = costs[at];
                    let c = &mut climbs[ci];
                    c.iterations += 1;
                    if temp < c.best_cost {
                        c.best_cost = temp;
                        best = Some(cand);
                    }
                    at += 1;
                }
                if let Some(cand) = best {
                    climbs[ci].curr.nudge(i, step_size.get(i) * cand);
                }
            }
        }
        for c in climbs.iter_mut().filter(|c| c.live) {
            if c.best_cost >= c.curr_cost {
                c.live = false; // local optimum: Algorithm 1 lines 20–21
            } else {
                c.curr_cost = c.best_cost;
            }
        }
    }

    let iterations = climbs.iter().map(|c| c.iterations).sum();
    let (_, best) = climbs
        .iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| a.curr_cost.total_cmp(&b.curr_cost).then(ai.cmp(bi)))
        // Infallible: seeds_with always returns >= 1 seed (the min corner).
        .expect("at least one seed");
    PlanningOutcome { config: best.curr, cost: best.curr_cost, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bowl(r: &ResourceConfig) -> f64 {
        let dc = r.containers() - 40.0;
        let ds = r.container_size_gb() - 7.0;
        dc * dc + 3.0 * ds * ds
    }

    #[test]
    fn parallelism_workers_resolve() {
        assert_eq!(Parallelism::Off.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn parallel_brute_force_matches_sequential_bitwise() {
        let cluster = ClusterConditions::paper_default();
        let seq = brute_force(&cluster, bowl);
        for par in [Parallelism::Off, Parallelism::Threads(3), Parallelism::Threads(7), Parallelism::Auto] {
            let out = brute_force_parallel(&cluster, bowl, par);
            assert_eq!(out.config, seq.config, "{par:?}");
            assert!(out.cost.to_bits() == seq.cost.to_bits(), "{par:?}");
            assert_eq!(out.iterations, seq.iterations, "{par:?}");
        }
    }

    #[test]
    fn parallel_brute_force_tie_break_matches_sequential() {
        // Constant surface: every point ties; the winner must be the first
        // grid point for any chunking.
        let cluster = ClusterConditions::two_dim(1.0..=13.0, 1.0..=5.0, 1.0, 1.0);
        let seq = brute_force(&cluster, |_| 2.5);
        for n in 1..=8 {
            let out = brute_force_parallel(&cluster, |_| 2.5, Parallelism::Threads(n));
            assert_eq!(out.config, seq.config, "workers={n}");
        }
    }

    #[test]
    fn more_workers_than_grid_points() {
        let cluster = ClusterConditions::two_dim(1.0..=2.0, 1.0..=1.0, 1.0, 1.0);
        let out = brute_force_parallel(&cluster, bowl, Parallelism::Threads(16));
        assert_eq!(out, brute_force(&cluster, bowl));
    }

    #[test]
    fn parallel_batched_brute_force_matches_sequential_bitwise() {
        let cluster = ClusterConditions::paper_default();
        let seq = brute_force(&cluster, bowl);
        let eval = |_: u64, configs: &[ResourceConfig], costs: &mut [f64]| {
            for (r, c) in configs.iter().zip(costs.iter_mut()) {
                *c = bowl(r);
            }
        };
        for par in [Parallelism::Off, Parallelism::Threads(3), Parallelism::Threads(7), Parallelism::Auto] {
            let out = brute_force_parallel_batch(&cluster, eval, par);
            assert_eq!(out.config, seq.config, "{par:?}");
            assert_eq!(out.cost.to_bits(), seq.cost.to_bits(), "{par:?}");
            assert_eq!(out.iterations, seq.iterations, "{par:?}");
        }
    }

    #[test]
    fn parallel_batched_brute_force_tie_break_matches_sequential() {
        let cluster = ClusterConditions::two_dim(1.0..=13.0, 1.0..=5.0, 1.0, 1.0);
        let seq = brute_force(&cluster, |_| 2.5);
        for n in 1..=8 {
            let out = brute_force_parallel_batch(
                &cluster,
                |_, _, costs: &mut [f64]| costs.fill(2.5),
                Parallelism::Threads(n),
            );
            assert_eq!(out.config, seq.config, "workers={n}");
        }
    }

    #[test]
    fn halton_seeds_cover_extremes_and_interior() {
        let cluster = ClusterConditions::paper_default();
        let seeds = multi_start_seeds(&cluster);
        assert_eq!(seeds.len(), 5); // min + max corners + 3 Halton points
        assert_eq!(seeds[0], cluster.min);
        assert!(seeds.contains(&ResourceConfig::containers_and_size(100.0, 10.0)));
        assert!(seeds.iter().all(|s| cluster.contains(s)));
        // The Halton points land in the interior, not on the boundary.
        assert_eq!(seeds[2], ResourceConfig::containers_and_size(51.0, 4.0));
        assert_eq!(seeds[3], ResourceConfig::containers_and_size(26.0, 7.0));
        assert_eq!(seeds[4], ResourceConfig::containers_and_size(75.0, 2.0));
        // Degenerate 1-point cluster: every seed coincides.
        let tiny = ClusterConditions::two_dim(3.0..=3.0, 2.0..=2.0, 1.0, 1.0);
        assert_eq!(multi_start_seeds(&tiny), vec![ResourceConfig::containers_and_size(3.0, 2.0)]);
    }

    #[test]
    fn corner_seeds_cover_corners_and_centroid() {
        let cluster = ClusterConditions::paper_default();
        let seeds = seeds_with(&cluster, SeedStrategy::CornersCentroid);
        assert_eq!(seeds.len(), 5); // 4 corners + centroid
        assert_eq!(seeds[0], cluster.min);
        assert!(seeds.contains(&ResourceConfig::containers_and_size(100.0, 10.0)));
        assert!(seeds.iter().all(|s| cluster.contains(s)));
        let tiny = ClusterConditions::two_dim(3.0..=3.0, 2.0..=2.0, 1.0, 1.0);
        assert_eq!(
            seeds_with(&tiny, SeedStrategy::CornersCentroid),
            vec![ResourceConfig::containers_and_size(3.0, 2.0)]
        );
    }

    #[test]
    fn halton_seeds_find_interior_basin_corner_seeds_miss() {
        // A broad bowl with its minimum at the min corner, plus a deep,
        // narrow dent centred on one of the Halton seeds (26, 7). Climbs
        // from the corners and the centroid all slide down the bowl without
        // entering the dent's radius; the Halton spread starts at its centre
        // and finds the negative-cost basin.
        let dented = |r: &ResourceConfig| -> f64 {
            let d1 = (r.containers() - 1.0).powi(2) + (r.container_size_gb() - 1.0).powi(2);
            let dc = ((r.containers() - 26.0).powi(2)
                + (r.container_size_gb() - 7.0).powi(2))
            .sqrt();
            d1 - (500.0 * (3.0 - dc)).max(0.0)
        };
        let cluster = ClusterConditions::paper_default();
        let halton =
            hill_climb_multi_with(&cluster, dented, Parallelism::Off, SeedStrategy::Halton);
        let corners = hill_climb_multi_with(
            &cluster,
            dented,
            Parallelism::Off,
            SeedStrategy::CornersCentroid,
        );
        assert!(
            halton.cost < corners.cost,
            "halton={} corners={}",
            halton.cost,
            corners.cost
        );
    }

    #[test]
    fn multi_start_escapes_local_optimum_single_start_falls_into() {
        // Deep basin near the max corner, shallow one near the min corner:
        // Algorithm 1 (start = min) settles in the shallow basin, while a
        // corner-seeded climb finds the deep one.
        let two_basins = |r: &ResourceConfig| -> f64 {
            let near = (r.containers() - 5.0).powi(2) + (r.container_size_gb() - 2.0).powi(2);
            let far =
                (r.containers() - 90.0).powi(2) + (r.container_size_gb() - 9.0).powi(2) - 50.0;
            near.min(far)
        };
        let cluster = ClusterConditions::paper_default();
        let single = hill_climb(&cluster, cluster.min, two_basins);
        let multi = hill_climb_multi(&cluster, two_basins, Parallelism::Auto);
        assert!(multi.cost < single.cost);
        assert_eq!(multi.config, ResourceConfig::containers_and_size(90.0, 9.0));
    }

    #[test]
    fn grid_worker_panic_recovers_bit_identical() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cluster = ClusterConditions::paper_default();
        let seq = brute_force(&cluster, bowl);
        let tel = Telemetry::enabled();
        // Panic exactly once, at the surface's minimum, from whichever
        // worker reaches it first; the sequential re-scan then succeeds.
        let fired = AtomicBool::new(false);
        let spiky = |r: &ResourceConfig| -> f64 {
            if r.containers() == 40.0
                && r.container_size_gb() == 7.0
                && !fired.swap(true, Ordering::SeqCst)
            {
                panic!("injected cost-model panic");
            }
            bowl(r)
        };
        let out = brute_force_parallel_traced(&cluster, spiky, Parallelism::Threads(4), &tel);
        assert_eq!(out.config, seq.config);
        assert_eq!(out.cost.to_bits(), seq.cost.to_bits());
        assert_eq!(out.iterations, seq.iterations);
        assert_eq!(tel.snapshot().unwrap().get(Counter::WorkerPanics), 1);
    }

    #[test]
    fn batch_worker_panic_recovers_bit_identical() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cluster = ClusterConditions::paper_default();
        let seq = brute_force(&cluster, bowl);
        let tel = Telemetry::enabled();
        let fired = AtomicBool::new(false);
        let eval = |at: u64, configs: &[ResourceConfig], costs: &mut [f64]| {
            if at == 0 && !fired.swap(true, Ordering::SeqCst) {
                panic!("injected batch-kernel panic");
            }
            for (r, c) in configs.iter().zip(costs.iter_mut()) {
                *c = bowl(r);
            }
        };
        let out = brute_force_parallel_batch_traced(&cluster, eval, Parallelism::Threads(4), &tel);
        assert_eq!(out.config, seq.config);
        assert_eq!(out.cost.to_bits(), seq.cost.to_bits());
        assert_eq!(tel.snapshot().unwrap().get(Counter::WorkerPanics), 1);
    }

    #[test]
    fn climb_worker_panic_recovers_bit_identical() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cluster = ClusterConditions::paper_default();
        let seq = hill_climb_multi(&cluster, bowl, Parallelism::Off);
        let tel = Telemetry::enabled();
        let fired = AtomicBool::new(false);
        let spiky = |r: &ResourceConfig| -> f64 {
            if !fired.swap(true, Ordering::SeqCst) {
                panic!("injected climb panic");
            }
            bowl(r)
        };
        let out = hill_climb_multi_with_traced(
            &cluster,
            spiky,
            Parallelism::Threads(4),
            SeedStrategy::default(),
            &tel,
        );
        assert_eq!(out.config, seq.config);
        assert_eq!(out.cost.to_bits(), seq.cost.to_bits());
        assert_eq!(out.iterations, seq.iterations);
        assert_eq!(tel.snapshot().unwrap().get(Counter::WorkerPanics), 1);
    }

    #[test]
    fn deterministic_worker_panic_propagates() {
        // A panic that reproduces on the sequential re-run is a real bug;
        // recovery must not swallow it.
        let cluster = ClusterConditions::paper_default();
        let always = |r: &ResourceConfig| -> f64 {
            if r.containers() == 40.0 && r.container_size_gb() == 7.0 {
                panic!("deterministic cost-model bug");
            }
            bowl(r)
        };
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            brute_force_parallel_traced(
                &cluster,
                always,
                Parallelism::Threads(4),
                &Telemetry::disabled(),
            )
        }));
        assert!(r.is_err(), "deterministic panic must propagate");
    }

    #[test]
    fn multi_start_is_scheduling_invariant() {
        let cluster = ClusterConditions::paper_default();
        let seq = hill_climb_multi(&cluster, bowl, Parallelism::Off);
        let par = hill_climb_multi(&cluster, bowl, Parallelism::Threads(4));
        assert_eq!(seq, par);
        // All seeds converge on the single bowl minimum.
        assert_eq!(seq.config, ResourceConfig::containers_and_size(40.0, 7.0));
        // Iterations are summed over all climbs, so the multi-start run
        // spends more than a single Algorithm 1 climb.
        assert!(seq.iterations > hill_climb(&cluster, cluster.min, bowl).iterations);
    }

    /// Point-wise batch evaluator over a scalar surface, for parity tests.
    fn batch_of(
        f: impl Fn(&ResourceConfig) -> f64,
    ) -> impl FnMut(&[ResourceConfig], &mut [f64]) {
        move |configs, costs| {
            for (r, c) in configs.iter().zip(costs.iter_mut()) {
                *c = f(r);
            }
        }
    }

    #[test]
    fn batched_climb_matches_multi_start_bitwise() {
        // Convex, multimodal, and dented surfaces; both seed strategies;
        // every parallelism mode of the per-seed climber. The batched
        // climber must agree bit-for-bit on config, cost, and iterations.
        let two_basins = |r: &ResourceConfig| -> f64 {
            let near = (r.containers() - 5.0).powi(2) + (r.container_size_gb() - 2.0).powi(2);
            let far =
                (r.containers() - 90.0).powi(2) + (r.container_size_gb() - 9.0).powi(2) - 50.0;
            near.min(far)
        };
        let dented = |r: &ResourceConfig| -> f64 {
            let d1 = (r.containers() - 1.0).powi(2) + (r.container_size_gb() - 1.0).powi(2);
            let dc = ((r.containers() - 26.0).powi(2) + (r.container_size_gb() - 7.0).powi(2))
                .sqrt();
            d1 - (500.0 * (3.0 - dc)).max(0.0)
        };
        let surfaces: [&(dyn Fn(&ResourceConfig) -> f64 + Sync); 3] =
            [&bowl, &two_basins, &dented];
        let cluster = ClusterConditions::paper_default();
        for (si, surface) in surfaces.iter().enumerate() {
            for strategy in [SeedStrategy::Halton, SeedStrategy::CornersCentroid] {
                let batched = hill_climb_multi_batched(&cluster, batch_of(surface), strategy);
                for par in [Parallelism::Off, Parallelism::Threads(4), Parallelism::Auto] {
                    let scalar = hill_climb_multi_with(&cluster, surface, par, strategy);
                    assert_eq!(batched.config, scalar.config, "s{si} {strategy:?} {par:?}");
                    assert_eq!(
                        batched.cost.to_bits(),
                        scalar.cost.to_bits(),
                        "s{si} {strategy:?} {par:?}"
                    );
                    assert_eq!(
                        batched.iterations, scalar.iterations,
                        "s{si} {strategy:?} {par:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_climb_tie_break_matches_multi_start() {
        // Constant surface: every seed's optimum ties at the start; the
        // merged winner must be the earliest seed (the min corner), exactly
        // like the per-seed climber.
        let cluster = ClusterConditions::paper_default();
        let scalar = hill_climb_multi(&cluster, |_| 3.0, Parallelism::Off);
        let batched = hill_climb_multi_batched(
            &cluster,
            |_: &[ResourceConfig], costs: &mut [f64]| costs.fill(3.0),
            SeedStrategy::default(),
        );
        assert_eq!(batched, scalar);
        assert_eq!(batched.config, cluster.min);
    }

    #[test]
    fn batched_climb_handles_infeasible_points() {
        // A feasibility mask (INFINITY outside a band) must not derail the
        // lock-step replay: parity with the per-seed climber, which sees the
        // same INFINITY costs from its scalar calls.
        let masked = |r: &ResourceConfig| -> f64 {
            if r.container_size_gb() < 4.0 { f64::INFINITY } else { bowl(r) }
        };
        let cluster = ClusterConditions::paper_default();
        let scalar = hill_climb_multi(&cluster, masked, Parallelism::Off);
        let batched =
            hill_climb_multi_batched(&cluster, batch_of(masked), SeedStrategy::default());
        assert_eq!(batched, scalar);
    }

    #[test]
    fn batched_climb_counts_lockstep_rounds() {
        let cluster = ClusterConditions::paper_default();
        // Flat surface: every seed probes its round-1 neighborhood, nothing
        // improves, all seeds retire — exactly one lock-step round.
        let tel = Telemetry::enabled();
        hill_climb_multi_batched_traced(
            &cluster,
            |_: &[ResourceConfig], costs: &mut [f64]| costs.fill(1.0),
            SeedStrategy::default(),
            &tel,
        );
        assert_eq!(tel.snapshot().unwrap().get(Counter::HillClimbBatchedRounds), 1);

        // The bowl needs many rounds: at least as many as the longest
        // single-seed climb's accepted-step count.
        let tel = Telemetry::enabled();
        hill_climb_multi_batched_traced(
            &cluster,
            batch_of(bowl),
            SeedStrategy::default(),
            &tel,
        );
        let rounds = tel.snapshot().unwrap().get(Counter::HillClimbBatchedRounds);
        assert!(rounds > 10, "bowl should take many lock-step rounds, got {rounds}");
    }

    #[test]
    fn batched_climb_single_point_cluster() {
        let tiny = ClusterConditions::two_dim(3.0..=3.0, 2.0..=2.0, 1.0, 1.0);
        let out = hill_climb_multi_batched(&tiny, batch_of(bowl), SeedStrategy::default());
        assert_eq!(out.config, ResourceConfig::containers_and_size(3.0, 2.0));
        assert_eq!(out.iterations, 1);
    }

    proptest::proptest! {
        /// Batched == per-seed multi-start parity on randomized quadratic
        /// surfaces (optionally dented and masked), random grids, both seed
        /// strategies, every parallelism mode.
        #[test]
        fn batched_climb_parity_randomized(
            max_c in 2.0f64..40.0,
            max_s in 1.0f64..10.0,
            opt_c in 0.0f64..1.0,
            opt_s in 0.0f64..1.0,
            dent_c in 0.0f64..1.0,
            dent_s in 0.0f64..1.0,
            dent_depth in 0.0f64..500.0,
            strategy_bit in 0usize..2,
        ) {
            let cluster = ClusterConditions::two_dim(1.0..=max_c.floor(), 1.0..=max_s.floor(), 1.0, 1.0);
            let (oc, os) = (1.0 + opt_c * (max_c - 1.0), 1.0 + opt_s * (max_s - 1.0));
            let (dc, ds) = (1.0 + dent_c * (max_c - 1.0), 1.0 + dent_s * (max_s - 1.0));
            let surface = move |r: &ResourceConfig| -> f64 {
                let d1 = (r.containers() - oc).powi(2) + (r.container_size_gb() - os).powi(2);
                let dd = ((r.containers() - dc).powi(2)
                    + (r.container_size_gb() - ds).powi(2))
                .sqrt();
                d1 - (dent_depth * (2.0 - dd)).max(0.0)
            };
            let strategy = if strategy_bit == 0 {
                SeedStrategy::Halton
            } else {
                SeedStrategy::CornersCentroid
            };
            let batched = hill_climb_multi_batched(&cluster, batch_of(surface), strategy);
            for par in [Parallelism::Off, Parallelism::Threads(3)] {
                let scalar = hill_climb_multi_with(&cluster, surface, par, strategy);
                prop_assert_eq!(batched.config, scalar.config);
                prop_assert_eq!(batched.cost.to_bits(), scalar.cost.to_bits());
                prop_assert_eq!(batched.iterations, scalar.iterations);
            }
        }
    }
}
