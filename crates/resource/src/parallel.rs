//! Parallel resource planning: chunked brute force and multi-start hill
//! climbing over OS threads.
//!
//! The paper's resource planners are embarrassingly parallel — every grid
//! point (brute force) and every start point (hill climbing) is an
//! independent cost-model evaluation. This module exploits that with
//! `std::thread::scope` workers while keeping results *deterministic*:
//!
//! * [`brute_force_parallel`] splits the grid into contiguous index ranges
//!   and merges per-chunk winners by `(cost, global grid index)`, which is
//!   exactly the sequential scan's "earlier grid point wins ties" rule —
//!   the outcome is bit-identical to [`brute_force`] for any worker count.
//! * [`hill_climb_multi`] climbs from the cluster's corner configurations
//!   plus its centroid. Each climb is independent, so scheduling cannot
//!   change the merged result: the best local optimum wins, ties broken
//!   toward the earlier seed, and `iterations` sums all climbs (the true
//!   total of cost evaluations spent).
//!
//! [`Parallelism::Off`] routes both entry points through the sequential
//! code paths so the paper's Figs. 12–14 iteration accounting stays
//! reproducible run-to-run regardless of the host's core count.

use crate::cluster::ClusterConditions;
use crate::config::ResourceConfig;
use crate::planner::{brute_force, hill_climb, PlanningOutcome};

/// How much thread parallelism resource planning may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Strictly sequential: identical evaluation order and iteration
    /// accounting to the scalar planners (the reproducibility mode).
    Off,
    /// Exactly `n` worker threads (clamped to at least 1).
    Threads(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// Resolved worker count (≥ 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
        }
    }
}

/// Exhaustive grid search split across worker threads.
///
/// Bit-identical to [`brute_force`]: each worker scans a contiguous
/// row-major index range of the grid, tracking the lowest-cost point in its
/// range (first such point on ties); the merge then prefers lower cost and,
/// on equal cost, the lower global index — the same total order a single
/// sequential scan applies. `iterations` is the full grid size, as for the
/// sequential planner.
pub fn brute_force_parallel<F>(
    cluster: &ClusterConditions,
    cost_fn: F,
    parallelism: Parallelism,
) -> PlanningOutcome
where
    F: Fn(&ResourceConfig) -> f64 + Sync,
{
    let total = cluster.grid_size();
    let workers = parallelism.workers().min(total.max(1) as usize).max(1);
    if matches!(parallelism, Parallelism::Off) || workers == 1 {
        return brute_force(cluster, |r| cost_fn(r));
    }

    let chunk = total.div_ceil(workers as u64);
    let cost_fn = &cost_fn;
    let mut per_chunk: Vec<Option<(u64, ResourceConfig, f64)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    scope.spawn(move || {
                        let mut best: Option<(u64, ResourceConfig, f64)> = None;
                        for (off, r) in
                            cluster.grid_from(lo).take((hi.saturating_sub(lo)) as usize).enumerate()
                        {
                            let c = cost_fn(&r);
                            match best {
                                Some((_, _, bc)) if bc <= c => {}
                                _ => best = Some((lo + off as u64, r, c)),
                            }
                        }
                        best
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("grid worker panicked")).collect()
        });

    let (_, config, cost) = per_chunk
        .drain(..)
        .flatten()
        .min_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)))
        .expect("cluster grid is never empty");
    PlanningOutcome { config, cost, iterations: total }
}

/// Deterministic multi-start seeds: every corner of the bounding box
/// (2^dims points, deduplicated when min == max on a dimension) followed by
/// the grid-snapped centroid. The minimum corner comes first so a single
/// seed degenerates to the paper's Algorithm 1 start.
pub fn multi_start_seeds(cluster: &ClusterConditions) -> Vec<ResourceConfig> {
    let dims = cluster.dims();
    let mut seeds: Vec<ResourceConfig> = Vec::with_capacity((1 << dims) + 1);
    for corner in 0u32..(1 << dims) {
        let mut r = cluster.min;
        for i in 0..dims {
            if corner & (1 << i) != 0 {
                // Top of the *grid*, not the raw max bound: step from min so
                // the seed is always a reachable grid point.
                let n = cluster.points_along(i);
                let mut v = cluster.min.get(i);
                for _ in 1..n {
                    v += cluster.discrete_steps().get(i);
                }
                r.set(i, v);
            }
        }
        if !seeds.contains(&r) {
            seeds.push(r);
        }
    }
    let mut centroid = cluster.min;
    for i in 0..dims {
        let mid = cluster.points_along(i) / 2;
        let mut v = cluster.min.get(i);
        for _ in 0..mid {
            v += cluster.discrete_steps().get(i);
        }
        centroid.set(i, v);
    }
    if !seeds.contains(&centroid) {
        seeds.push(centroid);
    }
    seeds
}

/// Multi-start hill climbing: run Algorithm 1 from every
/// [`multi_start_seeds`] point and keep the best local optimum.
///
/// The merged outcome is independent of the worker count: climbs do not
/// interact, the winner is the lowest-cost optimum with ties broken toward
/// the earlier seed, and `iterations` is the sum over all climbs — the
/// actual number of cost evaluations spent, so speed/quality trade-offs
/// stay visible in the Figs. 13–14 accounting.
pub fn hill_climb_multi<F>(
    cluster: &ClusterConditions,
    cost_fn: F,
    parallelism: Parallelism,
) -> PlanningOutcome
where
    F: Fn(&ResourceConfig) -> f64 + Sync,
{
    let seeds = multi_start_seeds(cluster);
    let outcomes: Vec<PlanningOutcome> = if matches!(parallelism, Parallelism::Off)
        || parallelism.workers() == 1
        || seeds.len() == 1
    {
        seeds.iter().map(|&s| hill_climb(cluster, s, |r| cost_fn(r))).collect()
    } else {
        let cost_fn = &cost_fn;
        let seeds = &seeds;
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&s| scope.spawn(move || hill_climb(cluster, s, |r| cost_fn(r))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("climb worker panicked")).collect()
        })
    };

    let iterations = outcomes.iter().map(|o| o.iterations).sum();
    let best = outcomes
        .into_iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| a.cost.total_cmp(&b.cost).then(ai.cmp(bi)))
        .map(|(_, o)| o)
        .expect("at least one seed");
    PlanningOutcome { iterations, ..best }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bowl(r: &ResourceConfig) -> f64 {
        let dc = r.containers() - 40.0;
        let ds = r.container_size_gb() - 7.0;
        dc * dc + 3.0 * ds * ds
    }

    #[test]
    fn parallelism_workers_resolve() {
        assert_eq!(Parallelism::Off.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn parallel_brute_force_matches_sequential_bitwise() {
        let cluster = ClusterConditions::paper_default();
        let seq = brute_force(&cluster, bowl);
        for par in [Parallelism::Off, Parallelism::Threads(3), Parallelism::Threads(7), Parallelism::Auto] {
            let out = brute_force_parallel(&cluster, bowl, par);
            assert_eq!(out.config, seq.config, "{par:?}");
            assert!(out.cost.to_bits() == seq.cost.to_bits(), "{par:?}");
            assert_eq!(out.iterations, seq.iterations, "{par:?}");
        }
    }

    #[test]
    fn parallel_brute_force_tie_break_matches_sequential() {
        // Constant surface: every point ties; the winner must be the first
        // grid point for any chunking.
        let cluster = ClusterConditions::two_dim(1.0..=13.0, 1.0..=5.0, 1.0, 1.0);
        let seq = brute_force(&cluster, |_| 2.5);
        for n in 1..=8 {
            let out = brute_force_parallel(&cluster, |_| 2.5, Parallelism::Threads(n));
            assert_eq!(out.config, seq.config, "workers={n}");
        }
    }

    #[test]
    fn more_workers_than_grid_points() {
        let cluster = ClusterConditions::two_dim(1.0..=2.0, 1.0..=1.0, 1.0, 1.0);
        let out = brute_force_parallel(&cluster, bowl, Parallelism::Threads(16));
        assert_eq!(out, brute_force(&cluster, bowl));
    }

    #[test]
    fn seeds_cover_corners_and_centroid() {
        let cluster = ClusterConditions::paper_default();
        let seeds = multi_start_seeds(&cluster);
        assert_eq!(seeds.len(), 5); // 4 corners + centroid
        assert_eq!(seeds[0], cluster.min);
        assert!(seeds.contains(&ResourceConfig::containers_and_size(100.0, 10.0)));
        assert!(seeds.iter().all(|s| cluster.contains(s)));
        // Degenerate 1-point cluster: corners and centroid all coincide.
        let tiny = ClusterConditions::two_dim(3.0..=3.0, 2.0..=2.0, 1.0, 1.0);
        assert_eq!(multi_start_seeds(&tiny), vec![ResourceConfig::containers_and_size(3.0, 2.0)]);
    }

    #[test]
    fn multi_start_escapes_local_optimum_single_start_falls_into() {
        // Deep basin near the max corner, shallow one near the min corner:
        // Algorithm 1 (start = min) settles in the shallow basin, while a
        // corner-seeded climb finds the deep one.
        let two_basins = |r: &ResourceConfig| -> f64 {
            let near = (r.containers() - 5.0).powi(2) + (r.container_size_gb() - 2.0).powi(2);
            let far =
                (r.containers() - 90.0).powi(2) + (r.container_size_gb() - 9.0).powi(2) - 50.0;
            near.min(far)
        };
        let cluster = ClusterConditions::paper_default();
        let single = hill_climb(&cluster, cluster.min, two_basins);
        let multi = hill_climb_multi(&cluster, two_basins, Parallelism::Auto);
        assert!(multi.cost < single.cost);
        assert_eq!(multi.config, ResourceConfig::containers_and_size(90.0, 9.0));
    }

    #[test]
    fn multi_start_is_scheduling_invariant() {
        let cluster = ClusterConditions::paper_default();
        let seq = hill_climb_multi(&cluster, bowl, Parallelism::Off);
        let par = hill_climb_multi(&cluster, bowl, Parallelism::Threads(4));
        assert_eq!(seq, par);
        // All seeds converge on the single bowl minimum.
        assert_eq!(seq.config, ResourceConfig::containers_and_size(40.0, 7.0));
        // Iterations are summed over all climbs, so the multi-start run
        // spends more than a single Algorithm 1 climb.
        assert!(seq.iterations > hill_climb(&cluster, cluster.min, bowl).iterations);
    }
}
