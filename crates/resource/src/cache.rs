//! The resource-plan cache (§VI-B3).
//!
//! > "Our key insight is that for the same cost model and sub-plan (e.g.,
//! > join operation), same (or similar) data characteristics, e.g., data
//! > size, will require same (or similar) resource configuration. [...] For
//! > each cost model (e.g., SMJ, BHJ) and sub-plan (e.g., join operator,
//! > scan operator), we maintain an in-memory index of data characteristic
//! > keys, each of which point to the best resource configuration for those
//! > data characteristics. Our current prototype keeps a sorted array of
//! > keys, with automatic resizing whenever the array gets full, and we
//! > perform a binary search for lookup."
//!
//! [`ResourcePlanCache`] is that sorted array (a `Vec` gives the
//! automatically resizing contiguous storage; lookups are binary searches).
//! [`CacheBank`] keys one cache per (cost model, operator) pair.
//! The three lookup modes of the paper — exact match, nearest neighbour,
//! weighted average — are [`CacheLookup`] variants. Both approximate modes
//! "first look for exact match before trying the interpolation" (§VII-B).

use crate::config::ResourceConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cache lookup policy (§VI-B3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CacheLookup {
    /// "returns a hit only when exact same data characteristics match."
    Exact,
    /// "returns the resource configuration corresponding to the nearest data
    /// characteristic match (within a threshold)." The threshold is in key
    /// units (GB of smaller-input size in the paper's Fig. 14 sweeps).
    NearestNeighbor { threshold: f64 },
    /// "returns the weighted average of neighboring resource configurations
    /// when their data characteristics are within a threshold." Weights are
    /// inverse distances; the result is snapped back onto the resource grid
    /// by the caller if needed.
    WeightedAverage { threshold: f64 },
}

/// Hit/miss counters, used by the Fig. 14 experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
}

impl CacheStats {
    /// Hit rate in \[0,1\]; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sorted-array cache from a scalar data-characteristic key (the paper
/// keys on data size) to the best known resource configuration.
///
/// ```
/// use raqo_resource::{CacheLookup, ResourceConfig, ResourcePlanCache};
///
/// let mut cache = ResourcePlanCache::new();
/// cache.insert(3.4, ResourceConfig::containers_and_size(10.0, 3.0));
/// // Exact hit:
/// assert!(cache.lookup(3.4, CacheLookup::Exact).is_some());
/// // Similar data characteristics reuse the plan (§VI-B3):
/// let near = cache.lookup(3.45, CacheLookup::NearestNeighbor { threshold: 0.1 });
/// assert_eq!(near, Some(ResourceConfig::containers_and_size(10.0, 3.0)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResourcePlanCache {
    /// Sorted by key. `Vec` doubles on demand — the "automatic resizing
    /// whenever the array gets full" of the prototype.
    entries: Vec<(f64, ResourceConfig)>,
    /// Last-hit generation per entry (parallel to `entries`): the value of
    /// [`clock`](Self::generation) when the entry last contributed to a
    /// hit or was (re)inserted. Compaction evicts the stalest entries
    /// first. Not persisted — a loaded bank starts cold.
    generations: Vec<u64>,
    /// Monotonic access clock, bumped once per insert or lookup.
    clock: u64,
    stats: CacheStats,
}

impl ResourcePlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all entries (the evaluation "always cleared the resource plan
    /// cache before each query run" unless testing across-query caching).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.generations.clear();
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    /// The sorted `(key, config)` entries — read access for persistence and
    /// diagnostics.
    pub fn entries(&self) -> &[(f64, ResourceConfig)] {
        &self.entries
    }

    /// Rebuild a cache from `(key, config)` pairs (persistence load path).
    /// Entries are sorted by key and deduplicated (last wins, matching
    /// repeated [`ResourcePlanCache::insert`] calls); statistics start
    /// fresh — hit/miss/insertion counters are not persisted.
    pub fn from_entries(mut entries: Vec<(f64, ResourceConfig)>) -> Self {
        entries.retain(|(k, _)| k.is_finite());
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        entries.reverse();
        entries.dedup_by(|a, b| a.0 == b.0);
        entries.reverse();
        let generations = vec![0; entries.len()];
        ResourcePlanCache { entries, generations, clock: 0, stats: CacheStats::default() }
    }

    /// The current value of the access clock (bumped once per insert or
    /// lookup). An entry whose last-hit generation is far below this is
    /// cold and is evicted first by [`CacheBank::compact`].
    pub fn generation(&self) -> u64 {
        self.clock
    }

    /// `(key, last-hit generation)` per entry, in key order.
    pub fn entry_generations(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.entries.iter().map(|(k, _)| *k).zip(self.generations.iter().copied())
    }

    /// Remove the entry at exactly `key`. Returns whether one existed.
    /// Statistics are untouched: eviction is bookkeeping, not a miss.
    pub fn remove(&mut self, key: f64) -> bool {
        let i = self.partition(key);
        if i < self.entries.len() && self.entries[i].0 == key {
            self.entries.remove(i);
            self.generations.remove(i);
            true
        } else {
            false
        }
    }

    /// Binary search for the insertion point of `key`.
    fn partition(&self, key: f64) -> usize {
        self.entries.partition_point(|(k, _)| *k < key)
    }

    /// Insert (or overwrite) the configuration for `key`, keeping the array
    /// sorted. "In case of a miss, we run the hill climbing ... and insert
    /// the newly found resource configuration into the cache."
    pub fn insert(&mut self, key: f64, config: ResourceConfig) {
        assert!(key.is_finite(), "cache keys must be finite");
        self.clock += 1;
        let i = self.partition(key);
        if i < self.entries.len() && self.entries[i].0 == key {
            self.entries[i].1 = config;
            self.generations[i] = self.clock;
        } else {
            self.entries.insert(i, (key, config));
            self.generations.insert(i, self.clock);
        }
        self.stats.insertions += 1;
    }

    /// Look up a configuration for `key` under the given policy. Counts a
    /// hit or a miss in [`CacheStats`]; a hit refreshes the last-hit
    /// generation of every entry that contributed to the answer.
    pub fn lookup(&mut self, key: f64, mode: CacheLookup) -> Option<ResourceConfig> {
        self.clock += 1;
        match self.lookup_indexed(key, mode) {
            Some((cfg, touched)) => {
                let clock = self.clock;
                for g in &mut self.generations[touched] {
                    *g = clock;
                }
                self.stats.hits += 1;
                Some(cfg)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The lookup result plus the index range of the entries it was built
    /// from (one entry for exact/nearest hits, the neighbor window for
    /// weighted averages).
    fn lookup_indexed(
        &self,
        key: f64,
        mode: CacheLookup,
    ) -> Option<(ResourceConfig, std::ops::Range<usize>)> {
        if self.entries.is_empty() {
            return None;
        }
        let i = self.partition(key);
        // Exact match first, for every mode (§VII-B: "Both variants first
        // look for exact match before trying the interpolation").
        if i < self.entries.len() && self.entries[i].0 == key {
            return Some((self.entries[i].1, i..i + 1));
        }
        match mode {
            CacheLookup::Exact => None,
            CacheLookup::NearestNeighbor { threshold } => {
                let (dist, j) = self.nearest(key, i)?;
                (dist <= threshold).then(|| (self.entries[j].1, j..j + 1))
            }
            CacheLookup::WeightedAverage { threshold } => {
                let window = self.neighbors_within(key, threshold);
                if window.is_empty() {
                    return None;
                }
                Some((weighted_average(key, &self.entries[window.clone()]), window))
            }
        }
    }

    /// Nearest entry to `key`, given the partition point `i`. Returns the
    /// distance and entry index.
    fn nearest(&self, key: f64, i: usize) -> Option<(f64, usize)> {
        let lo = i.checked_sub(1).map(|j| ((key - self.entries[j].0).abs(), j));
        let hi = (i < self.entries.len()).then(|| ((key - self.entries[i].0).abs(), i));
        match (lo, hi) {
            (None, None) => None,
            (Some(x), None) | (None, Some(x)) => Some(x),
            (Some((dl, jl)), Some((dh, jh))) => {
                Some(if dl <= dh { (dl, jl) } else { (dh, jh) })
            }
        }
    }

    /// Index range of entries with |entry.key − key| ≤ threshold.
    fn neighbors_within(&self, key: f64, threshold: f64) -> std::ops::Range<usize> {
        let lo = self.entries.partition_point(|(k, _)| *k < key - threshold);
        let hi = self.entries.partition_point(|(k, _)| *k <= key + threshold);
        lo..hi
    }
}

/// Inverse-distance weighted average of the neighbours' configurations.
fn weighted_average(key: f64, neighbors: &[(f64, ResourceConfig)]) -> ResourceConfig {
    debug_assert!(!neighbors.is_empty());
    let dims = neighbors[0].1.dims();
    let mut acc = vec![0.0; dims];
    let mut wsum = 0.0;
    for (k, cfg) in neighbors {
        // Guard distance away from zero; exact matches were already
        // returned before interpolation.
        let w = 1.0 / ((key - k).abs()).max(1e-12);
        wsum += w;
        for (d, a) in acc.iter_mut().enumerate() {
            *a += w * cfg.get(d);
        }
    }
    for a in acc.iter_mut() {
        *a /= wsum;
    }
    ResourceConfig::from_slice(&acc)
}

/// One [`ResourcePlanCache`] per (cost model, operator kind) pair, as §VI-B3
/// prescribes. Model/operator identifiers are small integers assigned by the
/// optimizer layer.
#[derive(Debug, Clone, Default)]
pub struct CacheBank {
    caches: BTreeMap<(u32, u32), ResourcePlanCache>,
}

impl CacheBank {
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache for a (model, operator) pair, created on first use.
    pub fn cache(&mut self, model: u32, operator: u32) -> &mut ResourcePlanCache {
        self.caches.entry((model, operator)).or_default()
    }

    /// Total entries across all member caches.
    pub fn total_entries(&self) -> usize {
        self.caches.values().map(|c| c.len()).sum()
    }

    /// Iterate the member caches with their (model, operator) keys, in key
    /// order (persistence and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &ResourcePlanCache)> {
        self.caches.iter()
    }

    /// Install a fully-built cache for a (model, operator) pair, replacing
    /// any existing one (persistence load path).
    pub fn insert_cache(&mut self, model: u32, operator: u32, cache: ResourcePlanCache) {
        self.caches.insert((model, operator), cache);
    }

    /// Aggregate statistics across all member caches.
    pub fn aggregate_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in self.caches.values() {
            s.hits += c.stats().hits;
            s.misses += c.stats().misses;
            s.insertions += c.stats().insertions;
        }
        s
    }

    /// Clear every member cache (between queries, unless across-query
    /// caching is being evaluated as in Fig. 15(b)).
    pub fn clear(&mut self) {
        self.caches.clear();
    }

    /// Remove the entry at exactly `key` from the (model, operator) cache,
    /// dropping the member cache when it becomes empty. Returns whether an
    /// entry existed.
    pub fn remove_entry(&mut self, model: u32, operator: u32, key: f64) -> bool {
        let Some(cache) = self.caches.get_mut(&(model, operator)) else { return false };
        let removed = cache.remove(key);
        if cache.is_empty() {
            self.caches.remove(&(model, operator));
        }
        removed
    }

    /// Evict the coldest entries until the bank holds at most `high_water`
    /// entries. Coldness is staleness under each cache's access clock
    /// (`clock − last-hit generation`); ties break deterministically on
    /// (model, operator, key bits), so any two banks with the same access
    /// history compact to the same retained set. Retained entries answer
    /// every lookup bit-identically to the pre-compaction bank. Returns the
    /// number of entries evicted.
    pub fn compact(&mut self, high_water: usize) -> usize {
        let total = self.total_entries();
        if total <= high_water {
            return 0;
        }
        // (staleness, model, operator, key bits) — stalest first, then the
        // deterministic key-space order.
        let mut victims: Vec<(u64, u32, u32, u64)> = Vec::with_capacity(total);
        for (&(model, operator), cache) in self.caches.iter() {
            let clock = cache.generation();
            for (key, generation) in cache.entry_generations() {
                victims.push((clock - generation, model, operator, key.to_bits()));
            }
        }
        victims.sort_by(|a, b| {
            b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)).then(a.3.cmp(&b.3))
        });
        let mut evicted = 0;
        for &(_, model, operator, bits) in victims.iter().take(total - high_water) {
            if self.remove_entry(model, operator, f64::from_bits(bits)) {
                evicted += 1;
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(c: f64, s: f64) -> ResourceConfig {
        ResourceConfig::containers_and_size(c, s)
    }

    #[test]
    fn exact_roundtrip() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(3.4, cfg(10.0, 3.0));
        assert_eq!(cache.lookup(3.4, CacheLookup::Exact), Some(cfg(10.0, 3.0)));
        assert_eq!(cache.lookup(3.5, CacheLookup::Exact), None);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn insert_overwrites_same_key() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(1.0, 1.0));
        cache.insert(1.0, cfg(9.0, 9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(1.0, CacheLookup::Exact), Some(cfg(9.0, 9.0)));
    }

    #[test]
    fn entries_stay_sorted() {
        let mut cache = ResourcePlanCache::new();
        for k in [5.0, 1.0, 3.0, 2.0, 4.0] {
            cache.insert(k, cfg(k, k));
        }
        // Nearest-neighbour lookups only work if the array is sorted.
        for k in [1.0, 2.0, 3.0, 4.0, 5.0] {
            assert_eq!(cache.lookup(k, CacheLookup::Exact), Some(cfg(k, k)));
        }
    }

    #[test]
    fn nearest_neighbor_within_threshold() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        cache.insert(2.0, cfg(20.0, 4.0));
        // 1.4 is nearer to 1.0.
        assert_eq!(
            cache.lookup(1.4, CacheLookup::NearestNeighbor { threshold: 0.5 }),
            Some(cfg(10.0, 2.0))
        );
        // 1.6 is nearer to 2.0.
        assert_eq!(
            cache.lookup(1.6, CacheLookup::NearestNeighbor { threshold: 0.5 }),
            Some(cfg(20.0, 4.0))
        );
        // Outside the threshold: miss.
        assert_eq!(
            cache.lookup(5.0, CacheLookup::NearestNeighbor { threshold: 0.5 }),
            None
        );
    }

    #[test]
    fn nearest_neighbor_at_boundaries() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(10.0, cfg(5.0, 5.0));
        // Query below the only key and above it.
        assert_eq!(
            cache.lookup(9.9, CacheLookup::NearestNeighbor { threshold: 0.2 }),
            Some(cfg(5.0, 5.0))
        );
        assert_eq!(
            cache.lookup(10.1, CacheLookup::NearestNeighbor { threshold: 0.2 }),
            Some(cfg(5.0, 5.0))
        );
    }

    #[test]
    fn weighted_average_interpolates() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        cache.insert(3.0, cfg(30.0, 6.0));
        // Midpoint: equal weights → arithmetic mean.
        let got = cache
            .lookup(2.0, CacheLookup::WeightedAverage { threshold: 1.5 })
            .unwrap();
        assert!((got.containers() - 20.0).abs() < 1e-9);
        assert!((got.container_size_gb() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_average_weights_by_inverse_distance() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(0.0, cfg(0.0, 0.0));
        cache.insert(4.0, cfg(4.0, 4.0));
        // Query at 1.0: weights 1/1 and 1/3 → value (0*1 + 4*(1/3))/(4/3) = 1.
        let got = cache
            .lookup(1.0, CacheLookup::WeightedAverage { threshold: 10.0 })
            .unwrap();
        assert!((got.containers() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_average_misses_outside_threshold() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        assert_eq!(
            cache.lookup(2.0, CacheLookup::WeightedAverage { threshold: 0.5 }),
            None
        );
    }

    #[test]
    fn approximate_modes_prefer_exact_match() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        cache.insert(1.1, cfg(99.0, 9.0));
        // Exact key present: both modes must return it untouched.
        assert_eq!(
            cache.lookup(1.0, CacheLookup::NearestNeighbor { threshold: 1.0 }),
            Some(cfg(10.0, 2.0))
        );
        assert_eq!(
            cache.lookup(1.0, CacheLookup::WeightedAverage { threshold: 1.0 }),
            Some(cfg(10.0, 2.0))
        );
    }

    #[test]
    fn empty_cache_misses_all_modes() {
        let mut cache = ResourcePlanCache::new();
        for mode in [
            CacheLookup::Exact,
            CacheLookup::NearestNeighbor { threshold: 1.0 },
            CacheLookup::WeightedAverage { threshold: 1.0 },
        ] {
            assert_eq!(cache.lookup(1.0, mode), None);
        }
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(1.0, 1.0));
        cache.lookup(1.0, CacheLookup::Exact);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn bank_separates_model_operator_pairs() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(1.0, cfg(1.0, 1.0));
        bank.cache(1, 0).insert(1.0, cfg(2.0, 2.0));
        assert_eq!(bank.cache(0, 0).lookup(1.0, CacheLookup::Exact), Some(cfg(1.0, 1.0)));
        assert_eq!(bank.cache(1, 0).lookup(1.0, CacheLookup::Exact), Some(cfg(2.0, 2.0)));
        assert_eq!(bank.total_entries(), 2);
        let stats = bank.aggregate_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 2);
        bank.clear();
        assert_eq!(bank.total_entries(), 0);
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats { hits: 3, misses: 1, insertions: 0 };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_key_rejected() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(f64::NAN, cfg(1.0, 1.0));
    }

    #[test]
    fn remove_keeps_entries_and_generations_aligned() {
        let mut cache = ResourcePlanCache::new();
        for k in [1.0, 2.0, 3.0] {
            cache.insert(k, cfg(k, k));
        }
        assert!(cache.remove(2.0));
        assert!(!cache.remove(2.0), "already gone");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.entry_generations().count(), 2);
        assert_eq!(cache.lookup(1.0, CacheLookup::Exact), Some(cfg(1.0, 1.0)));
        assert_eq!(cache.lookup(3.0, CacheLookup::Exact), Some(cfg(3.0, 3.0)));
    }

    #[test]
    fn lookups_refresh_last_hit_generations() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(1.0, 1.0));
        cache.insert(2.0, cfg(2.0, 2.0));
        cache.insert(3.0, cfg(3.0, 3.0));
        // Touch 1.0 repeatedly; 2.0 and 3.0 go stale.
        for _ in 0..5 {
            cache.lookup(1.0, CacheLookup::Exact);
        }
        let gens: std::collections::BTreeMap<u64, u64> = cache
            .entry_generations()
            .map(|(k, g)| (k.to_bits(), g))
            .collect();
        assert_eq!(gens[&1.0f64.to_bits()], cache.generation());
        assert!(gens[&2.0f64.to_bits()] < gens[&1.0f64.to_bits()]);
        // A nearest-neighbor hit refreshes the entry that answered it.
        cache.lookup(2.9, CacheLookup::NearestNeighbor { threshold: 0.5 });
        let g3: u64 = cache
            .entry_generations()
            .find(|(k, _)| *k == 3.0)
            .map(|(_, g)| g)
            .unwrap();
        assert_eq!(g3, cache.generation());
    }

    #[test]
    fn weighted_hit_refreshes_every_contributing_neighbor() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(1.0, 1.0));
        cache.insert(2.0, cfg(2.0, 2.0));
        cache.insert(9.0, cfg(9.0, 9.0));
        cache.lookup(1.5, CacheLookup::WeightedAverage { threshold: 1.0 });
        let clock = cache.generation();
        let gens: Vec<(f64, u64)> = cache.entry_generations().collect();
        assert_eq!(gens[0].1, clock, "1.0 contributed");
        assert_eq!(gens[1].1, clock, "2.0 contributed");
        assert!(gens[2].1 < clock, "9.0 was outside the window");
    }

    #[test]
    fn compact_evicts_coldest_first_and_answers_retained_keys_identically() {
        let mut bank = CacheBank::new();
        for k in 0..10u32 {
            bank.cache(0, 0).insert(k as f64, cfg(k as f64, 1.0));
        }
        // Keep keys 0..5 hot.
        for k in 0..5u32 {
            bank.cache(0, 0).lookup(k as f64, CacheLookup::Exact);
        }
        let before: Vec<Option<ResourceConfig>> = (0..5u32)
            .map(|k| bank.cache(0, 0).lookup_indexed(k as f64, CacheLookup::Exact).map(|(c, _)| c))
            .collect();
        let evicted = bank.compact(5);
        assert_eq!(evicted, 5);
        assert_eq!(bank.total_entries(), 5);
        for k in 0..5u32 {
            let got = bank.cache(0, 0).lookup(k as f64, CacheLookup::Exact);
            assert_eq!(got, before[k as usize], "retained key answers bit-identically");
        }
        for k in 5..10u32 {
            assert_eq!(bank.cache(0, 0).lookup(k as f64, CacheLookup::Exact), None);
        }
    }

    #[test]
    fn compact_below_high_water_is_a_no_op() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(1.0, cfg(1.0, 1.0));
        assert_eq!(bank.compact(10), 0);
        assert_eq!(bank.total_entries(), 1);
        assert_eq!(bank.compact(1), 0, "exactly at the mark is fine");
    }

    #[test]
    fn compact_drops_emptied_member_caches() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(1.0, cfg(1.0, 1.0));
        bank.cache(1, 0).insert(2.0, cfg(2.0, 2.0));
        // Touch the (1, 0) entry so (0, 0)'s entry is the stalest.
        bank.cache(1, 0).lookup(2.0, CacheLookup::Exact);
        assert_eq!(bank.compact(1), 1);
        assert_eq!(bank.iter().count(), 1, "emptied cache is pruned");
        assert_eq!(bank.iter().next().unwrap().0, &(1, 0));
    }

    proptest::proptest! {
        /// Compaction never changes what a retained key answers: for any
        /// insert/lookup history and any high-water mark, every key that
        /// survives answers its exact lookup bit-identically to the
        /// pre-compaction bank.
        #[test]
        fn prop_compacted_bank_answers_retained_keys_bit_identically(
            raw_ops in proptest::collection::vec((0u32..4, 0u64..32, proptest::bool::ANY), 1..80),
            high_water in 0usize..40,
        ) {
            let mut bank = CacheBank::new();
            for (model, k, is_insert) in &raw_ops {
                let key = *k as f64 / 2.0;
                if *is_insert {
                    bank.cache(*model, 0).insert(key, cfg(key + 1.0, (*model + 1) as f64));
                } else {
                    bank.cache(*model, 0).lookup(key, CacheLookup::Exact);
                }
            }
            // Record every present key's answer before compaction.
            let mut answers: Vec<(u32, f64, ResourceConfig)> = Vec::new();
            let pairs: Vec<(u32, u32)> = bank.iter().map(|(&p, _)| p).collect();
            for (model, operator) in pairs {
                let keys: Vec<f64> = bank
                    .cache(model, operator)
                    .entries()
                    .iter()
                    .map(|(k, _)| *k)
                    .collect();
                for key in keys {
                    let got = bank
                        .cache(model, operator)
                        .lookup_indexed(key, CacheLookup::Exact)
                        .map(|(c, _)| c)
                        .expect("present key must answer");
                    answers.push((model, key, got));
                }
            }
            let total = bank.total_entries();
            let evicted = bank.compact(high_water);
            proptest::prop_assert_eq!(evicted, total.saturating_sub(high_water));
            proptest::prop_assert_eq!(bank.total_entries(), total.min(high_water));
            for (model, key, before) in answers {
                if let Some((after, _)) =
                    bank.cache(model, 0).lookup_indexed(key, CacheLookup::Exact)
                {
                    proptest::prop_assert_eq!(after, before, "retained key diverged");
                }
            }
        }
    }
}
