//! The resource-plan cache (§VI-B3).
//!
//! > "Our key insight is that for the same cost model and sub-plan (e.g.,
//! > join operation), same (or similar) data characteristics, e.g., data
//! > size, will require same (or similar) resource configuration. [...] For
//! > each cost model (e.g., SMJ, BHJ) and sub-plan (e.g., join operator,
//! > scan operator), we maintain an in-memory index of data characteristic
//! > keys, each of which point to the best resource configuration for those
//! > data characteristics. Our current prototype keeps a sorted array of
//! > keys, with automatic resizing whenever the array gets full, and we
//! > perform a binary search for lookup."
//!
//! [`ResourcePlanCache`] is that sorted array (a `Vec` gives the
//! automatically resizing contiguous storage; lookups are binary searches).
//! [`CacheBank`] keys one cache per (cost model, operator) pair.
//! The three lookup modes of the paper — exact match, nearest neighbour,
//! weighted average — are [`CacheLookup`] variants. Both approximate modes
//! "first look for exact match before trying the interpolation" (§VII-B).

use crate::config::ResourceConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cache lookup policy (§VI-B3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CacheLookup {
    /// "returns a hit only when exact same data characteristics match."
    Exact,
    /// "returns the resource configuration corresponding to the nearest data
    /// characteristic match (within a threshold)." The threshold is in key
    /// units (GB of smaller-input size in the paper's Fig. 14 sweeps).
    NearestNeighbor { threshold: f64 },
    /// "returns the weighted average of neighboring resource configurations
    /// when their data characteristics are within a threshold." Weights are
    /// inverse distances; the result is snapped back onto the resource grid
    /// by the caller if needed.
    WeightedAverage { threshold: f64 },
}

/// Hit/miss counters, used by the Fig. 14 experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
}

impl CacheStats {
    /// Hit rate in \[0,1\]; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sorted-array cache from a scalar data-characteristic key (the paper
/// keys on data size) to the best known resource configuration.
///
/// ```
/// use raqo_resource::{CacheLookup, ResourceConfig, ResourcePlanCache};
///
/// let mut cache = ResourcePlanCache::new();
/// cache.insert(3.4, ResourceConfig::containers_and_size(10.0, 3.0));
/// // Exact hit:
/// assert!(cache.lookup(3.4, CacheLookup::Exact).is_some());
/// // Similar data characteristics reuse the plan (§VI-B3):
/// let near = cache.lookup(3.45, CacheLookup::NearestNeighbor { threshold: 0.1 });
/// assert_eq!(near, Some(ResourceConfig::containers_and_size(10.0, 3.0)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResourcePlanCache {
    /// Sorted by key. `Vec` doubles on demand — the "automatic resizing
    /// whenever the array gets full" of the prototype.
    entries: Vec<(f64, ResourceConfig)>,
    stats: CacheStats,
}

impl ResourcePlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all entries (the evaluation "always cleared the resource plan
    /// cache before each query run" unless testing across-query caching).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
    }

    /// The sorted `(key, config)` entries — read access for persistence and
    /// diagnostics.
    pub fn entries(&self) -> &[(f64, ResourceConfig)] {
        &self.entries
    }

    /// Rebuild a cache from `(key, config)` pairs (persistence load path).
    /// Entries are sorted by key and deduplicated (last wins, matching
    /// repeated [`ResourcePlanCache::insert`] calls); statistics start
    /// fresh — hit/miss/insertion counters are not persisted.
    pub fn from_entries(mut entries: Vec<(f64, ResourceConfig)>) -> Self {
        entries.retain(|(k, _)| k.is_finite());
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        entries.reverse();
        entries.dedup_by(|a, b| a.0 == b.0);
        entries.reverse();
        ResourcePlanCache { entries, stats: CacheStats::default() }
    }

    /// Binary search for the insertion point of `key`.
    fn partition(&self, key: f64) -> usize {
        self.entries.partition_point(|(k, _)| *k < key)
    }

    /// Insert (or overwrite) the configuration for `key`, keeping the array
    /// sorted. "In case of a miss, we run the hill climbing ... and insert
    /// the newly found resource configuration into the cache."
    pub fn insert(&mut self, key: f64, config: ResourceConfig) {
        assert!(key.is_finite(), "cache keys must be finite");
        let i = self.partition(key);
        if i < self.entries.len() && self.entries[i].0 == key {
            self.entries[i].1 = config;
        } else {
            self.entries.insert(i, (key, config));
        }
        self.stats.insertions += 1;
    }

    /// Look up a configuration for `key` under the given policy. Counts a
    /// hit or a miss in [`CacheStats`].
    pub fn lookup(&mut self, key: f64, mode: CacheLookup) -> Option<ResourceConfig> {
        let found = self.lookup_inner(key, mode);
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    fn lookup_inner(&self, key: f64, mode: CacheLookup) -> Option<ResourceConfig> {
        if self.entries.is_empty() {
            return None;
        }
        let i = self.partition(key);
        // Exact match first, for every mode (§VII-B: "Both variants first
        // look for exact match before trying the interpolation").
        if i < self.entries.len() && self.entries[i].0 == key {
            return Some(self.entries[i].1);
        }
        match mode {
            CacheLookup::Exact => None,
            CacheLookup::NearestNeighbor { threshold } => {
                let (dist, cfg) = self.nearest(key, i)?;
                (dist <= threshold).then_some(cfg)
            }
            CacheLookup::WeightedAverage { threshold } => {
                let neighbors = self.neighbors_within(key, threshold);
                if neighbors.is_empty() {
                    return None;
                }
                Some(weighted_average(key, &neighbors))
            }
        }
    }

    /// Nearest entry to `key`, given the partition point `i`. Returns the
    /// distance and configuration.
    fn nearest(&self, key: f64, i: usize) -> Option<(f64, ResourceConfig)> {
        let lo = i.checked_sub(1).map(|j| self.entries[j]);
        let hi = (i < self.entries.len()).then(|| self.entries[i]);
        match (lo, hi) {
            (None, None) => None,
            (Some((k, c)), None) | (None, Some((k, c))) => Some(((key - k).abs(), c)),
            (Some((kl, cl)), Some((kh, ch))) => {
                let dl = (key - kl).abs();
                let dh = (key - kh).abs();
                Some(if dl <= dh { (dl, cl) } else { (dh, ch) })
            }
        }
    }

    /// All entries with |entry.key − key| ≤ threshold.
    fn neighbors_within(&self, key: f64, threshold: f64) -> Vec<(f64, ResourceConfig)> {
        let lo = self.entries.partition_point(|(k, _)| *k < key - threshold);
        let hi = self.entries.partition_point(|(k, _)| *k <= key + threshold);
        self.entries[lo..hi].to_vec()
    }
}

/// Inverse-distance weighted average of the neighbours' configurations.
fn weighted_average(key: f64, neighbors: &[(f64, ResourceConfig)]) -> ResourceConfig {
    debug_assert!(!neighbors.is_empty());
    let dims = neighbors[0].1.dims();
    let mut acc = vec![0.0; dims];
    let mut wsum = 0.0;
    for (k, cfg) in neighbors {
        // Guard distance away from zero; exact matches were already
        // returned before interpolation.
        let w = 1.0 / ((key - k).abs()).max(1e-12);
        wsum += w;
        for (d, a) in acc.iter_mut().enumerate() {
            *a += w * cfg.get(d);
        }
    }
    for a in acc.iter_mut() {
        *a /= wsum;
    }
    ResourceConfig::from_slice(&acc)
}

/// One [`ResourcePlanCache`] per (cost model, operator kind) pair, as §VI-B3
/// prescribes. Model/operator identifiers are small integers assigned by the
/// optimizer layer.
#[derive(Debug, Clone, Default)]
pub struct CacheBank {
    caches: BTreeMap<(u32, u32), ResourcePlanCache>,
}

impl CacheBank {
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache for a (model, operator) pair, created on first use.
    pub fn cache(&mut self, model: u32, operator: u32) -> &mut ResourcePlanCache {
        self.caches.entry((model, operator)).or_default()
    }

    /// Total entries across all member caches.
    pub fn total_entries(&self) -> usize {
        self.caches.values().map(|c| c.len()).sum()
    }

    /// Iterate the member caches with their (model, operator) keys, in key
    /// order (persistence and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &ResourcePlanCache)> {
        self.caches.iter()
    }

    /// Install a fully-built cache for a (model, operator) pair, replacing
    /// any existing one (persistence load path).
    pub fn insert_cache(&mut self, model: u32, operator: u32, cache: ResourcePlanCache) {
        self.caches.insert((model, operator), cache);
    }

    /// Aggregate statistics across all member caches.
    pub fn aggregate_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in self.caches.values() {
            s.hits += c.stats().hits;
            s.misses += c.stats().misses;
            s.insertions += c.stats().insertions;
        }
        s
    }

    /// Clear every member cache (between queries, unless across-query
    /// caching is being evaluated as in Fig. 15(b)).
    pub fn clear(&mut self) {
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(c: f64, s: f64) -> ResourceConfig {
        ResourceConfig::containers_and_size(c, s)
    }

    #[test]
    fn exact_roundtrip() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(3.4, cfg(10.0, 3.0));
        assert_eq!(cache.lookup(3.4, CacheLookup::Exact), Some(cfg(10.0, 3.0)));
        assert_eq!(cache.lookup(3.5, CacheLookup::Exact), None);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn insert_overwrites_same_key() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(1.0, 1.0));
        cache.insert(1.0, cfg(9.0, 9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(1.0, CacheLookup::Exact), Some(cfg(9.0, 9.0)));
    }

    #[test]
    fn entries_stay_sorted() {
        let mut cache = ResourcePlanCache::new();
        for k in [5.0, 1.0, 3.0, 2.0, 4.0] {
            cache.insert(k, cfg(k, k));
        }
        // Nearest-neighbour lookups only work if the array is sorted.
        for k in [1.0, 2.0, 3.0, 4.0, 5.0] {
            assert_eq!(cache.lookup(k, CacheLookup::Exact), Some(cfg(k, k)));
        }
    }

    #[test]
    fn nearest_neighbor_within_threshold() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        cache.insert(2.0, cfg(20.0, 4.0));
        // 1.4 is nearer to 1.0.
        assert_eq!(
            cache.lookup(1.4, CacheLookup::NearestNeighbor { threshold: 0.5 }),
            Some(cfg(10.0, 2.0))
        );
        // 1.6 is nearer to 2.0.
        assert_eq!(
            cache.lookup(1.6, CacheLookup::NearestNeighbor { threshold: 0.5 }),
            Some(cfg(20.0, 4.0))
        );
        // Outside the threshold: miss.
        assert_eq!(
            cache.lookup(5.0, CacheLookup::NearestNeighbor { threshold: 0.5 }),
            None
        );
    }

    #[test]
    fn nearest_neighbor_at_boundaries() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(10.0, cfg(5.0, 5.0));
        // Query below the only key and above it.
        assert_eq!(
            cache.lookup(9.9, CacheLookup::NearestNeighbor { threshold: 0.2 }),
            Some(cfg(5.0, 5.0))
        );
        assert_eq!(
            cache.lookup(10.1, CacheLookup::NearestNeighbor { threshold: 0.2 }),
            Some(cfg(5.0, 5.0))
        );
    }

    #[test]
    fn weighted_average_interpolates() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        cache.insert(3.0, cfg(30.0, 6.0));
        // Midpoint: equal weights → arithmetic mean.
        let got = cache
            .lookup(2.0, CacheLookup::WeightedAverage { threshold: 1.5 })
            .unwrap();
        assert!((got.containers() - 20.0).abs() < 1e-9);
        assert!((got.container_size_gb() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_average_weights_by_inverse_distance() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(0.0, cfg(0.0, 0.0));
        cache.insert(4.0, cfg(4.0, 4.0));
        // Query at 1.0: weights 1/1 and 1/3 → value (0*1 + 4*(1/3))/(4/3) = 1.
        let got = cache
            .lookup(1.0, CacheLookup::WeightedAverage { threshold: 10.0 })
            .unwrap();
        assert!((got.containers() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_average_misses_outside_threshold() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        assert_eq!(
            cache.lookup(2.0, CacheLookup::WeightedAverage { threshold: 0.5 }),
            None
        );
    }

    #[test]
    fn approximate_modes_prefer_exact_match() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(10.0, 2.0));
        cache.insert(1.1, cfg(99.0, 9.0));
        // Exact key present: both modes must return it untouched.
        assert_eq!(
            cache.lookup(1.0, CacheLookup::NearestNeighbor { threshold: 1.0 }),
            Some(cfg(10.0, 2.0))
        );
        assert_eq!(
            cache.lookup(1.0, CacheLookup::WeightedAverage { threshold: 1.0 }),
            Some(cfg(10.0, 2.0))
        );
    }

    #[test]
    fn empty_cache_misses_all_modes() {
        let mut cache = ResourcePlanCache::new();
        for mode in [
            CacheLookup::Exact,
            CacheLookup::NearestNeighbor { threshold: 1.0 },
            CacheLookup::WeightedAverage { threshold: 1.0 },
        ] {
            assert_eq!(cache.lookup(1.0, mode), None);
        }
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(1.0, cfg(1.0, 1.0));
        cache.lookup(1.0, CacheLookup::Exact);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn bank_separates_model_operator_pairs() {
        let mut bank = CacheBank::new();
        bank.cache(0, 0).insert(1.0, cfg(1.0, 1.0));
        bank.cache(1, 0).insert(1.0, cfg(2.0, 2.0));
        assert_eq!(bank.cache(0, 0).lookup(1.0, CacheLookup::Exact), Some(cfg(1.0, 1.0)));
        assert_eq!(bank.cache(1, 0).lookup(1.0, CacheLookup::Exact), Some(cfg(2.0, 2.0)));
        assert_eq!(bank.total_entries(), 2);
        let stats = bank.aggregate_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 2);
        bank.clear();
        assert_eq!(bank.total_entries(), 0);
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats { hits: 3, misses: 1, insertions: 0 };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_key_rejected() {
        let mut cache = ResourcePlanCache::new();
        cache.insert(f64::NAN, cfg(1.0, 1.0));
    }
}
