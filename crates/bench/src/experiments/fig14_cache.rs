//! Figure 14: "Comparing the effectiveness of caching on TPC-H schema" —
//! resource iterations and planner runtime for hill climbing alone vs hill
//! climbing with the nearest-neighbour and weighted-average caches, over
//! the data-delta (interpolation) threshold.
//!
//! §VII-B: "(i) as desired, resource plan caching becomes more effective as
//! we increase the interpolation, and (ii) both the number of resources
//! configurations and the planner runtime decrease significantly with
//! resource plan caching (up to 10x planner time reduction for 0.1GB
//! threshold)."

use crate::experiments::timed;
use crate::Table;
use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::JoinCostModel;
use raqo_resource::{CacheLookup, ClusterConditions};

/// The figure's x-axis: data-delta thresholds in GB (0 = exact match).
pub const THRESHOLDS: [f64; 6] = [0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1];

#[derive(Debug, Clone)]
pub struct CacheMeasurement {
    pub variant: &'static str,
    pub threshold: f64,
    pub resource_iterations: u64,
    pub runtime_ms: f64,
    pub plan_cost: f64,
}

fn strategy_for(variant: &'static str, threshold: f64) -> ResourceStrategy {
    match variant {
        "HC" => ResourceStrategy::HillClimb,
        "HC+Caching_NN" => {
            if threshold == 0.0 {
                ResourceStrategy::HillClimbCached(CacheLookup::Exact)
            } else {
                ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold })
            }
        }
        "HC+Caching_WA" => {
            if threshold == 0.0 {
                ResourceStrategy::HillClimbCached(CacheLookup::Exact)
            } else {
                ResourceStrategy::HillClimbCached(CacheLookup::WeightedAverage { threshold })
            }
        }
        _ => unreachable!(),
    }
}

pub fn measure(quick: bool) -> Vec<CacheMeasurement> {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::paper_default();
    let query = QuerySpec::tpch_all(&schema);
    let thresholds: &[f64] = if quick { &[0.0, 1e-2, 1e-1] } else { &THRESHOLDS };

    let mut out = Vec::new();
    for variant in ["HC", "HC+Caching_NN", "HC+Caching_WA"] {
        for &threshold in thresholds {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::Selinger,
                strategy_for(variant, threshold),
            );
            // "we always cleared the resource plan cache before each query
            // run": each measurement starts cold.
            let (plan, ms) = timed(|| opt.optimize(&query).expect("plan exists"));
            out.push(CacheMeasurement {
                variant,
                threshold,
                resource_iterations: plan.stats.resource_iterations,
                runtime_ms: ms,
                plan_cost: plan.query.cost,
            });
        }
    }
    out
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 14 — caching effectiveness on the TPC-H All query (Selinger)",
        &["variant", "data delta threshold (GB)", "#resource iterations", "runtime (ms)", "plan cost"],
    );
    for m in measure(quick) {
        t.row(vec![
            m.variant.into(),
            m.threshold.into(),
            m.resource_iterations.into(),
            m.runtime_ms.into(),
            m.plan_cost.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_reduces_iterations_and_threshold_helps() {
        let ms = measure(false);
        let iters = |variant: &str, threshold: f64| {
            ms.iter()
                .find(|m| m.variant == variant && m.threshold == threshold)
                .unwrap()
                .resource_iterations
        };
        let hc = iters("HC", 0.0);
        // Any caching beats no caching (duplicate sub-plan sizes repeat
        // during DP).
        assert!(iters("HC+Caching_NN", 0.0) <= hc);
        // Wider thresholds do not increase iterations, and the widest one
        // is substantially cheaper than plain HC.
        for variant in ["HC+Caching_NN", "HC+Caching_WA"] {
            let narrow = iters(variant, 1e-5);
            let wide = iters(variant, 1e-1);
            assert!(wide <= narrow, "{variant}: wide {wide} > narrow {narrow}");
            assert!(
                (wide as f64) < hc as f64 / 2.0,
                "{variant}: wide {wide} vs HC {hc}"
            );
        }
        // Plain HC is flat across thresholds (it ignores them).
        for &th in &THRESHOLDS {
            assert_eq!(iters("HC", th), hc);
        }
    }

    #[test]
    fn cached_plans_remain_reasonable() {
        // Interpolated resource configurations may be slightly off-optimal
        // but must not blow up plan cost.
        let ms = measure(true);
        let base = ms.iter().find(|m| m.variant == "HC").unwrap().plan_cost;
        for m in &ms {
            assert!(
                m.plan_cost <= base * 1.5 + 1e-9,
                "{} @ {}: cost {} vs base {base}",
                m.variant,
                m.threshold,
                m.plan_cost
            );
        }
    }
}
