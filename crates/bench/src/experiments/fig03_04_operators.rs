//! Figures 3 and 4: BHJ vs SMJ execution times over varying resources
//! (Fig. 3) and the movement of their switch points with data size
//! (Fig. 4), on the Hive substrate.

use crate::{Cell, Table};
use raqo_sim::engine::{Engine, JoinImpl};
use raqo_sim::sweeps::switch_point_small_size;

const PROBE_GB: f64 = 77.0; // lineitem at SF 100

fn join_cell(engine: &Engine, join: JoinImpl, ss: f64, nc: f64, cs: f64) -> Cell {
    engine.join_time(join, ss, PROBE_GB, nc, cs).ok().into()
}

/// Fig. 3(a): 5.1 GB orders, 10 containers, container size 1–10 GB.
/// Fig. 3(b): 3.4 GB orders, 3 GB containers, 5–45 containers.
pub fn run_fig3(quick: bool) -> Vec<Table> {
    let engine = Engine::hive();
    let step = if quick { 2 } else { 1 };

    let mut a = Table::new(
        "Fig 3(a) — varying container size (5.1 GB orders, 10 containers)",
        &["container GB", "SMJ (s)", "BHJ (s)"],
    );
    for cs in (1..=10).step_by(step) {
        let cs = cs as f64;
        a.row(vec![
            cs.into(),
            join_cell(&engine, JoinImpl::SortMerge, 5.1, 10.0, cs),
            join_cell(&engine, JoinImpl::BroadcastHash, 5.1, 10.0, cs),
        ]);
    }

    let mut b = Table::new(
        "Fig 3(b) — varying #containers (3.4 GB orders, 3 GB containers)",
        &["containers", "SMJ (s)", "BHJ (s)"],
    );
    for nc in (5..=45).step_by(5 * step) {
        let nc = nc as f64;
        b.row(vec![
            nc.into(),
            join_cell(&engine, JoinImpl::SortMerge, 3.4, nc, 3.0),
            join_cell(&engine, JoinImpl::BroadcastHash, 3.4, nc, 3.0),
        ]);
    }
    vec![a, b]
}

/// Fig. 4(a): execution time over build size for 3 GB vs 9 GB containers
/// (10 containers). Fig. 4(b): same for 10 vs 40 containers (9 GB).
pub fn run_fig4(quick: bool) -> Vec<Table> {
    let engine = Engine::hive();
    let sizes: Vec<f64> = if quick {
        vec![1.0, 3.0, 5.0, 7.0]
    } else {
        (1..=24).map(|i| i as f64 * 0.5).collect()
    };

    let mut a = Table::new(
        "Fig 4(a) — varying data size, 3 GB vs 9 GB containers (10 containers)",
        &["orders GB", "SMJ 3GB", "BHJ 3GB", "SMJ 9GB", "BHJ 9GB"],
    );
    for &ss in &sizes {
        a.row(vec![
            ss.into(),
            join_cell(&engine, JoinImpl::SortMerge, ss, 10.0, 3.0),
            join_cell(&engine, JoinImpl::BroadcastHash, ss, 10.0, 3.0),
            join_cell(&engine, JoinImpl::SortMerge, ss, 10.0, 9.0),
            join_cell(&engine, JoinImpl::BroadcastHash, ss, 10.0, 9.0),
        ]);
    }

    let mut b = Table::new(
        "Fig 4(b) — varying data size, 10 vs 40 containers (9 GB containers)",
        &["orders GB", "SMJ 10c", "BHJ 10c", "SMJ 40c", "BHJ 40c"],
    );
    for &ss in &sizes {
        b.row(vec![
            ss.into(),
            join_cell(&engine, JoinImpl::SortMerge, ss, 10.0, 9.0),
            join_cell(&engine, JoinImpl::BroadcastHash, ss, 10.0, 9.0),
            join_cell(&engine, JoinImpl::SortMerge, ss, 40.0, 9.0),
            join_cell(&engine, JoinImpl::BroadcastHash, ss, 40.0, 9.0),
        ]);
    }

    let mut s = Table::new(
        "Fig 4 — switch points (build-side GB where BHJ stops winning)",
        &["setting", "paper", "measured", "cause"],
    );
    let sp3 = switch_point_small_size(&engine, PROBE_GB, 10.0, 3.0, 0.1, 12.0);
    let sp9 = switch_point_small_size(&engine, PROBE_GB, 10.0, 9.0, 0.1, 12.0);
    let sp10 = switch_point_small_size(&engine, PROBE_GB, 10.0, 9.0, 0.1, 12.0);
    let sp40 = switch_point_small_size(&engine, PROBE_GB, 40.0, 9.0, 0.1, 12.0);
    s.row(vec!["3 GB containers".into(), "3.4".into(), sp3.small_gb.into(), format!("{:?}", sp3.kind).into()]);
    s.row(vec!["9 GB containers".into(), "6.4".into(), sp9.small_gb.into(), format!("{:?}", sp9.kind).into()]);
    s.row(vec!["10 containers".into(), "2.1".into(), sp10.small_gb.into(), format!("{:?}", sp10.kind).into()]);
    s.row(vec!["40 containers".into(), "3.8".into(), sp40.small_gb.into(), format!("{:?}", sp40.kind).into()]);
    vec![a, b, s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_crossovers_in_both_panels() {
        let tables = run_fig3(false);
        // Panel (a): SMJ wins early rows, BHJ wins late rows.
        let first_winner = |t: &Table, smj_col: usize, bhj_col: usize| -> Vec<i8> {
            t.rows
                .iter()
                .map(|r| match (&r[smj_col], &r[bhj_col]) {
                    (Cell::Num(s), Cell::Num(b)) => {
                        if s < b {
                            1 // SMJ wins
                        } else {
                            -1
                        }
                    }
                    (_, Cell::Oom) => 1, // BHJ infeasible: SMJ wins
                    _ => 0,
                })
                .collect()
        };
        let a = first_winner(&tables[0], 1, 2);
        assert_eq!(*a.first().unwrap(), 1, "SMJ must win small containers");
        assert_eq!(*a.last().unwrap(), -1, "BHJ must win big containers");
        let b = first_winner(&tables[1], 1, 2);
        assert_eq!(*b.first().unwrap(), -1, "BHJ must win few containers");
        assert_eq!(*b.last().unwrap(), 1, "SMJ must win many containers");
    }

    #[test]
    fn fig4_switch_point_grows_with_memory() {
        let tables = run_fig4(true);
        let s = &tables[2];
        let get = |row: usize| -> f64 {
            match s.rows[row][2] {
                Cell::Num(v) => v,
                _ => panic!("expected number"),
            }
        };
        assert!(get(1) > get(0), "switch(9GB) must exceed switch(3GB)");
    }
}
