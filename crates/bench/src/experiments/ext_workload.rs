//! Extension experiment E1/E2 (beyond the paper's figures): end-to-end
//! *workload* execution through the shared-cluster scheduler.
//!
//! The paper evaluates per-query plan quality and planner overhead; its
//! §VIII agenda asks how RAQO should interact with the DAG scheduler when
//! the requested resources are busy. This experiment closes that loop:
//!
//! * **E1 — workload throughput**: a bursty workload of TPC-H-derived join
//!   queries runs on a fixed memory pool, planned either the current
//!   two-step way (default 10 MB rule + one fixed resource guess for
//!   everything) or by RAQO (joint per-operator plans);
//! * **E2 — contention policies**: the same RAQO workload under the three
//!   scheduler answers to "resources not available": delay, shrink, or
//!   pick the best RAQO-provided alternative at admission.

use crate::Table;
use raqo_catalog::tpch::{table, TpchSchema};
use raqo_catalog::QuerySpec;
use raqo_core::adaptive::plan_to_job;
use raqo_core::{PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::SimOracleCost;
use raqo_resource::ClusterConditions;
use raqo_sim::engine::Engine;
use raqo_sim::scheduler::{
    makespan_sec, mean_completion_sec, ContentionPolicy, JobSpec, Scheduler, StageCandidate,
    StageSpec,
};

/// The workload: per burst, one instance of each query template, bursts
/// spaced closely enough to contend.
fn query_mix() -> Vec<QuerySpec> {
    vec![QuerySpec::tpch_q12(), QuerySpec::tpch_q3(), QuerySpec::tpch_q2()]
}

/// The shared pool: the paper's 100 × 10 GB evaluation cluster.
const POOL_GB: f64 = 1000.0;
const BURST_GAP_SEC: f64 = 120.0;

fn schema() -> TpchSchema {
    let mut s = TpchSchema::sf100();
    // Sample orders down (the paper's own trick) so both joins have
    // broadcastable sides and plan choice genuinely matters.
    s.catalog.sample_table(table::ORDERS, 0.05);
    s
}

/// Two-step jobs: plan with the default rule at one fixed guess; every
/// stage requests that same fixed configuration.
fn two_step_jobs(schema: &TpchSchema, bursts: usize, guess: (f64, f64)) -> Vec<JobSpec> {
    let model = SimOracleCost::hive();
    let engine = Engine::hive();
    let (nc, cs) = guess;
    let mut opt = RaqoOptimizer::new(
        &schema.catalog,
        &schema.graph,
        &model,
        ClusterConditions::paper_default(),
        PlannerKind::Selinger,
        ResourceStrategy::HillClimb,
    );
    let mut jobs = Vec::new();
    for b in 0..bursts {
        for query in query_mix() {
            let planned = opt.plan_for_resources(&query, nc, cs).expect("plan");
            let stages = planned
                .joins
                .iter()
                .map(|join| {
                    // The default 10 MB rule: SMJ unless the build side is
                    // under 10 MB (none here is) — re-derive the duration
                    // honestly from the engine at the fixed guess.
                    let duration = engine
                        .join_time(join.decision.join, join.io.build_gb, join.io.probe_gb, nc, cs)
                        .expect("fixed-guess join runs");
                    StageSpec::single(StageCandidate {
                        containers: nc,
                        container_size_gb: cs,
                        duration_sec: duration,
                    })
                })
                .collect();
            jobs.push(JobSpec { arrival_sec: b as f64 * BURST_GAP_SEC, stages });
        }
    }
    jobs
}

/// RAQO jobs: joint per-operator plans, with fallback alternatives for the
/// adaptive policy.
fn raqo_jobs(schema: &TpchSchema, bursts: usize) -> Vec<JobSpec> {
    let model = SimOracleCost::hive();
    let cluster = ClusterConditions::paper_default();
    let mut opt = RaqoOptimizer::new(
        &schema.catalog,
        &schema.graph,
        &model,
        cluster,
        PlannerKind::Selinger,
        ResourceStrategy::HillClimb,
    );
    let mut jobs = Vec::new();
    for b in 0..bursts {
        for query in query_mix() {
            let plan = opt.optimize(&query).expect("plan");
            let mut job = plan_to_job(&plan, &model, &cluster, b as f64 * BURST_GAP_SEC);
            job.arrival_sec = b as f64 * BURST_GAP_SEC;
            jobs.push(job);
        }
    }
    jobs
}

#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    pub label: &'static str,
    pub mean_completion_sec: f64,
    pub makespan_sec: f64,
    pub mean_queued_sec: f64,
}

fn run_workload(label: &'static str, jobs: &[JobSpec], policy: ContentionPolicy) -> WorkloadOutcome {
    let scheduler = Scheduler::new(POOL_GB, policy);
    let outcomes = scheduler.run(jobs);
    WorkloadOutcome {
        label,
        mean_completion_sec: mean_completion_sec(&outcomes),
        makespan_sec: makespan_sec(&outcomes),
        mean_queued_sec: outcomes.iter().map(|o| o.queued_sec).sum::<f64>()
            / outcomes.len() as f64,
    }
}

/// E1 + E2 measurements.
pub fn measure(quick: bool) -> Vec<WorkloadOutcome> {
    let schema = schema();
    let bursts = if quick { 3 } else { 8 };
    let two_step = two_step_jobs(&schema, bursts, (10.0, 4.0));
    let raqo = raqo_jobs(&schema, bursts);
    vec![
        run_workload("two-step (default rule, fixed 10x4GB, delay)", &two_step, ContentionPolicy::Delay),
        run_workload("RAQO (joint plans, delay)", &raqo, ContentionPolicy::Delay),
        run_workload("RAQO (joint plans, shrink)", &raqo, ContentionPolicy::Shrink),
        run_workload("RAQO (joint plans + alternatives)", &raqo, ContentionPolicy::BestAlternative),
    ]
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E1/E2 — workload execution on a 1 TB shared pool (TPC-H-derived mix)",
        &["configuration", "mean completion (s)", "mean queued (s)", "makespan (s)"],
    );
    for o in measure(quick) {
        t.row(vec![
            o.label.into(),
            o.mean_completion_sec.into(),
            o.mean_queued_sec.into(),
            o.makespan_sec.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_raqo_beats_two_step_practice() {
        // The robust headline: RAQO with runtime alternatives beats the
        // two-step baseline. (Plain delay-scheduled RAQO can actually
        // *lose* at high contention — its resource-greedy requests queue
        // behind each other, which is precisely the §VIII concern this
        // extension investigates; see EXPERIMENTS.md.)
        let outcomes = measure(true);
        let two_step = &outcomes[0];
        let adaptive = &outcomes[3];
        assert!(
            adaptive.mean_completion_sec < two_step.mean_completion_sec,
            "adaptive RAQO {:.0}s vs two-step {:.0}s",
            adaptive.mean_completion_sec,
            two_step.mean_completion_sec
        );
    }

    #[test]
    fn alternatives_policy_never_queues_longer_than_delay() {
        let outcomes = measure(true);
        let delay = &outcomes[1];
        let adaptive = &outcomes[3];
        assert!(
            adaptive.mean_queued_sec <= delay.mean_queued_sec + 1e-6,
            "adaptive queues {:.0}s vs delay {:.0}s",
            adaptive.mean_queued_sec,
            delay.mean_queued_sec
        );
    }

    #[test]
    fn outcomes_are_finite_and_positive() {
        for o in measure(true) {
            assert!(o.mean_completion_sec.is_finite() && o.mean_completion_sec > 0.0, "{o:?}");
            assert!(o.makespan_sec > 0.0, "{o:?}");
        }
    }
}
