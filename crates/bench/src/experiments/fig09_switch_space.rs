//! Figure 9: "The space of BHJ and SMJ switch points" for Hive and Spark —
//! switch-point curves over container size for several container-count
//! settings, against the flat 10 MB default rule.
//!
//! The paper's curves are additionally parameterized by the number of
//! reducers; our engine model auto-derives reducer counts from data size
//! (as the paper's own setup did: "enable Hive's feature that automatically
//! determines the number of reducers"), so the curve family here is over
//! container counts only — the substitution is recorded in EXPERIMENTS.md.

use crate::Table;
use raqo_dtree::DEFAULT_BROADCAST_THRESHOLD_GB;
use raqo_sim::engine::Engine;
use raqo_sim::sweeps::switch_curve;

const PROBE_GB: f64 = 77.0;

pub fn run(quick: bool) -> Vec<Table> {
    let container_sizes: Vec<f64> = if quick {
        vec![3.0, 6.0, 9.0]
    } else {
        (1..=12).map(|c| c as f64).collect()
    };
    let container_counts: &[f64] = if quick { &[10.0] } else { &[5.0, 6.0, 10.0, 20.0] };

    let mut tables = Vec::new();
    for engine in [Engine::hive(), Engine::spark()] {
        let mut t = Table::new(
            format!(
                "Fig 9 ({}) — switch points (GB) over container size, per #containers",
                engine.kind
            ),
            &["container GB", "curve", "switch point (GB)", "default rule (GB)"],
        );
        for &nc in container_counts {
            let curve = switch_curve(&engine, PROBE_GB, nc, &container_sizes, 14.0);
            for (cs, sp) in curve {
                t.row(vec![
                    cs.into(),
                    format!("{} containers", nc).into(),
                    sp.small_gb.into(),
                    DEFAULT_BROADCAST_THRESHOLD_GB.into(),
                ]);
            }
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cell;

    #[test]
    fn true_switch_points_dwarf_default_rule() {
        // "the default optimizer rules are way off": every measured switch
        // point (beyond the OOM-dominated smallest containers) is orders
        // of magnitude above 10 MB.
        for t in run(true) {
            for row in &t.rows {
                if let Cell::Num(sp) = row[2] {
                    assert!(
                        sp > 10.0 * DEFAULT_BROADCAST_THRESHOLD_GB,
                        "switch point {sp} too close to the default rule"
                    );
                }
            }
        }
    }

    #[test]
    fn full_run_produces_both_engines_with_curve_families() {
        let tables = run(false);
        assert_eq!(tables.len(), 2);
        // 12 container sizes × 4 container-count curves.
        assert_eq!(tables[0].rows.len(), 48);
    }
}
