//! Figure 12: "RAQO planning on TPC-H schema" — planner runtime and
//! resource configurations explored for Q12/Q3/Q2/All under the
//! FastRandomized and Selinger planners, with and without resource
//! planning.
//!
//! §VII-A: "The RAQO versions of the planner ran with hill climbing but
//! without resource plan caching. We can see that we could still generate
//! both the resource and the query plans in a few milliseconds. However,
//! resource planning does add an overhead to the standard query planning."

use crate::experiments::timed;
use crate::Table;
use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::JoinCostModel;
use raqo_planner::RandomizedConfig;
use raqo_resource::ClusterConditions;

/// One measured cell of the figure.
#[derive(Debug, Clone)]
pub struct PlanningMeasurement {
    pub query: String,
    pub planner: &'static str,
    pub mode: &'static str,
    pub runtime_ms: f64,
    pub resource_iterations: u64,
    pub plan_cost_calls: u64,
    pub plan_time_sec: f64,
}

/// The randomized-planner budget used by the planning experiments. Smaller
/// than the library default so a 100-table query stays in paper-scale
/// planning times.
pub fn experiment_randomized_config(seed: u64) -> RandomizedConfig {
    RandomizedConfig { restarts: 4, rounds_per_join: 4, epsilon: 0.05, seed, memoize: false }
}

/// Run every (query × planner × mode) combination of the figure.
pub fn measure(quick: bool) -> Vec<PlanningMeasurement> {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::paper_default();
    let queries = if quick {
        vec![QuerySpec::tpch_q12(), QuerySpec::tpch_q3()]
    } else {
        QuerySpec::tpch_suite(&schema)
    };

    let mut out = Vec::new();
    for (planner_name, planner) in [
        ("FastRandomized", PlannerKind::FastRandomized(experiment_randomized_config(17))),
        ("Selinger", PlannerKind::Selinger),
    ] {
        for query in &queries {
            // QO: pick the plan for fixed, user-guessed resources.
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                planner.clone(),
                ResourceStrategy::HillClimb,
            );
            let (qo, qo_ms) = timed(|| opt.plan_for_resources(query, 10.0, 4.0));
            let qo = qo.expect("QO plan exists");
            out.push(PlanningMeasurement {
                query: query.name.clone(),
                planner: planner_name,
                mode: "QO",
                runtime_ms: qo_ms,
                resource_iterations: 0,
                plan_cost_calls: 0,
                plan_time_sec: qo.objectives.time_sec,
            });

            // RAQO: hill climbing, no caching (the Fig. 12 configuration).
            let (raqo, raqo_ms) = timed(|| opt.optimize(query));
            let raqo = raqo.expect("RAQO plan exists");
            out.push(PlanningMeasurement {
                query: query.name.clone(),
                planner: planner_name,
                mode: "RAQO",
                runtime_ms: raqo_ms,
                resource_iterations: raqo.stats.resource_iterations,
                plan_cost_calls: raqo.stats.plan_cost_calls,
                plan_time_sec: raqo.time_sec(),
            });

            // RAQO with exhaustive resource planning — the configuration
            // behind the paper's "more than half a million resource
            // configurations for the TPC-H All query" headline.
            let mut brute = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                planner.clone(),
                ResourceStrategy::BruteForce,
            );
            let (bf, bf_ms) = timed(|| brute.optimize(query));
            let bf = bf.expect("RAQO brute-force plan exists");
            out.push(PlanningMeasurement {
                query: query.name.clone(),
                planner: planner_name,
                mode: "RAQO-brute",
                runtime_ms: bf_ms,
                resource_iterations: bf.stats.resource_iterations,
                plan_cost_calls: bf.stats.plan_cost_calls,
                plan_time_sec: bf.time_sec(),
            });
        }
    }
    out
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 12 — planner runtime and resource configurations explored (TPC-H)",
        &[
            "planner",
            "query",
            "mode",
            "runtime (ms)",
            "#resource iterations",
            "#getPlanCost calls",
            "est. plan time (s)",
        ],
    );
    for m in measure(quick) {
        t.row(vec![
            m.planner.into(),
            m.query.clone().into(),
            m.mode.into(),
            m.runtime_ms.into(),
            m.resource_iterations.into(),
            m.plan_cost_calls.into(),
            m.plan_time_sec.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raqo_explores_many_configurations_yet_stays_fast() {
        let ms = measure(true);
        for m in &ms {
            if m.mode == "RAQO" {
                assert!(m.resource_iterations > 100, "{m:?}");
                // "in a few milliseconds" — allow generous slack for debug
                // builds and CI noise.
                assert!(m.runtime_ms < 5_000.0, "{m:?}");
            }
        }
    }

    #[test]
    fn raqo_plans_are_at_least_as_good_as_fixed_resource_plans() {
        let ms = measure(true);
        // Rows come in (QO, RAQO, RAQO-brute) triples per (planner, query).
        for pair in ms.chunks(3) {
            let (qo, raqo) = (&pair[0], &pair[1]);
            assert_eq!(qo.query, raqo.query);
            assert!(
                raqo.plan_time_sec <= qo.plan_time_sec * 1.05 + 1e-9,
                "RAQO should not be worse: {raqo:?} vs {qo:?}"
            );
        }
    }

    #[test]
    fn brute_force_explores_paper_scale_configuration_counts() {
        // Paper: "more than half a million possible resource
        // configurations for the TPC-H All query" (randomized planner).
        let ms = measure(false);
        let all_fr = ms
            .iter()
            .find(|m| m.query == "All" && m.planner == "FastRandomized" && m.mode == "RAQO-brute")
            .unwrap();
        assert!(
            all_fr.resource_iterations > 500_000,
            "only {} configurations",
            all_fr.resource_iterations
        );
    }

    #[test]
    fn bigger_queries_explore_more() {
        let ms = measure(true);
        let iters = |q: &str, planner: &str| {
            ms.iter()
                .find(|m| m.query == q && m.planner == planner && m.mode == "RAQO")
                .unwrap()
                .resource_iterations
        };
        assert!(iters("Q3", "Selinger") > iters("Q12", "Selinger"));
    }
}
