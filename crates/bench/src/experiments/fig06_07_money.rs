//! Figures 6 and 7: the monetary-cost view of the operator choice.
//!
//! §III-C: "either of SMJ and BHJ could be cost effective based on the
//! available resources. Interestingly, while the switching points remain
//! the same, the absolute values of monetary value change very
//! differently."

use crate::{Cell, Table};
use raqo_sim::engine::{Engine, JoinImpl};
use raqo_sim::money::monetary_cost_tb_sec;
use raqo_sim::sweeps::switch_point_small_size;

const PROBE_GB: f64 = 77.0;

fn money_cell(engine: &Engine, join: JoinImpl, ss: f64, nc: f64, cs: f64) -> Cell {
    engine
        .join_time(join, ss, PROBE_GB, nc, cs)
        .ok()
        .map(|t| monetary_cost_tb_sec(t, nc, cs))
        .into()
}

/// Fig. 6: monetary cost over (a) container size, (b) #containers.
pub fn run_fig6(quick: bool) -> Vec<Table> {
    let engine = Engine::hive();
    let step = if quick { 2 } else { 1 };

    let mut a = Table::new(
        "Fig 6(a) — monetary cost, varying container size (5.1 GB orders, 10 containers)",
        &["container GB", "SMJ (TB*s)", "BHJ (TB*s)"],
    );
    for cs in (1..=10).step_by(step) {
        let cs = cs as f64;
        a.row(vec![
            cs.into(),
            money_cell(&engine, JoinImpl::SortMerge, 5.1, 10.0, cs),
            money_cell(&engine, JoinImpl::BroadcastHash, 5.1, 10.0, cs),
        ]);
    }

    let mut b = Table::new(
        "Fig 6(b) — monetary cost, varying #containers (3.4 GB orders, 3 GB containers)",
        &["containers", "SMJ (TB*s)", "BHJ (TB*s)"],
    );
    for nc in (5..=45).step_by(5 * step) {
        let nc = nc as f64;
        b.row(vec![
            nc.into(),
            money_cell(&engine, JoinImpl::SortMerge, 3.4, nc, 3.0),
            money_cell(&engine, JoinImpl::BroadcastHash, 3.4, nc, 3.0),
        ]);
    }
    vec![a, b]
}

/// Fig. 7: monetary switch points over data size. Because money is a
/// positive multiple of time at fixed resources, the switch points equal
/// the time switch points — exactly the paper's observation.
pub fn run_fig7(_quick: bool) -> Vec<Table> {
    let engine = Engine::hive();
    let mut t = Table::new(
        "Fig 7 — monetary switch points over data size",
        &["setting", "time switch (GB)", "money switch (GB)"],
    );
    for (label, nc, cs) in [
        ("3 GB containers, 10c", 10.0, 3.0),
        ("9 GB containers, 10c", 10.0, 9.0),
        ("9 GB containers, 40c", 40.0, 9.0),
    ] {
        let time_sp = switch_point_small_size(&engine, PROBE_GB, nc, cs, 0.1, 12.0);
        let money_sp = money_switch_point(&engine, nc, cs);
        t.row(vec![label.into(), time_sp.small_gb.into(), money_sp.into()]);
    }
    vec![t]
}

/// Switch point computed on monetary cost directly (scan + bisection).
pub fn money_switch_point(engine: &Engine, nc: f64, cs: f64) -> f64 {
    let money = |join: JoinImpl, ss: f64| -> Option<f64> {
        engine
            .join_time(join, ss, PROBE_GB, nc, cs)
            .ok()
            .map(|t| monetary_cost_tb_sec(t, nc, cs))
    };
    let mut prev = 0.1;
    let mut ss = 0.1;
    while ss < 12.0 {
        let bhj = money(JoinImpl::BroadcastHash, ss);
        let smj = money(JoinImpl::SortMerge, ss).expect("SMJ runs");
        match bhj {
            Some(b) if b < smj => prev = ss,
            _ => return 0.5 * (prev + ss),
        }
        ss += 0.05;
    }
    12.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn money_switch_points_equal_time_switch_points() {
        // The §III-C observation, checked quantitatively.
        let engine = Engine::hive();
        for (nc, cs) in [(10.0, 3.0), (10.0, 9.0), (40.0, 9.0)] {
            let time_sp = switch_point_small_size(&engine, PROBE_GB, nc, cs, 0.1, 12.0).small_gb;
            let money_sp = money_switch_point(&engine, nc, cs);
            assert!(
                (time_sp - money_sp).abs() < 0.1,
                "nc={nc} cs={cs}: time {time_sp:.2} vs money {money_sp:.2}"
            );
        }
    }

    #[test]
    fn absolute_money_differs_between_configs_with_same_winner() {
        // "the absolute values of monetary value change very differently":
        // same winner, very different bills.
        let engine = Engine::hive();
        let m = |nc: f64, cs: f64| {
            let t = engine.join_time(JoinImpl::SortMerge, 5.1, PROBE_GB, nc, cs).unwrap();
            monetary_cost_tb_sec(t, nc, cs)
        };
        let cheap = m(10.0, 3.0);
        let pricey = m(10.0, 10.0);
        assert!(pricey > 1.5 * cheap, "cheap={cheap:.1} pricey={pricey:.1}");
    }

    #[test]
    fn tables_render() {
        for t in run_fig6(true).iter().chain(run_fig7(true).iter()) {
            assert!(!t.rows.is_empty());
            let _ = t.render();
        }
    }
}
