//! Extension experiment E3: cost-model ablation.
//!
//! §VI-A trains the 7-feature polynomial model and defers "tuning the cost
//! model" to future work. This ablation quantifies what that choice costs:
//! plan the TPC-H suite with (a) the paper's published coefficients,
//! (b) the same feature map retrained on our substrate, (c) the extended
//! map (+`1/nc`, `ss/nc`, intercept), and (d) the simulator oracle — then
//! *execute* every plan on the simulator at its planned resources and
//! compare realized times against the oracle-planned optimum.
//!
//! The gap between (b) and (c) is the price of the paper's feature map;
//! the gap between (c) and (d) is the remaining estimation error.

use crate::Table;
use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{PlannerKind, RaqoOptimizer, RaqoPlan, ResourceStrategy};
use raqo_cost::features::FeatureMap;
use raqo_cost::{JoinCostModel, OperatorCost, SimOracleCost};
use raqo_resource::ClusterConditions;
use raqo_sim::engine::Engine;

/// Execute a plan's joins on the simulator at their planned resources;
/// returns the realized total time (OOM impossible: every model enforces
/// the engine's feasibility rule).
pub fn execute_on_simulator(plan: &RaqoPlan, engine: &Engine) -> f64 {
    plan.query
        .joins
        .iter()
        .map(|join| {
            let (nc, cs) = join.decision.resources.expect("RAQO plans resources");
            engine
                .join_time(join.decision.join, join.io.build_gb, join.io.probe_gb, nc, cs)
                .expect("planned joins are feasible")
        })
        .sum()
}

#[derive(Debug, Clone)]
pub struct AblationRow {
    pub query: String,
    pub model: &'static str,
    /// Realized execution time of the model's plan on the simulator.
    pub executed_sec: f64,
    /// Slowdown vs the oracle-planned plan (1.0 = optimal).
    pub regret: f64,
}

fn plan_with<M: OperatorCost + Send + Sync>(
    schema: &TpchSchema,
    model: &M,
    query: &QuerySpec,
) -> RaqoPlan {
    let mut opt = RaqoOptimizer::new(
        &schema.catalog,
        &schema.graph,
        model,
        ClusterConditions::paper_default(),
        PlannerKind::Selinger,
        ResourceStrategy::BruteForce, // isolate model quality from search quality
    );
    opt.optimize(query).expect("plan exists")
}

pub fn measure(quick: bool) -> Vec<AblationRow> {
    let schema = TpchSchema::new(1.0);
    let engine = Engine::hive();
    let oracle = SimOracleCost::hive();
    let paper = JoinCostModel::paper_hive();
    let retrained = JoinCostModel::trained_hive();
    let extended = JoinCostModel::train(
        &engine,
        &raqo_sim::profile::ProfileGrid::paper_default(),
        FeatureMap::Extended,
    );

    let queries = if quick {
        vec![QuerySpec::tpch_q3()]
    } else {
        QuerySpec::tpch_suite(&schema)
    };

    let mut out = Vec::new();
    for query in &queries {
        let oracle_exec = execute_on_simulator(&plan_with(&schema, &oracle, query), &engine);
        let mut push = |name: &'static str, plan: RaqoPlan| {
            let executed = execute_on_simulator(&plan, &engine);
            out.push(AblationRow {
                query: query.name.clone(),
                model: name,
                executed_sec: executed,
                regret: executed / oracle_exec,
            });
        };
        push("oracle", plan_with(&schema, &oracle, query));
        push("paper coefficients", plan_with(&schema, &paper, query));
        push("retrained (paper map)", plan_with(&schema, &retrained, query));
        push("retrained (extended map)", plan_with(&schema, &extended, query));
    }
    out
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E3 — cost-model ablation: realized plan time on the simulator (regret vs oracle)",
        &["query", "cost model", "executed (s)", "regret"],
    );
    for m in measure(quick) {
        t.row(vec![
            m.query.clone().into(),
            m.model.into(),
            m.executed_sec.into(),
            m.regret.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_plans_have_unit_regret() {
        for m in measure(true) {
            if m.model == "oracle" {
                assert!((m.regret - 1.0).abs() < 1e-9, "{m:?}");
            }
        }
    }

    #[test]
    fn extended_map_no_worse_than_paper_map() {
        let ms = measure(false);
        let total = |name: &str| -> f64 {
            ms.iter().filter(|m| m.model == name).map(|m| m.executed_sec).sum()
        };
        let ext = total("retrained (extended map)");
        let paper_map = total("retrained (paper map)");
        assert!(
            ext <= paper_map * 1.05,
            "extended {ext:.0}s vs paper map {paper_map:.0}s"
        );
    }

    #[test]
    fn learned_models_stay_within_bounded_regret() {
        // Even the published coefficients (trained on a different system
        // entirely) must produce *executable* plans with finite regret;
        // the substrate-trained ones should stay within a small multiple.
        for m in measure(false) {
            assert!(m.regret.is_finite() && m.regret >= 0.99, "{m:?}");
            if m.model.starts_with("retrained") {
                assert!(m.regret < 5.0, "{m:?}");
            }
        }
    }
}
