//! Figure 5: "Join order decisions in Hive over varying resources."
//!
//! The two-join query (simplified TPC-H Q3) with a sampled `orders`:
//!
//! * **Plan 1** — "first performs a BHJ between lineitem and orders, and
//!   then a BHJ with customer": Hive fuses the two map joins into one scan
//!   of lineitem with both hash tables resident, so it is fast but needs
//!   both build sides in memory at once (it "cannot be used [for small
//!   containers] as it runs out of memory");
//! * **Plan 2** — "performs a BHJ between orders with customer and then a
//!   SMJ with lineitem": always feasible, and its shuffle parallelism wins
//!   once enough containers are available ("when more containers are
//!   available, plan 2 starts performing better").

use crate::Table;
use raqo_catalog::tpch::{table, TpchSchema};
use raqo_catalog::GB;
use raqo_planner::CardinalityEstimator;
use raqo_sim::engine::{Engine, JoinImpl};

/// Data sizes of the experiment, derived from TPC-H SF 100 with `orders`
/// sampled down (850 MB in the paper's first experiment, 425 MB in the
/// second).
pub struct Fig5Data {
    pub orders_gb: f64,
    pub customer_gb: f64,
    pub lineitem_gb: f64,
    /// orders ⋈ customer intermediate (plan 2's SMJ build side).
    pub oc_gb: f64,
}

impl Fig5Data {
    pub fn at_orders_mb(orders_mb: f64) -> Self {
        let schema = {
            let mut s = TpchSchema::sf100();
            let full_orders_gb = s.catalog.table(table::ORDERS).stats.bytes() / GB;
            s.catalog
                .sample_table(table::ORDERS, (orders_mb / 1024.0) / full_orders_gb);
            s
        };
        let est = CardinalityEstimator::new(&schema.catalog, &schema.graph);
        Fig5Data {
            orders_gb: est.set_gb(&[table::ORDERS]),
            customer_gb: est.set_gb(&[table::CUSTOMER]),
            lineitem_gb: est.set_gb(&[table::LINEITEM]),
            oc_gb: est.set_gb(&[table::ORDERS, table::CUSTOMER]),
        }
    }

    /// Plan 1: fused map-join chain — broadcast orders and customer, scan
    /// lineitem once.
    pub fn plan1(&self, engine: &Engine, nc: f64, cs: f64) -> Option<f64> {
        engine
            .map_join_chain_time(&[self.orders_gb, self.customer_gb], self.lineitem_gb, nc, cs)
            .ok()
    }

    /// Plan 2: BHJ(orders → customer), then SMJ of the small intermediate
    /// with lineitem.
    pub fn plan2(&self, engine: &Engine, nc: f64, cs: f64) -> Option<f64> {
        let j1 = engine
            .join_time(JoinImpl::BroadcastHash, self.orders_gb, self.customer_gb, nc, cs)
            .ok()?;
        let j2 = engine
            .join_time(JoinImpl::SortMerge, self.oc_gb, self.lineitem_gb, nc, cs)
            .ok()?;
        Some(j1 + j2)
    }
}

pub fn run(quick: bool) -> Vec<Table> {
    let engine = Engine::hive();
    let step = if quick { 2 } else { 1 };

    // (a): 850 MB orders, 10 containers, container-size sweep.
    let data_a = Fig5Data::at_orders_mb(850.0);
    let mut a = Table::new(
        "Fig 5(a) — plan 1 vs plan 2, varying container size (10 containers, 850 MB orders)",
        &["container GB", "plan 1 (s)", "plan 2 (s)"],
    );
    for cs in (2..=10).step_by(step) {
        let cs = cs as f64;
        a.row(vec![
            cs.into(),
            data_a.plan1(&engine, 10.0, cs).into(),
            data_a.plan2(&engine, 10.0, cs).into(),
        ]);
    }

    // (b): 425 MB orders, 9 GB containers, container-count sweep.
    let data_b = Fig5Data::at_orders_mb(425.0);
    let mut b = Table::new(
        "Fig 5(b) — plan 1 vs plan 2, varying #containers (9 GB containers, 425 MB orders)",
        &["containers", "plan 1 (s)", "plan 2 (s)"],
    );
    for nc in (5..=45).step_by(5 * step) {
        let nc = nc as f64;
        b.row(vec![
            nc.into(),
            data_b.plan1(&engine, nc, 9.0).into(),
            data_b.plan2(&engine, nc, 9.0).into(),
        ]);
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan1_ooms_below_a_container_threshold() {
        // Paper: "for containers smaller than 6 GB, plan 1 cannot be used
        // as it runs out of memory". Our combined build side (orders +
        // customer ≈ 3.3 GB) OOMs below ~3 GB containers — same behaviour,
        // smaller threshold (deviation recorded in EXPERIMENTS.md).
        let engine = Engine::hive();
        let d = Fig5Data::at_orders_mb(850.0);
        assert!(d.plan1(&engine, 10.0, 2.0).is_none(), "should OOM at 2 GB");
        assert!(d.plan1(&engine, 10.0, 4.0).is_some(), "should run at 4 GB");
        // Plan 2 runs everywhere.
        assert!(d.plan2(&engine, 10.0, 2.0).is_some());
    }

    #[test]
    fn plan1_wins_at_low_parallelism() {
        // "plan 1 performs better across the board" (at 10 containers).
        let engine = Engine::hive();
        let d = Fig5Data::at_orders_mb(850.0);
        for cs in [4.0, 6.0, 8.0, 10.0] {
            let p1 = d.plan1(&engine, 10.0, cs).unwrap();
            let p2 = d.plan2(&engine, 10.0, cs).unwrap();
            assert!(p1 < p2, "cs={cs}: plan1={p1:.0} plan2={p2:.0}");
        }
    }

    #[test]
    fn plan2_wins_at_high_parallelism_with_a_crossover() {
        // "when more containers are available, plan 2 starts performing
        // better than plan 1, with 32 containers being the switch point".
        // Require a crossover somewhere in (10, 45).
        let engine = Engine::hive();
        let d = Fig5Data::at_orders_mb(425.0);
        let p1_10 = d.plan1(&engine, 10.0, 9.0).unwrap();
        let p2_10 = d.plan2(&engine, 10.0, 9.0).unwrap();
        assert!(p1_10 < p2_10, "plan1 must win at 10 containers");
        let p1_45 = d.plan1(&engine, 45.0, 9.0).unwrap();
        let p2_45 = d.plan2(&engine, 45.0, 9.0).unwrap();
        assert!(p2_45 < p1_45, "plan2 must win at 45 containers");
        let mut crossover = None;
        for nc in 10..=45 {
            let p1 = d.plan1(&engine, nc as f64, 9.0).unwrap();
            let p2 = d.plan2(&engine, nc as f64, 9.0).unwrap();
            if p2 < p1 {
                crossover = Some(nc);
                break;
            }
        }
        let nc = crossover.expect("crossover exists");
        assert!((12..=44).contains(&nc), "crossover at {nc}, paper ~32");
    }

    #[test]
    fn derived_sizes_are_plausible() {
        let d = Fig5Data::at_orders_mb(850.0);
        assert!((0.7..1.0).contains(&d.orders_gb), "orders {:.2}", d.orders_gb);
        assert!((2.0..3.0).contains(&d.customer_gb), "customer {:.2}", d.customer_gb);
        assert!((70.0..85.0).contains(&d.lineitem_gb));
        // o ⋈ c intermediate is bigger than orders but far below lineitem.
        assert!(d.oc_gb > d.orders_gb && d.oc_gb < 5.0, "oc {:.2}", d.oc_gb);
    }
}
