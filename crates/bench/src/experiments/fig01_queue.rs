//! Figure 1: "Varying resource availability on Microsoft clusters" — the
//! CDF of queue-time/run-time ratios. Our substrate is the synthetic
//! bursty-workload queue simulator (see `raqo_sim::queue` for the
//! substitution rationale).

use crate::Table;
use raqo_sim::queue::{fraction_at_least, ratio_cdf, simulate, QueueSimConfig};

pub fn run(quick: bool) -> Vec<Table> {
    let config = if quick {
        QueueSimConfig { bursts: 10, ..Default::default() }
    } else {
        QueueSimConfig::default()
    };
    let outcomes = simulate(&config);

    let mut cdf = Table::new(
        "Fig 1 — CDF of queue-time/run-time ratio",
        &["ratio", "fraction of jobs <= ratio"],
    );
    let points = ratio_cdf(&outcomes);
    // Sample the CDF at round ratios like the figure's log-scale axis.
    for r in [0.01, 0.1, 0.5, 1.0, 2.0, 4.0, 10.0, 20.0, 50.0, 100.0] {
        let frac = points.iter().take_while(|(x, _)| *x <= r).last().map_or(0.0, |(_, f)| *f);
        cdf.row(vec![r.into(), frac.into()]);
    }

    let mut headline = Table::new(
        "Fig 1 — headline claims",
        &["claim", "paper", "measured"],
    );
    headline.row(vec![
        "fraction of jobs with queue >= 1x runtime".into(),
        ">0.80".into(),
        fraction_at_least(&outcomes, 1.0).into(),
    ]);
    headline.row(vec![
        "fraction of jobs with queue >= 4x runtime".into(),
        ">0.20".into(),
        fraction_at_least(&outcomes, 4.0).into(),
    ]);
    vec![cdf, headline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_cdf_and_headline_tables() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 10);
        assert_eq!(tables[1].rows.len(), 2);
    }
}
