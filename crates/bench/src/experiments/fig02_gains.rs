//! Figure 2: "Potential gains of query and resource optimization."
//!
//! The paper runs one join query under many resource configurations on
//! Hive and SparkSQL and compares, per configuration, the plan the
//! *default* optimizer picks (the 10 MB broadcast rule — which, for a
//! multi-GB build side, always says SMJ) against the best plan for those
//! resources. "The plans chosen by the default optimizer are up to twice
//! slower and twice more resource demanding."

use crate::Table;
use raqo_sim::engine::{Engine, JoinImpl};
use raqo_sim::money::monetary_cost_tb_sec;

/// The single-join query of §III-A: sampled orders ⋈ lineitem (GB).
const BUILD_GB: f64 = 3.4;
const PROBE_GB: f64 = 77.0;

/// Resource configurations swept in the figure (⟨containers, GB⟩ pairs).
fn configs(quick: bool) -> Vec<(f64, f64)> {
    let ncs: &[f64] = if quick { &[10.0, 40.0] } else { &[5.0, 10.0, 20.0, 30.0, 40.0] };
    let css: &[f64] = if quick { &[4.0, 8.0] } else { &[2.0, 4.0, 6.0, 8.0, 10.0] };
    let mut out = Vec::new();
    for &nc in ncs {
        for &cs in css {
            out.push((nc, cs));
        }
    }
    out
}

/// Default-optimizer choice: broadcast only below 10 MB, so SMJ here.
fn default_time(engine: &Engine, nc: f64, cs: f64) -> f64 {
    engine
        .join_time(JoinImpl::SortMerge, BUILD_GB, PROBE_GB, nc, cs)
        .expect("SMJ always runs")
}

/// Resource-aware choice: best feasible implementation for the config.
fn best_time(engine: &Engine, nc: f64, cs: f64) -> f64 {
    engine.best_join(BUILD_GB, PROBE_GB, nc, cs).1
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    for engine in [Engine::hive(), Engine::spark()] {
        let mut t = Table::new(
            format!("Fig 2 ({}) — default vs resource-aware plan per configuration", engine.kind),
            &[
                "containers",
                "container GB",
                "default time (s)",
                "Q&R time (s)",
                "default TB*s",
                "Q&R TB*s",
                "speedup",
            ],
        );
        let mut worst = 1.0f64;
        for (nc, cs) in configs(quick) {
            let d = default_time(&engine, nc, cs);
            let b = best_time(&engine, nc, cs);
            worst = worst.max(d / b);
            t.row(vec![
                nc.into(),
                cs.into(),
                d.into(),
                b.into(),
                monetary_cost_tb_sec(d, nc, cs).into(),
                monetary_cost_tb_sec(b, nc, cs).into(),
                (d / b).into(),
            ]);
        }
        t.row(vec![
            "max default/Q&R ratio".into(),
            "".into(),
            "".into(),
            "".into(),
            "".into(),
            "".into(),
            worst.into(),
        ]);
        tables.push(t);
    }
    tables
}

/// Maximum default-vs-best slowdown across the sweep for an engine —
/// used by tests and EXPERIMENTS.md (paper: "up to twice slower").
pub fn max_slowdown(engine: &Engine) -> f64 {
    configs(false)
        .into_iter()
        .map(|(nc, cs)| default_time(engine, nc, cs) / best_time(engine, nc, cs))
        .fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_optimizer_leaves_large_gains_on_the_table() {
        // Paper: up to ~2x. Require at least 1.3x somewhere for both
        // engines, and never a slowdown below 1.0 (best is best).
        for engine in [Engine::hive(), Engine::spark()] {
            let worst = max_slowdown(&engine);
            assert!(worst >= 1.3, "{}: max slowdown only {worst:.2}", engine.kind);
        }
    }

    #[test]
    fn best_never_worse_than_default() {
        let engine = Engine::hive();
        for (nc, cs) in configs(false) {
            assert!(best_time(&engine, nc, cs) <= default_time(&engine, nc, cs) + 1e-9);
        }
    }

    #[test]
    fn tables_cover_both_engines() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title.contains("Hive"));
        assert!(tables[1].title.contains("SparkSQL"));
    }
}
