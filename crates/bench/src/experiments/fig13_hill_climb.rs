//! Figure 13: "Comparing HillClimbing with Brute Force on TPC-H schema" —
//! resource configurations explored and planner runtime, per query.
//!
//! §VII-B: "In general, hill climbing explores 4 times less resource
//! configurations than brute force. ... We observe similar improvements in
//! runtime as well."

use crate::experiments::timed;
use crate::Table;
use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::JoinCostModel;
use raqo_resource::ClusterConditions;

#[derive(Debug, Clone)]
pub struct HillClimbMeasurement {
    pub query: String,
    pub brute_iterations: u64,
    pub brute_ms: f64,
    pub hill_iterations: u64,
    pub hill_ms: f64,
}

impl HillClimbMeasurement {
    pub fn iteration_reduction(&self) -> f64 {
        self.brute_iterations as f64 / self.hill_iterations as f64
    }
}

pub fn measure(quick: bool) -> Vec<HillClimbMeasurement> {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::paper_default();
    let queries = if quick {
        vec![QuerySpec::tpch_q12(), QuerySpec::tpch_q3()]
    } else {
        QuerySpec::tpch_suite(&schema)
    };

    queries
        .iter()
        .map(|query| {
            let run = |strategy: ResourceStrategy| {
                let mut opt = RaqoOptimizer::new(
                    &schema.catalog,
                    &schema.graph,
                    &model,
                    cluster,
                    PlannerKind::Selinger,
                    strategy,
                );
                let (plan, ms) = timed(|| opt.optimize(query).expect("plan exists"));
                (plan.stats.resource_iterations, ms)
            };
            let (brute_iterations, brute_ms) = run(ResourceStrategy::BruteForce);
            let (hill_iterations, hill_ms) = run(ResourceStrategy::HillClimb);
            HillClimbMeasurement {
                query: query.name.clone(),
                brute_iterations,
                brute_ms,
                hill_iterations,
                hill_ms,
            }
        })
        .collect()
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 13 — hill climbing vs brute force (Selinger planner, TPC-H)",
        &[
            "query",
            "brute iterations",
            "HC iterations",
            "iteration reduction",
            "brute runtime (ms)",
            "HC runtime (ms)",
        ],
    );
    for m in measure(quick) {
        t.row(vec![
            m.query.clone().into(),
            m.brute_iterations.into(),
            m.hill_iterations.into(),
            m.iteration_reduction().into(),
            m.brute_ms.into(),
            m.hill_ms.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hill_climbing_substantially_reduces_iterations() {
        // Paper: ~4x on average. Require >= 2.5x on every query and >= 3.5x
        // on average.
        let ms = measure(false);
        let mut total = 0.0;
        for m in &ms {
            let r = m.iteration_reduction();
            assert!(r >= 2.5, "{}: only {r:.1}x", m.query);
            total += r;
        }
        let avg = total / ms.len() as f64;
        assert!(avg >= 3.5, "average reduction {avg:.1}x");
    }

    #[test]
    fn same_plans_quality_wise() {
        // Hill climbing may settle in local optima, but on the learned
        // quadratic surfaces its plans must stay close to brute force.
        let schema = TpchSchema::new(1.0);
        let model = JoinCostModel::trained_hive();
        let cluster = ClusterConditions::paper_default();
        for query in [QuerySpec::tpch_q3(), QuerySpec::tpch_q2()] {
            let cost = |strategy| {
                let mut opt = RaqoOptimizer::new(
                    &schema.catalog,
                    &schema.graph,
                    &model,
                    cluster,
                    PlannerKind::Selinger,
                    strategy,
                );
                opt.optimize(&query).unwrap().query.cost
            };
            let brute = cost(ResourceStrategy::BruteForce);
            let hill = cost(ResourceStrategy::HillClimb);
            assert!(
                hill <= brute * 1.2 + 1e-9,
                "{}: hill {hill:.1} vs brute {brute:.1}",
                query.name
            );
        }
    }
}
