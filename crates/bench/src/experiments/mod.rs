//! One module per figure of the paper's evaluation.
//!
//! Every module exposes `run(quick) -> Vec<Table>`: the data series behind
//! the figure, in the paper's units. `quick = true` shrinks sweep sizes for
//! CI/tests; the `repro` binary defaults to the full-size runs.

pub mod fig01_queue;
pub mod fig02_gains;
pub mod fig03_04_operators;
pub mod fig05_join_order;
pub mod fig06_07_money;
pub mod fig09_switch_space;
pub mod fig10_11_trees;
pub mod fig12_raqo_planning;
pub mod fig13_hill_climb;
pub mod fig14_cache;
pub mod ext_ablation;
pub mod ext_cpu;
pub mod ext_workload;
pub mod fig15_scalability;

use crate::Table;

/// A runnable experiment: number, title, and runner.
pub struct Experiment {
    pub id: &'static str,
    pub title: &'static str,
    pub run: fn(bool) -> Vec<Table>,
}

/// The full experiment registry, in figure order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "1",
            title: "Queue-time/run-time CDF on a contended cluster",
            run: fig01_queue::run,
        },
        Experiment {
            id: "2",
            title: "Potential gains of joint query & resource optimization",
            run: fig02_gains::run,
        },
        Experiment {
            id: "3",
            title: "BHJ vs SMJ over varying resources (Hive)",
            run: fig03_04_operators::run_fig3,
        },
        Experiment {
            id: "4",
            title: "BHJ/SMJ switch points over varying data size",
            run: fig03_04_operators::run_fig4,
        },
        Experiment {
            id: "5",
            title: "Join order decisions over varying resources",
            run: fig05_join_order::run,
        },
        Experiment {
            id: "6",
            title: "Monetary cost of BHJ vs SMJ over varying resources",
            run: fig06_07_money::run_fig6,
        },
        Experiment {
            id: "7",
            title: "Monetary switch points over varying data size",
            run: fig06_07_money::run_fig7,
        },
        Experiment {
            id: "9",
            title: "The space of BHJ/SMJ switch points (Hive & Spark)",
            run: fig09_switch_space::run,
        },
        Experiment {
            id: "10",
            title: "Default decision trees (Hive & Spark)",
            run: fig10_11_trees::run_fig10,
        },
        Experiment {
            id: "11",
            title: "RAQO decision trees (Hive & Spark)",
            run: fig10_11_trees::run_fig11,
        },
        Experiment {
            id: "12",
            title: "RAQO planning on TPC-H (FastRandomized & Selinger)",
            run: fig12_raqo_planning::run,
        },
        Experiment {
            id: "13",
            title: "Hill climbing vs brute force resource planning",
            run: fig13_hill_climb::run,
        },
        Experiment {
            id: "14",
            title: "Effectiveness of resource-plan caching",
            run: fig14_cache::run,
        },
        Experiment {
            id: "15",
            title: "RAQO scalability (schema size & cluster size)",
            run: fig15_scalability::run,
        },
        Experiment {
            id: "E1",
            title: "Extension: end-to-end workload execution (two-step vs RAQO, scheduler policies)",
            run: ext_workload::run,
        },
        Experiment {
            id: "E2",
            title: "Extension: three-dimensional resource planning (containers x memory x cores)",
            run: ext_cpu::run,
        },
        Experiment {
            id: "E3",
            title: "Extension: cost-model ablation (paper coefficients vs retrained vs extended vs oracle)",
            run: ext_ablation::run,
        },
    ]
}

/// Wall-clock helper: run `f`, return (result, elapsed milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}
