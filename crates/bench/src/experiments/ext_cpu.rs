//! Extension experiment E2: the third resource dimension.
//!
//! §III: "our experiments can naturally be extended to include other
//! resources, such as CPU." This experiment does exactly that: the
//! resource space becomes ⟨containers, container GB, cores⟩, the simulator
//! oracle scales the CPU-bound share of processing with cores (Amdahl on
//! the per-container work), and cores are billed at their serverless
//! memory-equivalent. RAQO's Algorithm 1 is dimension-generic, so the only
//! change is the cluster-conditions vector.

use crate::Table;
use raqo_core::{Objective, RaqoCoster, ResourceStrategy};
use raqo_cost::SimOracleCost;
use raqo_planner::{JoinIo, PlanCoster};
use raqo_resource::{ClusterConditions, ResourceConfig};

/// The 2-D evaluation cluster (cores fixed at the engine default of 4).
fn cluster_2d() -> ClusterConditions {
    ClusterConditions::paper_default()
}

/// The same cluster with a 1–8 core axis.
fn cluster_3d() -> ClusterConditions {
    ClusterConditions::new(
        ResourceConfig::from_slice(&[1.0, 1.0, 1.0]),
        ResourceConfig::from_slice(&[100.0, 10.0, 8.0]),
        ResourceConfig::from_slice(&[1.0, 1.0, 1.0]),
    )
}

/// One planned operator under one (objective, dimensionality) setting.
#[derive(Debug, Clone)]
pub struct CpuPlanning {
    pub objective: &'static str,
    pub dims: usize,
    pub containers: f64,
    pub container_gb: f64,
    pub cores: f64,
    pub time_sec: f64,
    pub money_tb_sec: f64,
    pub iterations: u64,
}

/// Plan the Fig. 3(b) join (3.4 GB build, 77 GB probe) across settings.
pub fn measure(_quick: bool) -> Vec<CpuPlanning> {
    let model = SimOracleCost::hive();
    let io = JoinIo { build_gb: 3.4, probe_gb: 77.0, out_gb: 80.0, out_rows: 1e7 };
    let mut out = Vec::new();
    for (obj_name, objective) in [("time", Objective::Time), ("money", Objective::Money)] {
        for (dims, cluster) in [(2usize, cluster_2d()), (3usize, cluster_3d())] {
            let mut coster = RaqoCoster::new(
                &model,
                cluster,
                ResourceStrategy::HillClimb,
                objective,
            );
            let d = coster.join_cost(&io).expect("feasible");
            let (nc, cs) = d.resources.expect("resources planned");
            let cores = d.cores.unwrap_or(model.engine.tuning.default_cores);
            // Report money consistently across dimensionalities: cores are
            // priced at their memory equivalent in both, with the 2-D rows
            // implicitly holding the engine-default 4 cores.
            let money = raqo_sim::money::monetary_cost_with_cores(
                d.objectives.time_sec,
                nc,
                cs,
                cores,
            );
            out.push(CpuPlanning {
                objective: obj_name,
                dims,
                containers: nc,
                container_gb: cs,
                cores,
                time_sec: d.objectives.time_sec,
                money_tb_sec: money,
                iterations: coster.stats.resource_iterations,
            });
        }
    }
    out
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E2 — 2-D vs 3-D resource planning (3.4 GB ⋈ 77 GB, Hive oracle)",
        &[
            "objective",
            "dims",
            "containers",
            "container GB",
            "cores",
            "est time (s)",
            "est money (TB*s)",
            "#iterations",
        ],
    );
    for m in measure(quick) {
        t.row(vec![
            m.objective.into(),
            (m.dims as u64).into(),
            m.containers.into(),
            m.container_gb.into(),
            m.cores.into(),
            m.time_sec.into(),
            m.money_tb_sec.into(),
            m.iterations.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(ms: &[CpuPlanning], obj: &str, dims: usize) -> CpuPlanning {
        ms.iter().find(|m| m.objective == obj && m.dims == dims).unwrap().clone()
    }

    #[test]
    fn third_dimension_improves_time_optimal_plans() {
        // With cores plannable up to 8, the time-optimal configuration
        // must be at least as fast as the 4-core 2-D one.
        let ms = measure(true);
        let d2 = find(&ms, "time", 2);
        let d3 = find(&ms, "time", 3);
        assert!(d3.time_sec <= d2.time_sec + 1e-9, "3-D {d3:?} vs 2-D {d2:?}");
        // And it should actually use the extra cores.
        assert!(d3.cores > 4.0, "time-optimal plan should take more cores: {d3:?}");
    }

    #[test]
    fn money_objective_buys_fewer_cores_than_time_objective() {
        let ms = measure(true);
        let time3 = find(&ms, "time", 3);
        let money3 = find(&ms, "money", 3);
        assert!(money3.cores <= time3.cores);
        assert!(money3.money_tb_sec <= time3.money_tb_sec + 1e-9);
    }

    #[test]
    fn hill_climb_cost_grows_modestly_with_the_extra_dimension() {
        // Algorithm 1 probes ±1 per dimension per round: 3-D costs ~1.5×
        // the evaluations per round, not the 8× of the grid blow-up.
        let ms = measure(true);
        let d2 = find(&ms, "time", 2);
        let d3 = find(&ms, "time", 3);
        assert!(
            (d3.iterations as f64) < (d2.iterations as f64) * 4.0,
            "3-D used {} vs 2-D {} iterations",
            d3.iterations,
            d2.iterations
        );
    }

    #[test]
    fn three_d_money_beats_two_d_under_consistent_pricing() {
        // With cores priced identically in both reports, the 3-D
        // money-objective search must find a configuration at least as
        // cheap as the 4-core 2-D one.
        let ms = measure(true);
        let m2 = find(&ms, "money", 2);
        let m3 = find(&ms, "money", 3);
        assert!(
            m3.money_tb_sec <= m2.money_tb_sec + 1e-9,
            "3-D {m3:?} vs 2-D {m2:?}"
        );
    }

    #[test]
    fn planned_cores_stay_in_bounds() {
        for m in measure(true) {
            assert!((1.0..=8.0).contains(&m.cores), "{m:?}");
        }
    }
}
