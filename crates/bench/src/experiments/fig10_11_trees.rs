//! Figures 10 and 11: the default and RAQO decision trees for Hive and
//! Spark, rendered with the node statistics the paper's figures show
//! (gini / samples / value / class).

use crate::Table;
use raqo_core::train_raqo_tree;
use raqo_dtree::{default_hive_tree, default_spark_tree, DecisionTree};
use raqo_sim::engine::Engine;
use raqo_sim::profile::ProfileGrid;

fn tree_table(title: String, tree: &DecisionTree) -> Table {
    let mut t = Table::new(title, &["tree"]);
    for line in tree.render().lines() {
        t.row(vec![line.into()]);
    }
    t.row(vec![format!(
        "max path length = {}, nodes = {}",
        tree.max_path_len(),
        tree.node_count()
    )
    .into()]);
    t
}

pub fn run_fig10(_quick: bool) -> Vec<Table> {
    vec![
        tree_table("Fig 10(a) — default Hive join-selection tree".into(), &default_hive_tree()),
        tree_table("Fig 10(b) — default Spark join-selection tree".into(), &default_spark_tree()),
    ]
}

pub fn run_fig11(quick: bool) -> Vec<Table> {
    let grid = if quick {
        ProfileGrid {
            small_gb: vec![0.5, 1.7, 3.4, 5.1],
            large_gb: 77.0,
            containers: vec![10.0, 20.0, 40.0],
            container_size_gb: vec![3.0, 6.0, 9.0],
        }
    } else {
        ProfileGrid::paper_default()
    };
    vec![
        tree_table(
            "Fig 11(a) — RAQO decision tree for Hive".into(),
            &train_raqo_tree(&Engine::hive(), &grid),
        ),
        tree_table(
            "Fig 11(b) — RAQO decision tree for Spark".into(),
            &train_raqo_tree(&Engine::spark(), &grid),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_trees_are_single_rule() {
        for t in run_fig10(true) {
            let text = t.render();
            assert!(text.contains("Data Size (GB) <= 0.01"), "{text}");
        }
    }

    #[test]
    fn fig11_trees_are_deeper_and_resource_aware() {
        // "The RAQO trees are a bit more complicated, i.e., they have more
        // branching based on not only the data sizes, but also the
        // container sizes and the number of containers."
        for t in run_fig11(true) {
            let text = t.render();
            assert!(
                text.contains("Container Size") || text.contains("Concurrent Containers"),
                "{text}"
            );
        }
    }
}
