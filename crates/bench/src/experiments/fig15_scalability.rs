//! Figure 15: RAQO scalability — (a) over schema/query size up to
//! 100-table joins; (b) over cluster size up to 100 K containers of up to
//! 100 GB, with and without across-query caching.
//!
//! §VII-C: "The cached version of RAQO improves over the non-cached
//! version by almost 6x, while it is slower than the plain QO only by a
//! factor of 1.29x on average. ... the resource planning overhead is
//! negligible up to 1000 containers ... Though the planner runtimes are
//! still within 630 milliseconds. ... across-query caching is indeed
//! useful after 10K containers, with almost 30% improvements in planner
//! runtime."

use crate::experiments::fig12_raqo_planning::experiment_randomized_config;
use crate::experiments::timed;
use crate::Table;
use raqo_catalog::{QuerySpec, RandomSchemaConfig};
use raqo_core::{PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::SimOracleCost;
use raqo_resource::{CacheLookup, ClusterConditions, SharedCacheBank};

fn cached_strategy() -> ResourceStrategy {
    ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.01 })
}

#[derive(Debug, Clone)]
pub struct ScaleSchemaRow {
    pub query_size: usize,
    pub qo_ms: f64,
    pub raqo_uncached_ms: f64,
    pub raqo_cached_ms: f64,
    /// Resource configurations explored without / with the plan cache —
    /// the deterministic quantity behind the wall-clock gap.
    pub uncached_iterations: u64,
    pub cached_iterations: u64,
}

/// Fig. 15(a): planner runtime over query size on a 100-table random
/// schema: plain QO vs RAQO (hill climbing) vs RAQO (hill climbing +
/// caching).
pub fn measure_schema_scaling(quick: bool) -> Vec<ScaleSchemaRow> {
    let schema = RandomSchemaConfig::with_tables(100, 5).generate();
    // The oracle model keeps the physical 1/nc improvement with
    // parallelism, so hill climbs lengthen with cluster size the way the
    // paper's do (the learned polynomial maps fit an interior optimum in
    // the container count instead; see EXPERIMENTS.md).
    let model = SimOracleCost::hive();
    let cluster = ClusterConditions::paper_default();
    let sizes: Vec<usize> =
        if quick { vec![8, 30] } else { vec![2, 16, 30, 44, 58, 72, 86, 100] };

    sizes
        .into_iter()
        .map(|k| {
            let query =
                QuerySpec::random_connected(&schema.catalog, &schema.graph, k, k as u64);
            let planner = PlannerKind::FastRandomized(experiment_randomized_config(7));
            let time_mode = |strategy: ResourceStrategy, raqo: bool| -> (f64, u64) {
                let mut opt = RaqoOptimizer::new(
                    &schema.catalog,
                    &schema.graph,
                    &model,
                    cluster,
                    planner.clone(),
                    strategy,
                );
                if raqo {
                    let (plan, ms) = timed(|| opt.optimize(&query).expect("plan"));
                    (ms, plan.stats.resource_iterations)
                } else {
                    (timed(|| opt.plan_for_resources(&query, 10.0, 4.0).expect("plan")).1, 0)
                }
            };
            let (qo_ms, _) = time_mode(ResourceStrategy::HillClimb, false);
            let (raqo_uncached_ms, uncached_iterations) =
                time_mode(ResourceStrategy::HillClimb, true);
            let (raqo_cached_ms, cached_iterations) = time_mode(cached_strategy(), true);
            ScaleSchemaRow {
                query_size: k,
                qo_ms,
                raqo_uncached_ms,
                raqo_cached_ms,
                uncached_iterations,
                cached_iterations,
            }
        })
        .collect()
}

#[derive(Debug, Clone)]
pub struct ScaleClusterRow {
    pub max_containers: f64,
    pub max_container_gb: f64,
    pub per_query_cache_ms: f64,
    pub across_query_cache_ms: f64,
    pub resource_iterations: u64,
}

/// Fig. 15(b): the 100-table join planned under growing cluster
/// conditions; per-query caching (cache cleared before each condition) vs
/// across-query caching (cache persists).
pub fn measure_cluster_scaling(quick: bool) -> Vec<ScaleClusterRow> {
    let schema = RandomSchemaConfig::with_tables(100, 5).generate();
    let model = SimOracleCost::hive();
    let k = if quick { 20 } else { 100 };
    let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, k, 3);
    let planner = PlannerKind::FastRandomized(experiment_randomized_config(23));

    let container_scales: &[f64] =
        if quick { &[100.0, 1_000.0] } else { &[100.0, 1_000.0, 10_000.0, 100_000.0] };
    let size_scales: Vec<f64> = if quick {
        vec![10.0, 50.0]
    } else {
        (1..=10).map(|i| 10.0 * i as f64).collect()
    };

    // Across-query caching: every condition gets a fresh optimizer, but all
    // of them adopt the same shared bank — the cache outlives any single
    // optimizer run, which is exactly the paper's across-query mode.
    let bank = SharedCacheBank::new();

    let mut out = Vec::new();
    for &max_nc in container_scales {
        for &max_cs in &size_scales {
            let cluster = ClusterConditions::two_dim(1.0..=max_nc, 1.0..=max_cs, 1.0, 1.0);

            let mut per_query = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                planner.clone(),
                cached_strategy(),
            );
            let (plan, per_query_ms) = timed(|| per_query.optimize(&query).expect("plan"));

            let mut across = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                planner.clone(),
                cached_strategy(),
            );
            across.share_cache(bank.clone());
            let (_, across_ms) = timed(|| across.optimize(&query).expect("plan"));

            out.push(ScaleClusterRow {
                max_containers: max_nc,
                max_container_gb: max_cs,
                per_query_cache_ms: per_query_ms,
                across_query_cache_ms: across_ms,
                resource_iterations: plan.stats.resource_iterations,
            });
        }
    }
    out
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut a = Table::new(
        "Fig 15(a) — planner runtime over query size (100-table random schema)",
        &["query size (#tables)", "QO (ms)", "RAQO (ms)", "RAQO cached (ms)"],
    );
    for r in measure_schema_scaling(quick) {
        a.row(vec![
            (r.query_size as u64).into(),
            r.qo_ms.into(),
            r.raqo_uncached_ms.into(),
            r.raqo_cached_ms.into(),
        ]);
    }

    let mut b = Table::new(
        "Fig 15(b) — planner runtime over cluster conditions (100-table join)",
        &[
            "max containers",
            "max container GB",
            "RAQO cached (ms)",
            "RAQO cached across queries (ms)",
            "#resource iterations",
        ],
    );
    for r in measure_cluster_scaling(quick) {
        b.row(vec![
            r.max_containers.into(),
            r.max_container_gb.into(),
            r.per_query_cache_ms.into(),
            r.across_query_cache_ms.into(),
            r.resource_iterations.into(),
        ]);
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_brings_raqo_close_to_qo() {
        // Paper: cached RAQO ~1.29x of plain QO on average, ~6x better
        // than uncached. Require: cached average within 4x of QO on the
        // wall clock, and — deterministically, since wall-clock ratios on
        // a loaded box put a 1.5x bar within noise — the cache cuts the
        // configurations explored at least in half.
        let _serial = crate::timing_lock();
        let rows = measure_schema_scaling(true);
        let mut qo = 0.0;
        let mut cached = 0.0;
        let mut uncached_iters = 0;
        let mut cached_iters = 0;
        for r in &rows {
            qo += r.qo_ms;
            cached += r.raqo_cached_ms;
            uncached_iters += r.uncached_iterations;
            cached_iters += r.cached_iterations;
        }
        assert!(cached <= qo * 4.0, "cached {cached:.1}ms vs qo {qo:.1}ms");
        assert!(
            uncached_iters >= cached_iters * 2,
            "uncached explored {uncached_iters} configurations vs cached {cached_iters}"
        );
    }

    #[test]
    fn cluster_scaling_grows_iterations_with_cluster() {
        let rows = measure_cluster_scaling(true);
        // Iterations at the largest cluster exceed the smallest (longer
        // climbs over the bigger grid).
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(
            large.resource_iterations > small.resource_iterations,
            "small {:?} large {:?}",
            small.resource_iterations,
            large.resource_iterations
        );
    }

    #[test]
    fn across_query_caching_helps_on_repeated_conditions() {
        // The across-query optimizer answered later conditions from a warm
        // cache: its total time must not exceed the per-query total.
        let _serial = crate::timing_lock();
        let rows = measure_cluster_scaling(true);
        let per: f64 = rows.iter().map(|r| r.per_query_cache_ms).sum();
        let across: f64 = rows.iter().map(|r| r.across_query_cache_ms).sum();
        assert!(
            across <= per * 1.2,
            "across {across:.1}ms vs per-query {per:.1}ms"
        );
    }
}
