//! The wire front end under load: `NetSeries` behind `repro --bench-json`.
//!
//! A [`raqo_net::PlanServer`] wrapping the same sharded planning service
//! the in-process throughput bench drives, hammered by closed-loop
//! [`raqo_net::PlanClient`]s at 1, 4, and 8 connections. Every request is
//! a full round trip — frame encode, TCP, decode, dispatch queue, worker
//! pool, reply frame — so the series prices exactly what the network
//! layer adds on top of `ThroughputSeries`.
//!
//! Reported per point: requests/sec (first send to last reply) and
//! p50/p99 *end-to-end* latency, computed with the same nearest-rank
//! [`raqo_sim::percentile`] the queue simulator uses. `repro
//! --bench-json` gates the 8-connection point against the in-process
//! series floor ×0.8: the wire layer may tax throughput, but falling
//! below even the slowest in-process configuration means the event loop
//! itself regressed.

use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{
    PlannerKind, PlanningService, Priority, RaqoOptimizer, ResourceStrategy, ServiceConfig,
    Telemetry,
};
use raqo_cost::JoinCostModel;
use raqo_net::{ClientConfig, NetConfig, PlanClient, PlanServer};
use raqo_resource::{CacheLookup, ClusterConditions, PlanningBudget, ShardedCacheBank};
use raqo_sim::percentile;
use raqo_telemetry::Counter;
use serde::Serialize;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

/// One connection-count configuration's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct NetPoint {
    /// Concurrent closed-loop client connections.
    pub connections: usize,
    /// Total requests across all connections (timed window only).
    pub requests: usize,
    /// First send to last reply.
    pub wall_ms: f64,
    pub requests_per_sec: f64,
    /// End-to-end: frame encode to decoded reply, per request.
    pub p50_latency_us: f64,
    pub p99_latency_us: f64,
    /// Requests answered shed (0 here: the bench sizes every queue to
    /// hold the whole sweep so each point does identical work).
    pub shed: u64,
    /// Client-side retries (0 in a clean run; nonzero flags flaky loopback).
    pub client_retries: u64,
}

/// The wire-throughput series serialized into `BENCH_planner.json`.
#[derive(Debug, Clone, Serialize)]
pub struct NetSeries {
    pub workload: String,
    /// Planning workers behind the server.
    pub workers: usize,
    pub requests_per_connection: usize,
    /// Points at 1, 4, and 8 client connections.
    pub points: Vec<NetPoint>,
    /// Requests/sec at the largest connection count — the number the
    /// `--bench-json` floor gate compares against `ThroughputSeries`.
    pub peak_requests_per_sec: f64,
}

fn model() -> &'static JoinCostModel {
    static MODEL: OnceLock<JoinCostModel> = OnceLock::new();
    MODEL.get_or_init(JoinCostModel::trained_hive)
}

fn schema() -> &'static TpchSchema {
    static SCHEMA: OnceLock<TpchSchema> = OnceLock::new();
    SCHEMA.get_or_init(|| TpchSchema::new(1.0))
}

fn build_optimizer(_worker: usize) -> RaqoOptimizer<'static, JoinCostModel> {
    let schema = schema();
    RaqoOptimizer::new(
        Arc::new(schema.catalog.clone()),
        Arc::new(schema.graph.clone()),
        model(),
        ClusterConditions::paper_default(),
        PlannerKind::Selinger,
        ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.05 }),
    )
}

/// Rotating per-request query mix — small enough to stay planner-bound,
/// varied enough that the resource cache sees distinct keys.
fn query_mix() -> [QuerySpec; 3] {
    [QuerySpec::tpch_q3(), QuerySpec::tpch_q12(), QuerySpec::tpch_q2()]
}

fn run_point(connections: usize, per_conn: usize) -> NetPoint {
    let total = connections * per_conn;
    let tel = Telemetry::enabled();
    let service = Arc::new(PlanningService::start(
        ServiceConfig {
            workers: 8,
            // Hold the whole sweep: each point plans every request and the
            // comparison across connection counts is pure pipeline time.
            queue_capacity: total.max(connections),
            budgets: [
                PlanningBudget::unlimited(),
                PlanningBudget::unlimited(),
                PlanningBudget::unlimited(),
            ],
            ..Default::default()
        },
        ShardedCacheBank::with_shards(8),
        tel.clone(),
        build_optimizer,
    ));
    let server = PlanServer::bind(
        "127.0.0.1:0",
        NetConfig {
            max_connections: connections + 4,
            dispatchers: 4,
            dispatch_capacity: total.max(connections),
            // A tight tick keeps the event loop off the latency critical
            // path; the default 1 ms tick is tuned for idle efficiency,
            // not benchmarking.
            poll_interval: Duration::from_micros(100),
            ..NetConfig::default()
        },
        service.clone(),
        tel.clone(),
    )
    .expect("net bench: bind");
    let addr = server.local_addr();

    // Every thread warms up (TCP connect + first-plan lazy inits) before
    // the barrier; the wall clock starts when all are ready to send.
    let barrier = Arc::new(Barrier::new(connections + 1));
    let handles: Vec<_> = (0..connections)
        .map(|conn| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr, ClientConfig::default())
                    .expect("net bench: client connect");
                let queries = query_mix();
                let warm = client
                    .plan_with(&queries[0], Priority::Standard, conn as u32, 0)
                    .expect("net bench: warm-up reply");
                assert!(!warm.plan_json.trim().is_empty(), "warm-up reply carried no plan");
                barrier.wait();
                let mut latencies_us = Vec::with_capacity(per_conn);
                let mut shed = 0u64;
                for i in 0..per_conn {
                    let query = &queries[i % queries.len()];
                    let priority = Priority::ALL[i % Priority::ALL.len()];
                    let sent = Instant::now();
                    let reply = client
                        .plan_with(query, priority, conn as u32, 0)
                        .expect("net bench: reply");
                    latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                    assert!(reply.plan.is_some(), "net bench: reply without a plan");
                    if reply.shed {
                        shed += 1;
                    }
                }
                (latencies_us, shed)
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(total);
    let mut shed = 0u64;
    for handle in handles {
        let (lat, s) = handle.join().expect("net bench: client thread");
        latencies_us.extend(lat);
        shed += s;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    server.shutdown();
    drop(service);
    let snap = tel.snapshot().expect("enabled");

    NetPoint {
        connections,
        requests: total,
        wall_ms,
        requests_per_sec: total as f64 / (wall_ms / 1e3).max(1e-9),
        p50_latency_us: percentile(&latencies_us, 50.0),
        p99_latency_us: percentile(&latencies_us, 99.0),
        shed,
        client_retries: snap.get(Counter::NetClientRetries),
    }
}

/// Measure the wire-throughput series (see [`NetSeries`]).
pub fn measure(quick: bool) -> NetSeries {
    let per_conn = if quick { 16 } else { 64 };
    let points: Vec<NetPoint> =
        [1usize, 4, 8].iter().map(|&c| run_point(c, per_conn)).collect();
    let peak = points.last().map_or(0.0, |p| p.requests_per_sec);
    NetSeries {
        workload: format!(
            "TPC-H Q3/Q12/Q2 mix over RQNW v1 frames, closed-loop clients, \
             8 planning workers, per-connection tenant namespaces"
        ),
        workers: 8,
        requests_per_connection: per_conn,
        points,
        peak_requests_per_sec: peak,
    }
}

/// The slowest in-process configuration — the reference the wire series
/// must stay within ×`margin` of (`repro --bench-json` passes 0.8).
pub fn in_process_floor(series: &crate::throughput::ThroughputSeries) -> f64 {
    series.points.iter().map(|p| p.plans_per_sec).fold(f64::INFINITY, f64::min)
}

/// Render the series as a printable [`crate::Table`].
pub fn table(series: &NetSeries) -> crate::Table {
    let mut t = crate::Table::new(
        format!("Wire front end — {}", series.workload),
        &["connections", "requests", "wall (ms)", "req/s", "p50 e2e (us)", "p99 e2e (us)"],
    );
    for p in &series.points {
        t.row(vec![
            (p.connections as u64).into(),
            (p.requests as u64).into(),
            p.wall_ms.into(),
            p.requests_per_sec.into(),
            p.p50_latency_us.into(),
            p.p99_latency_us.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_series_sweeps_connections_and_answers_every_request() {
        let _serial = crate::timing_lock();
        let series = measure(true);
        assert_eq!(series.points.len(), 3, "{series:?}");
        assert_eq!(
            series.points.iter().map(|p| p.connections).collect::<Vec<_>>(),
            vec![1, 4, 8]
        );
        for p in &series.points {
            assert_eq!(p.requests, p.connections * series.requests_per_connection);
            assert!(p.requests_per_sec > 0.0, "{p:?}");
            assert!(
                p.p99_latency_us >= p.p50_latency_us,
                "percentiles out of order: {p:?}"
            );
            assert_eq!(p.shed, 0, "a fully-provisioned sweep shed requests: {p:?}");
        }
        assert_eq!(series.peak_requests_per_sec, series.points[2].requests_per_sec);
    }
}
