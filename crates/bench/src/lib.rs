//! # raqo-bench
//!
//! The benchmark harness that regenerates **every figure** of the paper's
//! evaluation. Each `experiments::figNN` module computes the figure's data
//! series and prints them in the paper's terms; the `repro` binary drives
//! them from the command line, and the Criterion benches under `benches/`
//! time the planner-facing ones.
//!
//! Absolute numbers come from the simulator substrate and this machine —
//! the *shapes* (who wins, where crossovers fall, relative overheads) are
//! the reproduction targets. See `EXPERIMENTS.md` for paper-vs-measured.

pub mod experiments;
pub mod report;
pub mod speedup;

pub use report::{Cell, Table};
