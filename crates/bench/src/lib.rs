//! # raqo-bench
//!
//! The benchmark harness that regenerates **every figure** of the paper's
//! evaluation. Each `experiments::figNN` module computes the figure's data
//! series and prints them in the paper's terms; the `repro` binary drives
//! them from the command line, and the Criterion benches under `benches/`
//! time the planner-facing ones.
//!
//! Absolute numbers come from the simulator substrate and this machine —
//! the *shapes* (who wins, where crossovers fall, relative overheads) are
//! the reproduction targets. See `EXPERIMENTS.md` for paper-vs-measured.

pub mod experiments;
pub mod net_bench;
pub mod report;
pub mod speedup;
pub mod throughput;

pub use report::{Cell, Table};

/// Serializes wall-clock-ratio tests: `cargo test` runs tests on parallel
/// threads, and a concurrently running `Parallelism::Auto` measurement can
/// starve another test's timing loop enough to flip its ratio assertion.
/// Tests that assert relative timings grab this lock first.
#[cfg(test)]
pub(crate) fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
