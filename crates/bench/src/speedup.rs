//! The joint-planning hot-path benchmark behind `BENCH_planner.json`.
//!
//! A Fig. 15(b)-style workload — a 100-table random join planned by the
//! fast randomized planner with exhaustive per-operator resource planning
//! over a 10 000-point cluster grid — run in three modes:
//!
//! 1. `sequential` — `Parallelism::Off`, no memoization: the seed
//!    code path, whose plans, costs, and iteration counts the other two
//!    modes must reproduce exactly;
//! 2. `memoized` — `Parallelism::Off` + sub-plan cost memoization
//!    ([`raqo_planner::RandomizedConfig::memoize`]): mutation rounds
//!    re-cost only the joins a mutation changed;
//! 3. `parallel+memoized` — `Parallelism::Auto` on top: the brute-force
//!    grid scan also splits across worker threads (bit-identical merge).
//!
//! `repro --bench-json` writes the report as JSON; the headline number is
//! `speedup` (sequential wall-clock over `parallel+memoized` wall-clock).

use crate::experiments::timed;
use crate::Table;
use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::{Catalog, JoinGraph, QuerySpec, RandomSchema, RandomSchemaConfig, TableStats};
use raqo_core::{DegradationRung, Parallelism, PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::JoinCostModel;
use raqo_planner::RandomizedConfig;
use raqo_resource::ClusterConditions;
use serde::Serialize;

/// One benchmark mode's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ModeResult {
    pub name: String,
    pub parallelism: String,
    pub memoize: bool,
    pub wall_ms: f64,
    /// Total plan cost under the planning objective (determinism witness).
    pub plan_cost: f64,
    pub plan_cost_calls: u64,
    pub resource_iterations: u64,
    pub memo_hits: u64,
}

/// The full report serialized to `BENCH_planner.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PlannerBenchReport {
    pub workload: String,
    pub tables: usize,
    pub grid_points: u64,
    pub worker_threads: usize,
    pub runs: Vec<ModeResult>,
    /// sequential wall-clock / parallel+memoized wall-clock.
    pub speedup: f64,
    /// All modes produced the same plan tree and cost (bitwise).
    pub plans_identical: bool,
    /// The Selinger DP run through the same ladder of optimizations.
    pub selinger: SelingerSeries,
    /// Mid-size (past the exhaustive-DP threshold) chain+star queries
    /// planned through the optimizer's IDP bridge.
    pub idp: IdpSeries,
    /// The raw §VI cost kernel: scalar fold vs the dispatching batch entry
    /// point (explicit AVX2 under `--features simd`, else the same scalar).
    pub cost_kernel: CostKernelSeries,
    /// Multi-start hill climbing: per-seed climbs vs the lock-step batched
    /// climber that fuses each round's neighborhood into one batch call.
    pub climb: ClimbSeries,
    /// The concurrent planning service under a bursty open-loop workload:
    /// single-lock vs sharded cache banks at 1/4/8 workers.
    pub throughput: crate::throughput::ThroughputSeries,
    /// The same service behind the `raqo-net` wire front end, driven by
    /// closed-loop clients at 1/4/8 connections; gated against the
    /// in-process floor ×0.8 by `repro --bench-json`.
    pub net: crate::net_bench::NetSeries,
    /// What the trace pipeline costs: the same ticketed workload with
    /// telemetry disabled, head-sampled at 1%, and fully recording.
    pub telemetry: TelemetryOverheadSeries,
    /// The Cascades memo planner against left-deep Selinger on star,
    /// clique, and chain shapes; the star point must be bushy and
    /// strictly cheaper (gated by `repro --smoke`).
    pub cascades: CascadesSeries,
}

/// One telemetry mode's measurements over the ticketed workload.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryModeResult {
    /// `disabled`, `sampled_1pct`, or `full`.
    pub name: String,
    pub wall_ms: f64,
    /// Determinism witness: the workload's final plan cost.
    pub plan_cost: f64,
    /// Traces the pipeline retained (0 when disabled; ~1% sampled; all
    /// when full).
    pub traces_retained: u64,
    /// Spans held in the completed ring afterwards.
    pub spans_retained: u64,
}

/// Trace-pipeline overhead: a fixed ticketed planning workload (every
/// `optimize` wrapped in a `start_trace`/`enter`/`finish` ticket, the way
/// [`raqo_core::PlanningService`] runs it) measured with telemetry
/// disabled, head-sampled at 1%, and fully recording. The disabled run is
/// the baseline; the overhead percentages are what an operator pays for
/// sampling and for full capture.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryOverheadSeries {
    pub tables: usize,
    /// Planning tickets per mode.
    pub tickets: u32,
    /// `disabled`, `sampled_1pct`, `full`.
    pub runs: Vec<TelemetryModeResult>,
    /// `(sampled - disabled) / disabled`, in percent.
    pub sampled_overhead_pct: f64,
    /// `(full - disabled) / disabled`, in percent.
    pub full_overhead_pct: f64,
    /// Every mode produced bitwise the same plan cost: instrumentation
    /// never steers planning.
    pub plans_identical: bool,
}

/// Measure the trace-pipeline overhead series (see
/// [`TelemetryOverheadSeries`]).
pub fn measure_telemetry(quick: bool) -> TelemetryOverheadSeries {
    use raqo_core::Telemetry;
    use raqo_telemetry::TraceConfig;

    let tables = if quick { 8 } else { 12 };
    let tickets: u32 = if quick { 20 } else { 100 };
    let cluster = ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0);
    let schema = RandomSchemaConfig::with_tables(tables, 5).generate();
    let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, tables, 3);
    let model = JoinCostModel::trained_hive();

    let modes: [(&str, Telemetry); 3] = [
        ("disabled", Telemetry::disabled()),
        (
            "sampled_1pct",
            Telemetry::with_trace_config(TraceConfig {
                head_rate: 0.01,
                seed: 17,
                ..TraceConfig::default()
            }),
        ),
        ("full", Telemetry::enabled()),
    ];

    let mut runs = Vec::new();
    let mut costs: Vec<f64> = Vec::new();
    for (name, tel) in modes {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            cluster,
            PlannerKind::Selinger,
            ResourceStrategy::HillClimb,
        );
        opt.set_telemetry(tel.clone());
        // Warm-up outside the timed window (first run pays lazy inits).
        opt.optimize(&query).expect("warm-up plan");
        let (last, wall_ms) = timed(|| {
            let mut last = None;
            for _ in 0..tickets {
                let trace = tel.start_trace("bench.ticket");
                let _in_trace = trace.enter();
                last = Some(opt.optimize(&query).expect("plan"));
                drop(_in_trace);
                trace.finish();
            }
            last.expect("at least one ticket")
        });
        let retained = tel
            .snapshot()
            .map_or(0, |s| s.get(raqo_telemetry::Counter::TracesRetained));
        runs.push(TelemetryModeResult {
            name: name.into(),
            wall_ms,
            plan_cost: last.query.cost,
            traces_retained: retained,
            spans_retained: tel.completed_span_count() as u64,
        });
        costs.push(last.query.cost);
    }

    let base = runs[0].wall_ms.max(1e-9);
    TelemetryOverheadSeries {
        tables,
        tickets,
        sampled_overhead_pct: 100.0 * (runs[1].wall_ms - base) / base,
        full_overhead_pct: 100.0 * (runs[2].wall_ms - base) / base,
        plans_identical: costs.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()),
        runs,
    }
}

/// Scalar fold vs dispatching batch kernel over the full resource grid.
/// Both paths are bit-identical by contract; `kernel` records which one the
/// dispatcher actually ran, so a report from a non-SIMD build is honest
/// about measuring scalar-vs-scalar.
#[derive(Debug, Clone, Serialize)]
pub struct CostKernelSeries {
    /// `"avx2"` when `--features simd` compiled the explicit kernel in and
    /// the CPU reports AVX2; `"scalar"` otherwise.
    pub kernel: String,
    /// Grid points evaluated per batch call.
    pub configs: usize,
    /// Batch calls per timed measurement.
    pub repeats: u32,
    pub scalar_ms: f64,
    pub dispatch_ms: f64,
    /// `scalar_ms / dispatch_ms` — ~1.0 when the build has no SIMD kernel.
    pub speedup: f64,
    /// Both paths produced bitwise-identical costs over the whole grid.
    pub bitwise_identical: bool,
}

/// Per-seed multi-start hill climbing vs the batched lock-step climber,
/// run end to end through the optimizer (Selinger join ordering, hill-climb
/// resource planning) so the batch seam is the one production uses.
#[derive(Debug, Clone, Serialize)]
pub struct ClimbSeries {
    pub tables: usize,
    pub grid_points: u64,
    /// `hill_climb_per_seed` then `hill_climb_batched`.
    pub runs: Vec<ModeResult>,
    /// per-seed wall-clock / batched wall-clock.
    pub speedup: f64,
    /// Both modes produced the same joint plan (tree + cost bits) and the
    /// same planning statistics.
    pub outcomes_identical: bool,
}

/// Measure the cost-kernel series (see [`CostKernelSeries`]).
pub fn measure_cost_kernel(quick: bool) -> CostKernelSeries {
    use raqo_sim::engine::JoinImpl;
    use std::hint::black_box;

    let cluster = ClusterConditions::two_dim(1.0..=1000.0, 1.0..=10.0, 1.0, 1.0);
    let configs: Vec<raqo_resource::ResourceConfig> = cluster.grid().collect();
    let model = JoinCostModel::trained_hive();
    let repeats: u32 = if quick { 50 } else { 500 };

    let mut fast = vec![0.0; configs.len()];
    let mut scalar = vec![0.0; configs.len()];
    model.join_cost_batch(JoinImpl::SortMerge, 4.0, &configs, &mut fast);
    model.join_cost_batch_scalar(JoinImpl::SortMerge, 4.0, &configs, &mut scalar);
    let bitwise_identical =
        fast.iter().zip(&scalar).all(|(f, s)| f.to_bits() == s.to_bits());

    let (_, scalar_ms) = timed(|| {
        for _ in 0..repeats {
            model.join_cost_batch_scalar(
                JoinImpl::SortMerge,
                4.0,
                black_box(&configs),
                &mut scalar,
            );
            black_box(scalar.last().copied());
        }
    });
    let (_, dispatch_ms) = timed(|| {
        for _ in 0..repeats {
            model.join_cost_batch(JoinImpl::SortMerge, 4.0, black_box(&configs), &mut fast);
            black_box(fast.last().copied());
        }
    });

    CostKernelSeries {
        kernel: if raqo_cost::simd_active() { "avx2".into() } else { "scalar".into() },
        configs: configs.len(),
        repeats,
        scalar_ms,
        dispatch_ms,
        speedup: scalar_ms / dispatch_ms.max(1e-9),
        bitwise_identical,
    }
}

/// Measure the hill-climb series (see [`ClimbSeries`]).
pub fn measure_climb(quick: bool) -> ClimbSeries {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = if quick {
        ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0)
    } else {
        ClusterConditions::two_dim(1.0..=1000.0, 1.0..=10.0, 1.0, 1.0)
    };
    let query = QuerySpec::tpch_all(&schema);

    let modes: [(&str, bool); 2] =
        [("hill_climb_per_seed", false), ("hill_climb_batched", true)];
    let mut runs = Vec::new();
    let mut plans: Vec<(raqo_planner::PlanTree, f64)> = Vec::new();
    let mut stats = Vec::new();
    for (name, batch) in modes {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            cluster,
            PlannerKind::Selinger,
            ResourceStrategy::HillClimb,
        )
        .with_parallelism(Parallelism::Threads(2))
        .with_batch_kernel(batch);
        let (plan, wall_ms) = timed(|| opt.optimize(&query).expect("plan"));
        runs.push(ModeResult {
            name: name.into(),
            parallelism: mode_name(Parallelism::Threads(2)),
            memoize: false,
            wall_ms,
            plan_cost: plan.query.cost,
            plan_cost_calls: plan.stats.plan_cost_calls,
            resource_iterations: plan.stats.resource_iterations,
            memo_hits: plan.stats.memo_hits,
        });
        plans.push((plan.query.tree.clone(), plan.query.cost));
        stats.push(plan.stats);
    }

    let outcomes_identical = plans[0].0 == plans[1].0
        && plans[0].1.to_bits() == plans[1].1.to_bits()
        && stats[0] == stats[1];
    ClimbSeries {
        tables: query.relations.len(),
        grid_points: cluster.grid_size(),
        runs: runs.clone(),
        speedup: runs[0].wall_ms / runs[1].wall_ms.max(1e-9),
        outcomes_identical,
    }
}

/// The Selinger half of the report: the full System-R DP with exhaustive
/// per-operator resource planning, run through the cumulative optimization
/// ladder of this PR — batched cost kernel, parallel DP levels, cross-run
/// memoization:
///
/// 1. `selinger_scalar` — `Parallelism::Off`, scalar kernel: the seed path;
/// 2. `selinger_batched` — the §VI polynomial evaluated over contiguous
///    grid slices, branch-free, same winners bit-for-bit;
/// 3. `selinger_parallel` — DP levels fanned over worker threads with a
///    deterministic merge, still bit-identical;
/// 4. `selinger_parallel_memoized` — a *warm* re-optimization replaying
///    `(left, right, context)` sub-plan decisions from the cross-run memo,
///    the Fig. 15(b) recurring-conditions pattern.
#[derive(Debug, Clone, Serialize)]
pub struct SelingerSeries {
    pub tables: usize,
    pub grid_points: u64,
    pub runs: Vec<ModeResult>,
    /// scalar-sequential wall-clock / batched+parallel+memoized wall-clock.
    pub speedup: f64,
    /// Scalar, batched, and parallel plans are bitwise identical; the warm
    /// memoized run has the same tree with cost equal to fp noise (the memo
    /// replays DP-time IO accumulation order).
    pub plans_identical: bool,
}

/// One point of the mid-size planning series: a chain or star query whose
/// relation count exceeds the exhaustive-DP threshold, planned end to end
/// (join order + per-join resources) through the IDP bridge.
#[derive(Debug, Clone, Serialize)]
pub struct IdpPoint {
    pub shape: String,
    pub tables: usize,
    pub wall_ms: f64,
    pub plan_cost: f64,
    pub joins: usize,
    /// The degradation report named the IDP bridge — the query never fell
    /// through to the randomized rung.
    pub bridged: bool,
}

/// The 24/32/48-relation chain+star series behind `repro --bench-json`:
/// what planning past the old 20-relation cliff costs, per query shape.
#[derive(Debug, Clone, Serialize)]
pub struct IdpSeries {
    pub block_size: usize,
    pub dp_threshold: usize,
    pub points: Vec<IdpPoint>,
    /// Every point was bridged (none degraded to the randomized planner).
    pub all_bridged: bool,
}

/// Measure the IDP-bridged chain+star series (see [`IdpSeries`]).
pub fn measure_idp(quick: bool) -> IdpSeries {
    let sizes: &[usize] = if quick { &[24, 32] } else { &[24, 32, 48] };
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::paper_default();
    let mut points = Vec::new();
    for &tables in sizes {
        let shapes = [
            ("chain", RandomSchema::chain(tables, tables as u64)),
            ("star", RandomSchema::star(tables, tables as u64)),
        ];
        for (shape, schema) in shapes {
            let rels: Vec<_> = schema.catalog.table_ids().collect();
            let query = QuerySpec::new(format!("{shape}_{tables}"), rels);
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::Selinger,
                ResourceStrategy::HillClimb,
            );
            let (plan, wall_ms) = timed(|| opt.optimize(&query).expect("bridged plan"));
            points.push(IdpPoint {
                shape: shape.into(),
                tables,
                wall_ms,
                plan_cost: plan.query.cost,
                joins: plan.query.joins.len(),
                bridged: plan
                    .degradation
                    .is_some_and(|d| d.rung == DegradationRung::IdpBridge),
            });
        }
    }
    let all_bridged = points.iter().all(|p| p.bridged);
    IdpSeries {
        block_size: raqo_planner::idp::DEFAULT_BLOCK_SIZE,
        dp_threshold: raqo_planner::selinger::DEFAULT_DP_THRESHOLD,
        points,
        all_bridged,
    }
}

/// One shape's Selinger-vs-Cascades comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CascadesPoint {
    pub shape: String,
    pub tables: usize,
    pub selinger_wall_ms: f64,
    pub cascades_wall_ms: f64,
    pub selinger_cost: f64,
    pub cascades_cost: f64,
    /// The Cascades winner is a bushy tree (not left-deep).
    pub bushy: bool,
    /// cascades_cost ≤ selinger_cost within fp tolerance — the memo
    /// search covers every left-deep order Selinger enumerates.
    pub no_worse: bool,
}

/// Bushy-vs-left-deep series behind `repro --bench-json`: the Cascades
/// memo planner against Selinger DP on the shapes where plan-space
/// coverage differs — a wide fact/dim star (bushy dim×dim cross products
/// halve the fact-sized probes), a fully cyclic clique, and a chain.
#[derive(Debug, Clone, Serialize)]
pub struct CascadesSeries {
    pub points: Vec<CascadesPoint>,
    /// The star point is bushy AND strictly cheaper than the best
    /// left-deep plan.
    pub star_bushy_and_cheaper: bool,
    /// The crafted-clique point is bushy AND strictly cheaper.
    pub clique_bushy_and_cheaper: bool,
    /// Every point has cascades ≤ selinger.
    pub all_no_worse: bool,
}

/// The crafted fact/dim star of the smoke gate: a wide 2M-row fact table
/// and small dimensions, where probing the fact with dim×dim cross
/// products halves the number of fact-sized joins — so the optimal plan
/// is bushy and left-deep planners provably lose.
pub fn crafted_star(dims: usize) -> (Catalog, JoinGraph) {
    let mut catalog = Catalog::new();
    let fact = catalog.add_stats_only("fact", TableStats::new(2_000_000.0, 400.0));
    let mut graph = JoinGraph::new();
    for i in 0..dims {
        let rows = 200.0 + 100.0 * i as f64;
        let d = catalog.add_stats_only(format!("dim{i}"), TableStats::new(rows, 60.0));
        graph.add_edge(fact, d, 1.0 / rows);
    }
    (catalog, graph)
}

/// A crafted *clique*: two 2M-row fact tables, each with its own small
/// FK dimensions, and *weak* (0.9) predicates closing every remaining
/// pair — the graph is maximally cyclic, yet the strong edges form two
/// star clusters. The bushy winner reduces each fact against tiny
/// dimension cross products independently before the fact-to-fact join;
/// a left-deep order must carry a fact-sized intermediate through every
/// step after touching its first fact.
pub fn crafted_clique(dims_per_fact: usize) -> (Catalog, JoinGraph) {
    let mut catalog = Catalog::new();
    let f1 = catalog.add_stats_only("fact1", TableStats::new(2_000_000.0, 400.0));
    let f2 = catalog.add_stats_only("fact2", TableStats::new(2_000_000.0, 400.0));
    let mut graph = JoinGraph::new();
    graph.add_edge(f1, f2, 1.0 / 2_000_000.0);
    let mut all = vec![f1, f2];
    for (fact, side) in [(f1, "a"), (f2, "b")] {
        for i in 0..dims_per_fact {
            let rows = 200.0 + 100.0 * i as f64;
            let d = catalog.add_stats_only(format!("dim_{side}{i}"), TableStats::new(rows, 60.0));
            graph.add_edge(fact, d, 1.0 / rows);
            all.push(d);
        }
    }
    // Close the clique: every pair not already joined above gets a weak
    // predicate, so each subset of relations is cyclic and connected.
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            if !graph.edges().iter().any(|e| {
                (e.a == all[i] && e.b == all[j]) || (e.a == all[j] && e.b == all[i])
            }) {
                graph.add_edge(all[i], all[j], 0.9);
            }
        }
    }
    (catalog, graph)
}

/// Measure the Cascades-vs-Selinger series (see [`CascadesSeries`]).
///
/// Costed under the simulation oracle (not the trained model): the
/// trained model floors per-join time on the tiny crafted dimensions, so
/// every join order would tie and the bushy-vs-left-deep gap vanish.
pub fn measure_cascades(quick: bool) -> CascadesSeries {
    let model = raqo_cost::SimOracleCost::hive();
    let cluster = ClusterConditions::paper_default();
    let dims = if quick { 8 } else { 10 };
    let star = crafted_star(dims);
    let shapes: Vec<(&str, Catalog, JoinGraph)> = vec![
        ("star", star.0, star.1),
        {
            let c = crafted_clique(3);
            ("clique", c.0, c.1)
        },
        {
            let s = RandomSchema::clique(8, 7);
            ("clique_random", s.catalog, s.graph)
        },
        {
            let s = RandomSchema::chain(10, 3);
            ("chain", s.catalog, s.graph)
        },
    ];
    let mut points = Vec::new();
    for (shape, catalog, graph) in &shapes {
        let rels: Vec<_> = catalog.table_ids().collect();
        let tables = rels.len();
        let query = QuerySpec::new(format!("{shape}_{tables}"), rels);
        let run = |kind: PlannerKind| {
            let mut opt = RaqoOptimizer::new(
                catalog,
                graph,
                &model,
                cluster,
                kind,
                ResourceStrategy::HillClimb,
            );
            timed(|| opt.optimize(&query).expect("plan"))
        };
        let (sel, selinger_wall_ms) = run(PlannerKind::Selinger);
        let (cas, cascades_wall_ms) = run(PlannerKind::cascades());
        points.push(CascadesPoint {
            shape: (*shape).into(),
            tables,
            selinger_wall_ms,
            cascades_wall_ms,
            selinger_cost: sel.query.cost,
            cascades_cost: cas.query.cost,
            bushy: !cas.query.tree.is_left_deep(),
            no_worse: cas.query.cost <= sel.query.cost * (1.0 + 1e-9),
        });
    }
    let bushy_strict = |shape: &str| {
        points
            .iter()
            .any(|p| p.shape == shape && p.bushy && p.cascades_cost < p.selinger_cost)
    };
    let star_bushy_and_cheaper = bushy_strict("star");
    let clique_bushy_and_cheaper = bushy_strict("clique");
    let all_no_worse = points.iter().all(|p| p.no_worse);
    CascadesSeries {
        points,
        star_bushy_and_cheaper,
        clique_bushy_and_cheaper,
        all_no_worse,
    }
}

fn mode_name(parallelism: Parallelism) -> String {
    match parallelism {
        Parallelism::Off => "off".into(),
        Parallelism::Threads(n) => format!("threads({n})"),
        Parallelism::Auto => "auto".into(),
    }
}

/// Run the three modes on the Fig. 15(b)-style workload.
pub fn measure(quick: bool) -> PlannerBenchReport {
    let tables = if quick { 24 } else { 100 };
    // ≥10K grid points in the full run: 1..=1000 containers × 1..=10 GB.
    let cluster = if quick {
        ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0)
    } else {
        ClusterConditions::two_dim(1.0..=1000.0, 1.0..=10.0, 1.0, 1.0)
    };
    let schema = RandomSchemaConfig::with_tables(tables, 5).generate();
    let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, tables, 3);
    let model = JoinCostModel::trained_hive();

    let config = |memoize: bool| RandomizedConfig {
        restarts: 1,
        rounds_per_join: 2,
        epsilon: 0.05,
        seed: 17,
        memoize,
    };

    let modes: [(&str, Parallelism, bool); 3] = [
        ("sequential", Parallelism::Off, false),
        ("memoized", Parallelism::Off, true),
        ("parallel+memoized", Parallelism::Auto, true),
    ];

    let mut runs = Vec::new();
    let mut plans: Vec<(raqo_planner::PlanTree, f64)> = Vec::new();
    for (name, parallelism, memoize) in modes {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            cluster,
            PlannerKind::FastRandomized(config(memoize)),
            ResourceStrategy::BruteForce,
        )
        .with_parallelism(parallelism);
        let (plan, wall_ms) = timed(|| opt.optimize(&query).expect("plan"));
        runs.push(ModeResult {
            name: name.into(),
            parallelism: mode_name(parallelism),
            memoize,
            wall_ms,
            plan_cost: plan.query.cost,
            plan_cost_calls: plan.stats.plan_cost_calls,
            resource_iterations: plan.stats.resource_iterations,
            memo_hits: plan.stats.memo_hits,
        });
        plans.push((plan.query.tree.clone(), plan.query.cost));
    }

    let plans_identical = plans
        .windows(2)
        .all(|w| w[0].0 == w[1].0 && w[0].1.to_bits() == w[1].1.to_bits());
    let speedup = runs[0].wall_ms / runs[2].wall_ms.max(1e-9);

    PlannerBenchReport {
        workload: format!(
            "{tables}-table random connected join, fast randomized planner, \
             brute-force resource planning over {} grid points",
            cluster.grid_size()
        ),
        tables,
        grid_points: cluster.grid_size(),
        worker_threads: Parallelism::Auto.workers(),
        runs,
        speedup,
        plans_identical,
        selinger: measure_selinger(quick),
        idp: measure_idp(quick),
        cost_kernel: measure_cost_kernel(quick),
        climb: measure_climb(quick),
        throughput: crate::throughput::measure(quick),
        net: crate::net_bench::measure(quick),
        telemetry: measure_telemetry(quick),
        cascades: measure_cascades(quick),
    }
}

/// Run the Selinger optimization ladder (see [`SelingerSeries`]).
pub fn measure_selinger(quick: bool) -> SelingerSeries {
    // ≥10 relations and ≥10K grid points in the full run: the DP costs
    // every connected (sub-plan, relation) extension against the whole
    // grid, so this is the seed's slowest joint-planning path.
    let tables = if quick { 8 } else { 10 };
    let cluster = if quick {
        ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0)
    } else {
        ClusterConditions::two_dim(1.0..=1000.0, 1.0..=10.0, 1.0, 1.0)
    };
    let schema = RandomSchemaConfig::with_tables(tables, 5).generate();
    let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, tables, 3);
    let model = JoinCostModel::trained_hive();

    // (name, planner, parallelism, batch kernel, warm runs before timing)
    let modes: [(&str, PlannerKind, Parallelism, bool, usize); 4] = [
        ("selinger_scalar", PlannerKind::Selinger, Parallelism::Off, false, 0),
        ("selinger_batched", PlannerKind::Selinger, Parallelism::Off, true, 0),
        ("selinger_parallel", PlannerKind::Selinger, Parallelism::Auto, true, 0),
        // Timed *warm*: the memo pays off on re-optimization under
        // recurring conditions (Fig. 15(b) cluster sweeps).
        ("selinger_parallel_memoized", PlannerKind::SelingerMemoized, Parallelism::Auto, true, 1),
    ];

    let mut runs = Vec::new();
    let mut plans: Vec<(raqo_planner::PlanTree, f64)> = Vec::new();
    for (name, planner, parallelism, batch, warm_runs) in modes {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            cluster,
            planner,
            ResourceStrategy::BruteForce,
        )
        .with_parallelism(parallelism)
        .with_batch_kernel(batch);
        for _ in 0..warm_runs {
            opt.optimize(&query).expect("warm-up plan");
        }
        let (plan, wall_ms) = timed(|| opt.optimize(&query).expect("plan"));
        runs.push(ModeResult {
            name: name.into(),
            parallelism: mode_name(parallelism),
            memoize: warm_runs > 0,
            wall_ms,
            plan_cost: plan.query.cost,
            plan_cost_calls: plan.stats.plan_cost_calls,
            resource_iterations: plan.stats.resource_iterations,
            memo_hits: plan.stats.memo_hits,
        });
        plans.push((plan.query.tree.clone(), plan.query.cost));
    }

    // Scalar, batched, and parallel DP are bit-identical; the memoized run
    // replays DP-time IOs, so its cost agrees only up to fp noise.
    let exact = plans[..3]
        .windows(2)
        .all(|w| w[0].0 == w[1].0 && w[0].1.to_bits() == w[1].1.to_bits());
    let warm_matches = plans[3].0 == plans[0].0
        && (plans[3].1 - plans[0].1).abs() <= 1e-9 * plans[0].1.abs();
    let speedup = runs[0].wall_ms / runs[3].wall_ms.max(1e-9);
    SelingerSeries {
        tables,
        grid_points: cluster.grid_size(),
        runs,
        speedup,
        plans_identical: exact && warm_matches,
    }
}

/// Render the report as a printable [`Table`].
pub fn table(report: &PlannerBenchReport) -> Table {
    let mut t = Table::new(
        format!("Joint-planning hot path — {}", report.workload),
        &[
            "mode",
            "parallelism",
            "memoize",
            "wall (ms)",
            "#getPlanCost calls",
            "#resource iterations",
            "#memo hits",
        ],
    );
    for r in report.runs.iter().chain(&report.selinger.runs).chain(&report.climb.runs) {
        t.row(vec![
            r.name.clone().into(),
            r.parallelism.clone().into(),
            if r.memoize { "yes" } else { "no" }.into(),
            r.wall_ms.into(),
            r.plan_cost_calls.into(),
            r.resource_iterations.into(),
            r.memo_hits.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_modes_reproduce_the_sequential_plan_and_win_wall_clock() {
        let _serial = crate::timing_lock();
        let report = measure(true);
        assert!(report.plans_identical, "modes disagree: {report:?}");
        let seq = &report.runs[0];
        let memo = &report.runs[1];
        let both = &report.runs[2];
        assert_eq!(seq.memo_hits, 0);
        assert!(memo.memo_hits > 0);
        // Memoization shows up as skipped getPlanCost calls, 1:1.
        assert_eq!(memo.plan_cost_calls + memo.memo_hits, seq.plan_cost_calls);
        assert_eq!(both.plan_cost_calls, memo.plan_cost_calls);
        // The acceptance bar: ≥2× on the quick workload already (the full
        // workload's larger grid only widens the gap).
        assert!(
            report.speedup >= 2.0,
            "speedup {:.2}x below the 2x bar: {report:?}",
            report.speedup
        );
    }

    #[test]
    fn idp_series_bridges_every_mid_size_point() {
        let _serial = crate::timing_lock();
        let series = measure_idp(true);
        assert!(series.all_bridged, "a mid-size point fell past the bridge: {series:?}");
        for p in &series.points {
            assert_eq!(p.joins, p.tables - 1, "{series:?}");
            assert!(p.plan_cost.is_finite() && p.plan_cost > 0.0, "{series:?}");
        }
    }

    #[test]
    fn cost_kernel_paths_agree_bitwise() {
        let _serial = crate::timing_lock();
        let series = measure_cost_kernel(true);
        assert!(series.bitwise_identical, "kernel paths diverge: {series:?}");
        assert_eq!(series.configs, 10_000);
        assert!(series.scalar_ms > 0.0 && series.dispatch_ms > 0.0, "{series:?}");
        // The kernel label must match what the build actually compiled in.
        assert_eq!(series.kernel == "avx2", raqo_cost::simd_active(), "{series:?}");
    }

    #[test]
    fn batched_climb_reproduces_the_per_seed_outcome() {
        let _serial = crate::timing_lock();
        let series = measure_climb(true);
        assert!(series.outcomes_identical, "climb modes disagree: {series:?}");
        let (per_seed, batched) = (&series.runs[0], &series.runs[1]);
        assert_eq!(per_seed.plan_cost.to_bits(), batched.plan_cost.to_bits(), "{series:?}");
        assert_eq!(per_seed.plan_cost_calls, batched.plan_cost_calls, "{series:?}");
        assert_eq!(per_seed.resource_iterations, batched.resource_iterations, "{series:?}");
    }

    #[test]
    fn cascades_series_star_is_bushy_and_strictly_cheaper() {
        let _serial = crate::timing_lock();
        let series = measure_cascades(true);
        assert!(
            series.star_bushy_and_cheaper,
            "star point must be bushy and beat left-deep: {series:?}"
        );
        assert!(
            series.clique_bushy_and_cheaper,
            "crafted clique point must be bushy and beat left-deep: {series:?}"
        );
        assert!(series.all_no_worse, "cascades lost to selinger: {series:?}");
        for p in &series.points {
            assert!(p.cascades_cost.is_finite() && p.cascades_cost > 0.0, "{series:?}");
        }
    }

    #[test]
    fn selinger_ladder_reproduces_the_scalar_plan_and_wins_wall_clock() {
        let _serial = crate::timing_lock();
        let series = measure_selinger(true);
        assert!(series.plans_identical, "modes disagree: {series:?}");
        let scalar = &series.runs[0];
        let warm = &series.runs[3];
        assert_eq!(scalar.memo_hits, 0);
        assert!(warm.memo_hits > 0, "warm memoized run never hit: {series:?}");
        assert!(warm.plan_cost_calls < scalar.plan_cost_calls);
        assert!(
            series.speedup >= 2.0,
            "Selinger speedup {:.2}x below the 2x bar: {series:?}",
            series.speedup
        );
    }
}
