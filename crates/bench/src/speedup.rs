//! The joint-planning hot-path benchmark behind `BENCH_planner.json`.
//!
//! A Fig. 15(b)-style workload — a 100-table random join planned by the
//! fast randomized planner with exhaustive per-operator resource planning
//! over a 10 000-point cluster grid — run in three modes:
//!
//! 1. `sequential` — `Parallelism::Off`, no memoization: the seed
//!    code path, whose plans, costs, and iteration counts the other two
//!    modes must reproduce exactly;
//! 2. `memoized` — `Parallelism::Off` + sub-plan cost memoization
//!    ([`raqo_planner::RandomizedConfig::memoize`]): mutation rounds
//!    re-cost only the joins a mutation changed;
//! 3. `parallel+memoized` — `Parallelism::Auto` on top: the brute-force
//!    grid scan also splits across worker threads (bit-identical merge).
//!
//! `repro --bench-json` writes the report as JSON; the headline number is
//! `speedup` (sequential wall-clock over `parallel+memoized` wall-clock).

use crate::experiments::timed;
use crate::Table;
use raqo_catalog::{QuerySpec, RandomSchemaConfig};
use raqo_core::{Parallelism, PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::JoinCostModel;
use raqo_planner::RandomizedConfig;
use raqo_resource::ClusterConditions;
use serde::Serialize;

/// One benchmark mode's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ModeResult {
    pub name: String,
    pub parallelism: String,
    pub memoize: bool,
    pub wall_ms: f64,
    /// Total plan cost under the planning objective (determinism witness).
    pub plan_cost: f64,
    pub plan_cost_calls: u64,
    pub resource_iterations: u64,
    pub memo_hits: u64,
}

/// The full report serialized to `BENCH_planner.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PlannerBenchReport {
    pub workload: String,
    pub tables: usize,
    pub grid_points: u64,
    pub worker_threads: usize,
    pub runs: Vec<ModeResult>,
    /// sequential wall-clock / parallel+memoized wall-clock.
    pub speedup: f64,
    /// All modes produced the same plan tree and cost (bitwise).
    pub plans_identical: bool,
}

fn mode_name(parallelism: Parallelism) -> String {
    match parallelism {
        Parallelism::Off => "off".into(),
        Parallelism::Threads(n) => format!("threads({n})"),
        Parallelism::Auto => "auto".into(),
    }
}

/// Run the three modes on the Fig. 15(b)-style workload.
pub fn measure(quick: bool) -> PlannerBenchReport {
    let tables = if quick { 24 } else { 100 };
    // ≥10K grid points in the full run: 1..=1000 containers × 1..=10 GB.
    let cluster = if quick {
        ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0)
    } else {
        ClusterConditions::two_dim(1.0..=1000.0, 1.0..=10.0, 1.0, 1.0)
    };
    let schema = RandomSchemaConfig::with_tables(tables, 5).generate();
    let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, tables, 3);
    let model = JoinCostModel::trained_hive();

    let config = |memoize: bool| RandomizedConfig {
        restarts: 1,
        rounds_per_join: 2,
        epsilon: 0.05,
        seed: 17,
        memoize,
    };

    let modes: [(&str, Parallelism, bool); 3] = [
        ("sequential", Parallelism::Off, false),
        ("memoized", Parallelism::Off, true),
        ("parallel+memoized", Parallelism::Auto, true),
    ];

    let mut runs = Vec::new();
    let mut plans: Vec<(raqo_planner::PlanTree, f64)> = Vec::new();
    for (name, parallelism, memoize) in modes {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            cluster,
            PlannerKind::FastRandomized(config(memoize)),
            ResourceStrategy::BruteForce,
        )
        .with_parallelism(parallelism);
        let (plan, wall_ms) = timed(|| opt.optimize(&query).expect("plan"));
        runs.push(ModeResult {
            name: name.into(),
            parallelism: mode_name(parallelism),
            memoize,
            wall_ms,
            plan_cost: plan.query.cost,
            plan_cost_calls: plan.stats.plan_cost_calls,
            resource_iterations: plan.stats.resource_iterations,
            memo_hits: plan.stats.memo_hits,
        });
        plans.push((plan.query.tree.clone(), plan.query.cost));
    }

    let plans_identical = plans
        .windows(2)
        .all(|w| w[0].0 == w[1].0 && w[0].1.to_bits() == w[1].1.to_bits());
    let speedup = runs[0].wall_ms / runs[2].wall_ms.max(1e-9);

    PlannerBenchReport {
        workload: format!(
            "{tables}-table random connected join, fast randomized planner, \
             brute-force resource planning over {} grid points",
            cluster.grid_size()
        ),
        tables,
        grid_points: cluster.grid_size(),
        worker_threads: Parallelism::Auto.workers(),
        runs,
        speedup,
        plans_identical,
    }
}

/// Render the report as a printable [`Table`].
pub fn table(report: &PlannerBenchReport) -> Table {
    let mut t = Table::new(
        format!("Joint-planning hot path — {}", report.workload),
        &[
            "mode",
            "parallelism",
            "memoize",
            "wall (ms)",
            "#getPlanCost calls",
            "#resource iterations",
            "#memo hits",
        ],
    );
    for r in &report.runs {
        t.row(vec![
            r.name.clone().into(),
            r.parallelism.clone().into(),
            if r.memoize { "yes" } else { "no" }.into(),
            r.wall_ms.into(),
            r.plan_cost_calls.into(),
            r.resource_iterations.into(),
            r.memo_hits.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_modes_reproduce_the_sequential_plan_and_win_wall_clock() {
        let report = measure(true);
        assert!(report.plans_identical, "modes disagree: {report:?}");
        let seq = &report.runs[0];
        let memo = &report.runs[1];
        let both = &report.runs[2];
        assert_eq!(seq.memo_hits, 0);
        assert!(memo.memo_hits > 0);
        // Memoization shows up as skipped getPlanCost calls, 1:1.
        assert_eq!(memo.plan_cost_calls + memo.memo_hits, seq.plan_cost_calls);
        assert_eq!(both.plan_cost_calls, memo.plan_cost_calls);
        // The acceptance bar: ≥2× on the quick workload already (the full
        // workload's larger grid only widens the gap).
        assert!(
            report.speedup >= 2.0,
            "speedup {:.2}x below the 2x bar: {report:?}",
            report.speedup
        );
    }
}
