//! Concurrent planning throughput: the service-loop benchmark behind the
//! `throughput` series of `BENCH_planner.json`.
//!
//! A bursty open-loop workload — Poisson arrivals across 16 tenant
//! namespaces — is pushed through a [`PlanningService`] twice: once with
//! the cache bank collapsed to a single shard (the old single-lock
//! `SharedCacheBank` topology) and once sharded 16 ways, at 1/4/8
//! workers each. The service checkpoints the shared bank every
//! [`CHECKPOINT_EVERY`] completed plans, which is where the topologies
//! part ways: a 1-shard bank re-renders **every** cached entry whenever
//! anything changed, while the sharded bank re-renders only the shards
//! the interval actually dirtied. One request in eight arrives from a
//! fresh tenant (a cold namespace, so it misses and inserts — the
//! "~10 % fresh-size misses" of a real multi-tenant mix), keeping the
//! bank perpetually slightly dirty the way live traffic does.
//!
//! Reported per configuration: plans per second (admitted requests over
//! wall-clock from first arrival to last reply) and p50/p99 queue wait,
//! computed with the same nearest-rank [`raqo_sim::percentile`] the
//! queue simulator uses. The headline is `speedup_at_max_workers`:
//! sharded plans/sec over single-lock plans/sec at 8 workers, gated ≥ 1
//! by `repro --bench-json`.

use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{
    PlanRequest, PlannerKind, PlanningService, Priority, RaqoOptimizer, ResourceStrategy,
    ServiceConfig, ServiceReply,
};
use raqo_cost::JoinCostModel;
use raqo_resource::{
    CacheLookup, ClusterConditions, PlanningBudget, ResourceConfig, ShardedCacheBank,
};
use raqo_sim::percentile;
use raqo_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Tenants in the steady-state mix (cache namespaces 0..16).
pub const TENANTS: u32 = 16;
/// Checkpoint cadence, in completed plans.
pub const CHECKPOINT_EVERY: u64 = 8;
/// Every `FRESH_EVERY`-th request arrives from a brand-new namespace.
pub const FRESH_EVERY: usize = 8;

/// One (topology, worker-count) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputPoint {
    /// `"single_lock"` (1 shard) or `"sharded"`.
    pub mode: String,
    pub shards: usize,
    pub workers: usize,
    pub requests: usize,
    /// Requests shed by admission control (0 here: the bench sizes the
    /// queue to hold the whole burst so both topologies do equal work).
    pub shed: u64,
    /// First arrival to last reply.
    pub wall_ms: f64,
    pub plans_per_sec: f64,
    pub p50_queue_wait_us: f64,
    pub p99_queue_wait_us: f64,
    /// Checkpoints the service actually wrote during the run.
    pub checkpoints: u64,
}

/// The full series serialized into `BENCH_planner.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputSeries {
    pub workload: String,
    /// Poisson arrival rate driving the open loop.
    pub arrival_rate_per_sec: f64,
    pub tenants: u32,
    /// Entries pre-warmed into the bank before the burst.
    pub warm_entries: usize,
    pub checkpoint_every: u64,
    pub points: Vec<ThroughputPoint>,
    /// sharded plans/sec over single-lock plans/sec at the largest
    /// worker count.
    pub speedup_at_max_workers: f64,
}

fn model() -> &'static JoinCostModel {
    static MODEL: OnceLock<JoinCostModel> = OnceLock::new();
    MODEL.get_or_init(JoinCostModel::trained_hive)
}

fn schema() -> &'static TpchSchema {
    static SCHEMA: OnceLock<TpchSchema> = OnceLock::new();
    SCHEMA.get_or_init(|| TpchSchema::new(1.0))
}

fn build_optimizer(_worker: usize) -> RaqoOptimizer<'static, JoinCostModel> {
    let schema = schema();
    RaqoOptimizer::new(
        Arc::new(schema.catalog.clone()),
        Arc::new(schema.graph.clone()),
        model(),
        ClusterConditions::paper_default(),
        PlannerKind::Selinger,
        ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.05 }),
    )
}

/// Pre-warm a bank the way a long-lived service accumulates state: both
/// join implementations for every steady-state tenant, `keys_per_cache`
/// distinct sizes each. The payload is what makes single-lock
/// checkpoints expensive — every one of these entries re-renders when
/// the lone shard is dirty.
fn warm_bank(shards: usize, keys_per_cache: usize) -> ShardedCacheBank {
    let bank = ShardedCacheBank::with_shards(shards);
    for ns in 0..TENANTS {
        for impl_id in 0..2u32 {
            let model_id = (ns << 1) | impl_id;
            for k in 0..keys_per_cache {
                bank.insert(
                    model_id,
                    0,
                    16.0 + k as f64,
                    ResourceConfig::containers_and_size(
                        1.0 + (k % 40) as f64,
                        1.0 + (impl_id + ns % 7) as f64,
                    ),
                );
            }
        }
    }
    bank
}

/// Deterministic Poisson arrival offsets (seconds) via inverse-CDF
/// exponential inter-arrivals.
fn poisson_arrivals(n: usize, rate_per_sec: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() / rate_per_sec;
            t
        })
        .collect()
}

fn run_point(
    mode: &str,
    shards: usize,
    workers: usize,
    requests: usize,
    keys_per_cache: usize,
    rate_per_sec: f64,
) -> (ThroughputPoint, usize) {
    let bank = warm_bank(shards, keys_per_cache);
    let warm_entries = bank.total_entries();
    let ckpt_path = std::env::temp_dir().join(format!(
        "raqo_throughput_{}_{}_{}_{}.json",
        std::process::id(),
        mode,
        shards,
        workers
    ));
    let service = PlanningService::start(
        ServiceConfig {
            workers,
            // Hold the entire burst: both topologies then plan the same
            // request set and the comparison is pure service time.
            queue_capacity: requests,
            budgets: [
                PlanningBudget::unlimited(),
                PlanningBudget::unlimited(),
                PlanningBudget::unlimited(),
            ],
            checkpoint_every: CHECKPOINT_EVERY,
            checkpoint_path: Some(ckpt_path.clone()),
            model_fingerprint: Some(model().fingerprint()),
            compact_high_water: None,
        },
        bank,
        Telemetry::disabled(),
        build_optimizer,
    );

    let arrivals = poisson_arrivals(requests, rate_per_sec, 0x7082_0011 + workers as u64);
    let query = QuerySpec::tpch_q3();
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    let mut fresh = TENANTS;
    for (i, &at) in arrivals.iter().enumerate() {
        let due = Duration::from_secs_f64(at);
        let now = start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        // One request in FRESH_EVERY comes from a tenant the bank has
        // never seen: a guaranteed miss-and-insert that dirties a shard.
        let ns = if i % FRESH_EVERY == FRESH_EVERY - 1 {
            fresh += 1;
            fresh
        } else {
            i as u32 % TENANTS
        };
        let priority = Priority::ALL[i % Priority::ALL.len()];
        tickets.push(service.submit(PlanRequest::new(query.clone(), priority).with_namespace(ns)));
    }
    let replies: Vec<ServiceReply> = tickets.into_iter().map(|t| t.wait()).collect();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    assert!(replies.iter().all(|r| r.plan.is_some()), "throughput: a request went unplanned");
    let shed = replies.iter().filter(|r| r.shed).count() as u64;
    let waits: Vec<f64> =
        replies.iter().filter(|r| !r.shed).map(|r| r.queue_wait_us as f64).collect();
    let checkpoints = service.completed() / CHECKPOINT_EVERY;
    drop(service);
    std::fs::remove_file(&ckpt_path).ok();

    (
        ThroughputPoint {
            mode: mode.into(),
            shards,
            workers,
            requests,
            shed,
            wall_ms,
            plans_per_sec: requests as f64 / (wall_ms / 1e3).max(1e-9),
            p50_queue_wait_us: percentile(&waits, 50.0),
            p99_queue_wait_us: percentile(&waits, 99.0),
            checkpoints,
        },
        warm_entries,
    )
}

/// Measure the throughput series (see [`ThroughputSeries`]).
pub fn measure(quick: bool) -> ThroughputSeries {
    // The arrival rate is set well above either topology's service
    // capacity so the open loop saturates both: measured plans/sec is
    // then the service's capacity, not the arrival process.
    let (requests, keys_per_cache, rate) =
        if quick { (192, 320, 16000.0) } else { (480, 640, 16000.0) };
    let worker_counts = [1usize, 4, 8];
    let topologies: [(&str, usize); 2] = [("single_lock", 1), ("sharded", 16)];

    let mut points = Vec::new();
    let mut warm_entries = 0;
    for (mode, shards) in topologies {
        for workers in worker_counts {
            let (point, warm) = run_point(mode, shards, workers, requests, keys_per_cache, rate);
            warm_entries = warm;
            points.push(point);
        }
    }

    let max_workers = *worker_counts.last().expect("non-empty");
    let pps = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode == mode && p.workers == max_workers)
            .map(|p| p.plans_per_sec)
            .unwrap_or(0.0)
    };
    let speedup_at_max_workers = pps("sharded") / pps("single_lock").max(1e-9);
    ThroughputSeries {
        workload: format!(
            "Poisson open loop, {requests} requests over {TENANTS} tenants \
             (1 in {FRESH_EVERY} from a fresh namespace), TPC-H Q3, \
             checkpoint every {CHECKPOINT_EVERY} plans"
        ),
        arrival_rate_per_sec: rate,
        tenants: TENANTS,
        warm_entries,
        checkpoint_every: CHECKPOINT_EVERY,
        points,
        speedup_at_max_workers,
    }
}

/// The `--service-demo` / `examples/service_demo` walkthrough: a
/// deliberately small service (2 workers, an 8-slot queue) under a
/// 32-request burst across all three priority classes and four tenant
/// namespaces. Admitted requests plan on the pool under their class
/// budget; shed requests come back inline, annotated with the ladder
/// rung that produced them. Prints every reply; returns
/// `(admitted, shed)`.
pub fn service_demo() -> (u64, u64) {
    use raqo_telemetry::{Counter, Gauge};

    let tel = Telemetry::enabled();
    let bank = ShardedCacheBank::new();
    println!(
        "starting 2-worker service, 8-slot queue, {}-shard cache bank\n",
        bank.shard_count()
    );
    let service = PlanningService::start(
        ServiceConfig { workers: 2, queue_capacity: 8, ..Default::default() },
        bank.clone(),
        tel.clone(),
        build_optimizer,
    );

    let queries = [
        ("Q2", QuerySpec::tpch_q2()),
        ("Q3", QuerySpec::tpch_q3()),
        ("Q12", QuerySpec::tpch_q12()),
    ];
    let tickets: Vec<_> = (0..32)
        .map(|i| {
            let (name, query) = &queries[i % queries.len()];
            let priority = Priority::ALL[i % Priority::ALL.len()];
            let namespace = (i % 4) as u32;
            let ticket = service
                .submit(PlanRequest::new(query.clone(), priority).with_namespace(namespace));
            (*name, priority, namespace, ticket)
        })
        .collect();

    for (name, priority, namespace, ticket) in tickets {
        let reply = ticket.wait();
        let plan = reply.plan.expect("the service always answers with a plan");
        let how = if reply.shed {
            let d = plan.degradation.expect("shed plans are annotated");
            format!("SHED -> inline rung {} ({})", d.rung, d.trigger)
        } else {
            format!("queued {:>6} us", reply.queue_wait_us)
        };
        println!(
            "  {name:>4} tenant {namespace} {priority:<12?} cost {:>12.3}  {how}",
            plan.query.cost
        );
    }

    let snap = tel.snapshot().expect("enabled");
    let (admitted, shed) =
        (snap.get(Counter::ServiceAdmitted), snap.get(Counter::ServiceShed));
    println!(
        "\nadmitted {admitted} / shed {shed} / completed {}; queue depth now {}; \
         {} cache entries across {} shards",
        snap.get(Counter::ServiceCompleted),
        snap.gauge(Gauge::ServiceQueueDepth),
        bank.total_entries(),
        bank.shard_count()
    );
    drop(service);
    (admitted, shed)
}

/// Render the series as a printable [`crate::Table`].
pub fn table(series: &ThroughputSeries) -> crate::Table {
    let mut t = crate::Table::new(
        format!("Planning-service throughput — {}", series.workload),
        &[
            "mode",
            "shards",
            "workers",
            "plans/sec",
            "p50 wait (us)",
            "p99 wait (us)",
            "checkpoints",
        ],
    );
    for p in &series.points {
        t.row(vec![
            p.mode.clone().into(),
            (p.shards as u64).into(),
            (p.workers as u64).into(),
            p.plans_per_sec.into(),
            p.p50_queue_wait_us.into(),
            p.p99_queue_wait_us.into(),
            p.checkpoints.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_banks_beat_the_single_lock_at_full_fanout() {
        let _serial = crate::timing_lock();
        let series = measure(true);
        assert_eq!(series.points.len(), 6);
        for p in &series.points {
            assert_eq!(p.shed, 0, "the bench queue must hold the whole burst: {p:?}");
            assert!(p.plans_per_sec > 0.0, "{p:?}");
            assert!(p.checkpoints > 0, "the service never checkpointed: {p:?}");
            assert!(
                p.p99_queue_wait_us >= p.p50_queue_wait_us,
                "percentiles out of order: {p:?}"
            );
        }
        // The acceptance bar: sharded ≥ 2× single-lock plans/sec at 8
        // workers on the quick workload already.
        assert!(
            series.speedup_at_max_workers >= 2.0,
            "throughput speedup {:.2}x below the 2x bar: {series:?}",
            series.speedup_at_max_workers
        );
    }

    #[test]
    fn poisson_arrivals_are_monotone_and_rate_matched() {
        let arrivals = poisson_arrivals(4000, 1000.0, 7);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let span = arrivals.last().unwrap() - arrivals[0];
        // 4000 arrivals at 1000/s span ~4 s; allow generous sampling slack.
        assert!((2.0..8.0).contains(&span), "span {span}");
    }
}
