//! Minimal tabular reporting for experiment output.

use serde::Serialize;

/// One table cell.
#[derive(Debug, Clone, Serialize)]
pub enum Cell {
    Text(String),
    Num(f64),
    Int(u64),
    /// Missing / infeasible (rendered as "OOM" — the only absence the
    /// experiments produce).
    Oom,
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<Option<f64>> for Cell {
    fn from(v: Option<f64>) -> Self {
        match v {
            Some(v) => Cell::Num(v),
            None => Cell::Oom,
        }
    }
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v) => {
                if *v != 0.0 && v.abs() < 0.005 {
                    format!("{v:.0e}")
                } else if v.abs() >= 1000.0 {
                    format!("{v:.0}")
                } else if v.abs() >= 10.0 {
                    format!("{v:.1}")
                } else {
                    format!("{v:.3}")
                }
            }
            Cell::Int(v) => v.to_string(),
            Cell::Oom => "OOM".to_string(),
        }
    }
}

/// A printable, serializable experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), 1.5.into()]);
        t.row(vec!["a longer name".into(), Cell::Oom]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("OOM"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn number_formatting_scales() {
        assert_eq!(Cell::Num(12345.6).render(), "12346");
        assert_eq!(Cell::Num(42.5).render(), "42.5");
        assert_eq!(Cell::Num(1.234567).render(), "1.235");
        assert_eq!(Cell::Int(7).render(), "7");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
