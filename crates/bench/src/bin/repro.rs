//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro --all                  # every figure, full-size sweeps
//! repro --fig 13               # one figure
//! repro --fig 15 --quick       # reduced sweep sizes
//! repro --all --json out.json  # machine-readable tables as well
//! repro --smoke                # fast path: every figure at tiny sizes
//! repro --bench-json [path]    # planner speedup bench -> BENCH_planner.json
//! repro --cache-file <path>    # TPC-H sweep warm-started from a persisted cache
//! repro --list                 # what exists
//! ```

use raqo_bench::experiments::{registry, timed};
use raqo_bench::{speedup, Table};
use raqo_catalog::{tpch::TpchSchema, QuerySpec};
use raqo_core::{Parallelism, PlannerKind, RaqoOptimizer, ResourceStrategy};
use raqo_cost::JoinCostModel;
use raqo_resource::{CacheLookup, ClusterConditions, SharedCacheBank};

/// `--cache-file`: run the TPC-H query sweep with across-query caching,
/// warm-starting the shared resource-plan cache from `path` when it exists
/// and persisting the (further) warmed bank back afterwards. Repeated
/// invocations demonstrate the Fig. 15(b) payoff across *processes*.
fn run_cache_file(path: &str) {
    let bank = if std::path::Path::new(path).exists() {
        let bank = SharedCacheBank::load(path)
            .unwrap_or_else(|e| panic!("loading cache bank from {path}: {e}"));
        println!("loaded {} cached resource plans from {path}", bank.total_entries());
        bank
    } else {
        println!("no cache file at {path}; starting cold");
        SharedCacheBank::new()
    };

    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let queries = [
        ("Q2", QuerySpec::tpch_q2()),
        ("Q3", QuerySpec::tpch_q3()),
        ("Q12", QuerySpec::tpch_q12()),
        ("all-tables", QuerySpec::tpch_all(&schema)),
    ];
    let mut total_ms = 0.0;
    let mut hits = 0;
    for (name, query) in &queries {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            ClusterConditions::paper_default(),
            PlannerKind::Selinger,
            ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.01 }),
        );
        opt.share_cache(bank.clone());
        let (plan, ms) = timed(|| opt.optimize(query).expect("plan"));
        total_ms += ms;
        hits += plan.stats.cache_hits;
        println!(
            "  {name:>10}  {ms:>8.1} ms  cost {:>12.3}  {} cache hits",
            plan.query.cost, plan.stats.cache_hits
        );
    }
    bank.save(path).unwrap_or_else(|e| panic!("saving cache bank to {path}: {e}"));
    println!(
        "sweep: {:.1} ms, {hits} cache hits; saved {} resource plans to {path}",
        total_ms,
        bank.total_entries()
    );
}

/// `--smoke` gate: one Selinger figure (TPC-H, all tables, exhaustive
/// resource planning) through every `Parallelism` × memoization
/// combination; all modes must agree on the joint plan.
fn selinger_smoke_gate() {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let query = QuerySpec::tpch_all(&schema);
    let cluster = ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0);
    let mut base: Option<(raqo_planner::PlanTree, f64)> = None;
    let mut combos = 0;
    let (_, ms) = timed(|| {
        for parallelism in [Parallelism::Off, Parallelism::Threads(2), Parallelism::Auto] {
            for planner in [PlannerKind::Selinger, PlannerKind::SelingerMemoized] {
                let memoized = matches!(planner, PlannerKind::SelingerMemoized);
                let mut opt = RaqoOptimizer::new(
                    &schema.catalog,
                    &schema.graph,
                    &model,
                    cluster,
                    planner,
                    ResourceStrategy::BruteForce,
                )
                .with_parallelism(parallelism);
                let plan = opt.optimize(&query).expect("smoke plan");
                let (tree, cost) = (plan.query.tree.clone(), plan.query.cost);
                match &base {
                    None => base = Some((tree, cost)),
                    Some((t0, c0)) => {
                        assert_eq!(t0, &tree, "Selinger smoke: trees diverge at {parallelism:?}");
                        // Memoized runs replay DP-time IO accumulation
                        // order; plain runs must agree bitwise.
                        let ok = if memoized {
                            (c0 - cost).abs() <= 1e-9 * c0.abs()
                        } else {
                            c0.to_bits() == cost.to_bits()
                        };
                        assert!(ok, "Selinger smoke: costs diverge at {parallelism:?}: {c0} vs {cost}");
                    }
                }
                combos += 1;
            }
        }
    });
    println!("selinger  ok  {ms:>8.0} ms  {combos} parallelism x memoize combinations agree");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let all = args.iter().any(|a| a == "--all");
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args.iter().position(|a| a == "--bench-json");
    let cache_file = args
        .iter()
        .position(|a| a == "--cache-file")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let fig = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let experiments = registry();

    if args.iter().any(|a| a == "--cache-file") {
        let Some(path) = cache_file else {
            eprintln!("--cache-file needs a path argument");
            std::process::exit(2);
        };
        run_cache_file(&path);
        return;
    }

    // The joint-planning hot-path benchmark: three modes, JSON report.
    if let Some(i) = bench_json {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_planner.json".to_string());
        let report = speedup::measure(quick);
        speedup::table(&report).print();
        println!(
            "randomized speedup: {:.2}x ({} -> {} over {} workers), plans identical: {}",
            report.speedup,
            report.runs[0].wall_ms.round(),
            report.runs[report.runs.len() - 1].wall_ms.round(),
            report.worker_threads,
            report.plans_identical
        );
        println!(
            "selinger speedup: {:.2}x ({} -> {} over {} workers), plans identical: {}",
            report.selinger.speedup,
            report.selinger.runs[0].wall_ms.round(),
            report.selinger.runs[report.selinger.runs.len() - 1].wall_ms.round(),
            report.worker_threads,
            report.selinger.plans_identical
        );
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote planner bench report to {path}");
        return;
    }

    // CI fast path: every figure module at its tiny sweep sizes, with a
    // per-figure pass/timing line instead of the full tables.
    if smoke {
        let mut total_ms = 0.0;
        for e in &experiments {
            let (tables, ms) = timed(|| (e.run)(true));
            total_ms += ms;
            println!("fig {:>2}  ok  {:>8.0} ms  {} table(s)  {}", e.id, ms, tables.len(), e.title);
        }
        selinger_smoke_gate();
        println!("smoke: {} experiments in {:.1} s", experiments.len(), total_ms / 1000.0);
        return;
    }

    if list || (!all && fig.is_none()) {
        println!("Available experiments (run with --fig <id> or --all):");
        for e in &experiments {
            println!("  --fig {:>2}  {}", e.id, e.title);
        }
        println!("  --smoke      every figure at tiny sizes (CI fast path)");
        println!("  --bench-json planner speedup benchmark -> BENCH_planner.json");
        println!("  --cache-file <path>  TPC-H sweep warm-started from a persisted cache");
        if !list {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| all || fig.as_deref() == Some(e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment with id {fig:?}; try --list");
        std::process::exit(2);
    }

    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut all_tables: Vec<(String, Vec<Table>)> = Vec::new();
    for e in selected {
        println!("=== Figure {} — {} ===\n", e.id, e.title);
        let tables = (e.run)(quick);
        for table in &tables {
            table.print();
        }
        all_tables.push((e.id.to_string(), tables));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_tables).expect("tables serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote JSON tables to {path}");
    }
}
