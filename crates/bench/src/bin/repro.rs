//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro --all                  # every figure, full-size sweeps
//! repro --fig 13               # one figure
//! repro --fig 15 --quick       # reduced sweep sizes
//! repro --all --json out.json  # machine-readable tables as well
//! repro --smoke                # fast path: every figure at tiny sizes
//! repro --bench-json [path]    # planner speedup bench -> BENCH_planner.json
//! repro --list                 # what exists
//! ```

use raqo_bench::experiments::{registry, timed};
use raqo_bench::{speedup, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let all = args.iter().any(|a| a == "--all");
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args.iter().position(|a| a == "--bench-json");
    let fig = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let experiments = registry();

    // The joint-planning hot-path benchmark: three modes, JSON report.
    if let Some(i) = bench_json {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_planner.json".to_string());
        let report = speedup::measure(quick);
        speedup::table(&report).print();
        println!(
            "speedup: {:.2}x ({} -> {} over {} workers), plans identical: {}",
            report.speedup,
            report.runs[0].wall_ms.round(),
            report.runs[report.runs.len() - 1].wall_ms.round(),
            report.worker_threads,
            report.plans_identical
        );
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote planner bench report to {path}");
        return;
    }

    // CI fast path: every figure module at its tiny sweep sizes, with a
    // per-figure pass/timing line instead of the full tables.
    if smoke {
        let mut total_ms = 0.0;
        for e in &experiments {
            let (tables, ms) = timed(|| (e.run)(true));
            total_ms += ms;
            println!("fig {:>2}  ok  {:>8.0} ms  {} table(s)  {}", e.id, ms, tables.len(), e.title);
        }
        println!("smoke: {} experiments in {:.1} s", experiments.len(), total_ms / 1000.0);
        return;
    }

    if list || (!all && fig.is_none()) {
        println!("Available experiments (run with --fig <id> or --all):");
        for e in &experiments {
            println!("  --fig {:>2}  {}", e.id, e.title);
        }
        println!("  --smoke      every figure at tiny sizes (CI fast path)");
        println!("  --bench-json planner speedup benchmark -> BENCH_planner.json");
        if !list {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| all || fig.as_deref() == Some(e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment with id {fig:?}; try --list");
        std::process::exit(2);
    }

    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut all_tables: Vec<(String, Vec<Table>)> = Vec::new();
    for e in selected {
        println!("=== Figure {} — {} ===\n", e.id, e.title);
        let tables = (e.run)(quick);
        for table in &tables {
            table.print();
        }
        all_tables.push((e.id.to_string(), tables));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_tables).expect("tables serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote JSON tables to {path}");
    }
}
