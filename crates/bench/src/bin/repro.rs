//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro --all                  # every figure, full-size sweeps
//! repro --fig 13               # one figure
//! repro --fig 15 --quick       # reduced sweep sizes
//! repro --all --json out.json  # machine-readable tables as well
//! repro --smoke                # fast path: every figure at tiny sizes
//! repro --chaos                # fault-injection gate: ladder + recovery paths
//! repro --bench-json [path]    # planner speedup bench -> BENCH_planner.json
//! repro --bench-json --enforce-floors  # ... and exit non-zero on perf-floor breaches
//! repro --cache-file <path>    # TPC-H sweep warm-started from a persisted cache
//! repro --trace <file>         # traced TPC-H sweep: EXPLAIN ANALYZE + span trees
//! repro --metrics <base>       # TPC-H sweep -> <base>.prom + <base>.json
//! repro --otlp <file>          # service-driven sweep -> OTLP/JSON trace export
//! repro --otlp <f> --flight-dir <d>  # ... plus flight-recorder dumps on degradation
//! repro --serve <addr>         # raqo-net planning server (drain on Ctrl-D)
//! repro --client <addr>        # TPC-H sweep against a running server
//! repro --list                 # what exists
//! ```

use raqo_bench::experiments::{registry, timed};
use raqo_bench::{net_bench, speedup, throughput, Table};
use raqo_catalog::{tpch::TpchSchema, QuerySpec};
use raqo_core::{
    explain_analyze, Parallelism, PlannerKind, RaqoOptimizer, RaqoStats, ResourceStrategy,
    Telemetry,
};
use raqo_cost::JoinCostModel;
use raqo_resource::{CacheLookup, ClusterConditions, SharedCacheBank};
use raqo_telemetry::{aggregate_spans, Counter};
use serde::Value;

/// `--cache-file`: run the TPC-H query sweep with across-query caching,
/// warm-starting the shared resource-plan cache from `path` when it exists
/// and persisting the (further) warmed bank back afterwards. Repeated
/// invocations demonstrate the Fig. 15(b) payoff across *processes*.
fn run_cache_file(path: &str) {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    // Persisted resource plans are only valid for the model that produced
    // them: the file carries the model fingerprint, and a mismatch (e.g.
    // after retraining) discards the stale bank instead of replaying it.
    let fingerprint = model.fingerprint();
    let tel = Telemetry::enabled();
    let bank = if std::path::Path::new(path).exists() {
        match SharedCacheBank::load_checked(path, fingerprint) {
            Ok((bank, invalidated)) => {
                if invalidated {
                    tel.inc(Counter::CacheFileInvalidations);
                    println!(
                        "cache file at {path} is stale (cost-model fingerprint mismatch); starting cold"
                    );
                } else {
                    println!("loaded {} cached resource plans from {path}", bank.total_entries());
                }
                bank
            }
            // A corrupt cache is a recoverable condition, not a crash: the
            // loader has already quarantined the bad file, so we log it,
            // count it, and start cold.
            Err(e) if e.is_corrupt() => {
                tel.inc(Counter::CacheFileInvalidations);
                println!("cache file at {path} is corrupt ({e}); starting cold");
                SharedCacheBank::new()
            }
            Err(e) => panic!("loading cache bank from {path}: {e}"),
        }
    } else {
        println!("no cache file at {path}; starting cold");
        SharedCacheBank::new()
    };

    let queries = [
        ("Q2", QuerySpec::tpch_q2()),
        ("Q3", QuerySpec::tpch_q3()),
        ("Q12", QuerySpec::tpch_q12()),
        ("all-tables", QuerySpec::tpch_all(&schema)),
    ];
    let mut total_ms = 0.0;
    let mut hits = 0;
    for (name, query) in &queries {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            ClusterConditions::paper_default(),
            PlannerKind::Selinger,
            ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.01 }),
        );
        opt.share_cache(bank.clone());
        opt.set_telemetry(tel.clone());
        let (plan, ms) = timed(|| opt.optimize(query).expect("plan"));
        total_ms += ms;
        hits += plan.stats.cache_hits;
        println!(
            "  {name:>10}  {ms:>8.1} ms  cost {:>12.3}  {} cache hits",
            plan.query.cost, plan.stats.cache_hits
        );
    }
    bank.save_with_fingerprint(path, fingerprint)
        .unwrap_or_else(|e| panic!("saving cache bank to {path}: {e}"));
    let invalidations =
        tel.snapshot().map_or(0, |s| s.get(Counter::CacheFileInvalidations));
    println!(
        "sweep: {:.1} ms, {hits} cache hits, {invalidations} stale-file invalidation(s); \
         saved {} resource plans to {path} (model {fingerprint:016x})",
        total_ms,
        bank.total_entries()
    );
}

/// The TPC-H sweep shared by `--trace` and `--metrics`.
fn tpch_queries(schema: &TpchSchema) -> [(&'static str, QuerySpec); 4] {
    [
        ("Q2", QuerySpec::tpch_q2()),
        ("Q3", QuerySpec::tpch_q3()),
        ("Q12", QuerySpec::tpch_q12()),
        ("all-tables", QuerySpec::tpch_all(schema)),
    ]
}

fn traced_optimizer<'a>(
    schema: &'a TpchSchema,
    model: &'a JoinCostModel,
    tel: &Telemetry,
) -> RaqoOptimizer<'a, JoinCostModel> {
    let mut opt = RaqoOptimizer::new(
        &schema.catalog,
        &schema.graph,
        model,
        ClusterConditions::paper_default(),
        PlannerKind::Selinger,
        ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.01 }),
    );
    opt.set_telemetry(tel.clone());
    opt
}

/// `--trace <file>`: optimize the TPC-H queries with span tracing enabled
/// (sequential planning, so each tree nests dispatch → planner → resource
/// planning → cache lookups), print `EXPLAIN ANALYZE` per query, and dump
/// the full span trees plus the metrics registry as JSON to `file`.
fn run_trace(path: &str) {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let mut docs: Vec<Value> = Vec::new();
    for (name, query) in tpch_queries(&schema) {
        // A fresh sink per query keeps each span tree self-contained.
        let tel = Telemetry::enabled();
        let mut opt = traced_optimizer(&schema, &model, &tel);
        let plan = opt.optimize(&query).expect("plan");
        println!("=== {name} ===");
        println!("{}", explain_analyze(&plan, &schema.catalog, &tel));
        let spans = tel.spans();
        if spans.len() <= 200 {
            println!("Span tree:\n{}", tel.span_tree_text());
        } else {
            println!("Span tree: {} spans (full tree in {path}); phase totals:", spans.len());
            for (phase, count, total_ns) in aggregate_spans(&spans).iter().take(12) {
                println!("  {phase}: {:.1} us across {count} span(s)", *total_ns as f64 / 1e3);
            }
            println!();
        }
        docs.push(Value::Object(vec![
            ("query".to_string(), Value::String(name.to_string())),
            ("spans".to_string(), tel.spans_to_json_value()),
            ("metrics".to_string(), tel.snapshot().expect("enabled").to_json_value()),
        ]));
    }
    let mut out = String::new();
    serde::write_value(&mut out, &Value::Array(docs), Some(2), 0);
    out.push('\n');
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote span trees and metrics for 4 queries to {path}");
}

/// `--metrics <base>`: run the TPC-H sweep against one shared registry and
/// export it as `<base>.prom` (Prometheus text exposition format) and
/// `<base>.json`.
fn run_metrics(base: &str) {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let tel = Telemetry::enabled();
    for (name, query) in tpch_queries(&schema) {
        let mut opt = traced_optimizer(&schema, &model, &tel);
        let plan = opt.optimize(&query).expect("plan");
        println!(
            "  {name:>10}  cost {:>12.3}  {} getPlanCost calls, {} resource iterations",
            plan.query.cost, plan.stats.plan_cost_calls, plan.stats.resource_iterations
        );
    }
    let snap = tel.snapshot().expect("enabled");
    let prom_path = format!("{base}.prom");
    let json_path = format!("{base}.json");
    std::fs::write(&prom_path, snap.to_prometheus())
        .unwrap_or_else(|e| panic!("writing {prom_path}: {e}"));
    std::fs::write(&json_path, snap.to_json())
        .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
    println!("wrote {prom_path} and {json_path}");
}

/// `--otlp <file>` (optionally with `--flight-dir <dir>`): run the TPC-H
/// sweep through a [`raqo_core::PlanningService`] so every query is one
/// ticket trace, then export the trace pipeline as OTLP/JSON. The batch
/// ticket runs under a zero-evaluation budget, so the sweep always
/// exercises the degradation ladder — with `--flight-dir`, that flagged
/// trace triggers a flight-recorder dump.
fn run_otlp(path: &str, flight_dir: Option<&str>) {
    use raqo_core::{PlanRequest, PlanningService, Priority, ServiceConfig};
    use raqo_resource::{PlanningBudget, ShardedCacheBank};
    use raqo_telemetry::FlightRecorder;
    use std::sync::Arc;

    let schema = TpchSchema::new(1.0);
    let model: &'static JoinCostModel = Box::leak(Box::new(JoinCostModel::trained_hive()));
    let tel = Telemetry::enabled();
    let recorder = flight_dir.map(|dir| {
        let rec = Arc::new(FlightRecorder::new(dir));
        tel.add_span_sink(rec.clone());
        rec
    });
    let mut config = ServiceConfig { workers: 2, ..Default::default() };
    config.budgets[Priority::Batch as usize] = PlanningBudget::with_max_evals(0);
    let service = PlanningService::start(
        config,
        ShardedCacheBank::with_shards(8),
        tel.clone(),
        |_| {
            RaqoOptimizer::new(
                std::sync::Arc::new(schema.catalog.clone()),
                std::sync::Arc::new(schema.graph.clone()),
                model,
                ClusterConditions::paper_default(),
                PlannerKind::Selinger,
                ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor {
                    threshold: 0.01,
                }),
            )
        },
    );
    let queries = tpch_queries(&schema);
    let priorities =
        [Priority::Interactive, Priority::Standard, Priority::Standard, Priority::Batch];
    let tickets: Vec<_> = queries
        .iter()
        .zip(priorities)
        .enumerate()
        .map(|(ns, ((name, query), priority))| {
            let ticket = service
                .submit(PlanRequest::new(query.clone(), priority).with_namespace(ns as u32));
            (*name, priority, ticket)
        })
        .collect();
    for (name, priority, ticket) in tickets {
        let reply = ticket.wait();
        let plan = reply.plan.expect("otlp sweep plan");
        println!(
            "  {name:>10}  {:>11}  trace {:032x}  cost {:>12.3}{}",
            priority.name(),
            reply.trace_id,
            plan.query.cost,
            if plan.degradation.is_some() { "  (degraded)" } else { "" },
        );
    }
    drop(service);
    std::fs::write(path, tel.otlp_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "wrote {} trace(s) ({} spans) as OTLP/JSON to {path}",
        tel.completed_traces().len(),
        tel.completed_span_count()
    );
    if let Some(rec) = recorder {
        if let Some(err) = rec.last_error() {
            eprintln!("flight recorder error: {err}");
        }
        println!(
            "flight recorder: {} dump(s) in {}",
            rec.dump_count(),
            flight_dir.unwrap_or_default()
        );
    }
}

/// `--serve <addr>`: put the planning service on the wire. Binds a
/// [`raqo_net::PlanServer`] at `addr` (e.g. `127.0.0.1:7432`), serves
/// RQNW v1 frames until stdin closes (Ctrl-D) or a `quit` line arrives,
/// then drains gracefully: stop accepting, finish in-flight tickets,
/// flush the cache-bank checkpoint, close every connection.
fn run_serve(addr: &str) {
    use raqo_core::{PlanningService, ServiceConfig};
    use raqo_net::{NetConfig, PlanServer};
    use raqo_resource::ShardedCacheBank;

    let schema = TpchSchema::new(1.0);
    let model: &'static JoinCostModel = Box::leak(Box::new(JoinCostModel::trained_hive()));
    let tel = Telemetry::enabled();
    let workers = 4;
    let service = std::sync::Arc::new(PlanningService::start(
        ServiceConfig { workers, ..Default::default() },
        ShardedCacheBank::with_shards(8),
        tel.clone(),
        |_| {
            RaqoOptimizer::new(
                std::sync::Arc::new(schema.catalog.clone()),
                std::sync::Arc::new(schema.graph.clone()),
                model,
                ClusterConditions::paper_default(),
                PlannerKind::Selinger,
                ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor {
                    threshold: 0.05,
                }),
            )
        },
    ));
    let server = PlanServer::bind(addr, NetConfig::default(), service.clone(), tel.clone())
        .unwrap_or_else(|e| panic!("binding {addr}: {e}"));
    println!("raqo-net serving RQNW v1 on {} ({workers} planning workers)", server.local_addr());
    println!("close stdin (Ctrl-D) or type `quit` to drain and stop");
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
        }
    }
    server.shutdown();
    drop(service);
    let snap = tel.snapshot().expect("enabled");
    use raqo_telemetry::Counter as C;
    println!(
        "drained: {} connection(s) served, {} frames in / {} out, {} frame error(s), \
         {} reply(ies) deduped, shed {} overload / {} conn-cap / {} deadline",
        snap.get(C::NetConnectionsOpened),
        snap.get(C::NetFramesIn),
        snap.get(C::NetFramesOut),
        snap.get(C::NetFrameErrors),
        snap.get(C::NetRepliesDeduped),
        snap.get(C::NetShedOverloaded),
        snap.get(C::NetShedConnCap),
        snap.get(C::NetShedDeadline),
    );
}

/// `--client <addr>`: run the TPC-H sweep against a live `--serve`
/// process and print what came back over the wire, per query.
fn run_client(addr: &str) {
    use raqo_net::{ClientConfig, PlanClient};
    use std::time::Instant;

    let mut client = PlanClient::connect(addr, ClientConfig::default())
        .unwrap_or_else(|e| panic!("resolving {addr}: {e}"));
    let schema = TpchSchema::new(1.0);
    use raqo_core::Priority;
    let priorities =
        [Priority::Interactive, Priority::Standard, Priority::Standard, Priority::Batch];
    for (ns, ((name, query), priority)) in
        tpch_queries(&schema).iter().zip(priorities).enumerate()
    {
        let sent = Instant::now();
        match client.plan_with(query, priority, ns as u32, 0) {
            Ok(reply) => {
                let ms = sent.elapsed().as_secs_f64() * 1e3;
                let plan = reply.plan.unwrap_or_else(|| {
                    panic!("{name}: server reply carried no decodable plan")
                });
                let note = match plan.degradation {
                    Some(d) => format!("  (degraded: {} via {})", d.rung, d.trigger),
                    None if reply.shed => "  (shed)".to_string(),
                    None => String::new(),
                };
                println!(
                    "  {name:>10}  {:>11}  {ms:>7.1} ms  trace {:032x}  cost {:>12.3}{note}",
                    priority.name(),
                    reply.trace_id,
                    plan.cost,
                );
            }
            Err(e) => {
                eprintln!("  {name}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `--smoke` net gate: the wire front end's three load-bearing promises.
/// (1) A server round trip returns plans bit-identical to an in-process
/// `PlanningService` twin fed the same requests. (2) One chaos schedule —
/// an injected `net.read` reset — is absorbed by the client's retry under
/// the same request id. (3) Graceful drain closes every connection it
/// opened.
fn net_smoke_gate() {
    use raqo_core::{PlanRequest, PlanningService, Priority, ServiceConfig};
    use raqo_faults::{Fault, FaultGuard, FaultKind};
    use raqo_net::{ClientConfig, NetConfig, PlanClient, PlanServer};
    use raqo_resource::ShardedCacheBank;

    let schema = TpchSchema::new(1.0);
    let model: &'static JoinCostModel = Box::leak(Box::new(JoinCostModel::trained_hive()));
    let (_, ms) = timed(|| {
        let tel = Telemetry::enabled();
        let mk_service = |tel: &Telemetry| {
            PlanningService::start(
                ServiceConfig { workers: 1, ..Default::default() },
                ShardedCacheBank::with_shards(8),
                tel.clone(),
                |_| {
                    RaqoOptimizer::new(
                        std::sync::Arc::new(schema.catalog.clone()),
                        std::sync::Arc::new(schema.graph.clone()),
                        model,
                        ClusterConditions::paper_default(),
                        PlannerKind::Selinger,
                        ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor {
                            threshold: 0.05,
                        }),
                    )
                },
            )
        };
        let service = std::sync::Arc::new(mk_service(&tel));
        let twin = mk_service(&Telemetry::disabled());
        let server =
            PlanServer::bind("127.0.0.1:0", NetConfig::default(), service.clone(), tel.clone())
                .expect("net smoke: bind");
        let mut client = PlanClient::connect(server.local_addr(), ClientConfig::default())
            .expect("net smoke: connect")
            .with_telemetry(tel.clone());

        // (1) Round-trip parity against the in-process twin, mixed classes.
        let sweep = [
            (QuerySpec::tpch_q3(), Priority::Interactive),
            (QuerySpec::tpch_q12(), Priority::Standard),
            (QuerySpec::tpch_q2(), Priority::Batch),
        ];
        for (ns, (query, priority)) in sweep.iter().enumerate() {
            let net = client
                .plan_with(query, *priority, ns as u32, 0)
                .expect("net smoke: wire reply");
            let local = twin
                .submit(PlanRequest::new(query.clone(), *priority).with_namespace(ns as u32))
                .wait();
            let local_json =
                serde_json::to_string(&local.plan).expect("net smoke: twin serializes");
            assert_eq!(
                net.plan_json, local_json,
                "net smoke: wire plan diverged from the in-process answer (ns {ns})"
            );
            assert!(net.plan.is_some(), "net smoke: reply summary did not decode");
        }

        // (2) One chaos schedule: a read-side reset kills the connection;
        // the retry (same request id, fresh connection) must recover.
        {
            let _guard = FaultGuard::new();
            raqo_faults::arm(Fault::once("net.read", FaultKind::Fail));
            let reply = client
                .plan_with(&QuerySpec::tpch_q3(), Priority::Interactive, 9, 0)
                .expect("net smoke: chaos retry must recover");
            assert!(reply.plan.is_some());
        }
        let snap = tel.snapshot().expect("enabled");
        assert!(
            snap.get(Counter::NetClientRetries) >= 1,
            "net smoke: the injected reset never forced a retry"
        );

        // (3) Graceful drain: shutdown while the client connection is
        // alive; every opened connection must be accounted closed.
        drop(client);
        server.shutdown();
        drop(service);
        drop(twin);
        let snap = tel.snapshot().expect("enabled");
        assert_eq!(
            snap.get(Counter::NetConnectionsOpened),
            snap.get(Counter::NetConnectionsClosed),
            "net smoke: drain leaked a connection"
        );
    });
    assert!(!raqo_faults::armed(), "net smoke: faults leaked");
    println!(
        "net       ok  {ms:>8.0} ms  wire replies bit-match in-process plans; injected reset \
         retried; drain closed every connection"
    );
}

/// `--smoke` observability gate: the trace pipeline's three load-bearing
/// promises, end to end. (1) The OTLP/JSON export round-trips through a
/// real JSON parser. (2) Under 1% head sampling, tail retention still
/// keeps a fault-injected (NaN-sanitized) ticket and a budget-exhausted
/// ticket while sampling clean traffic out. (3) Disabled telemetry is
/// plan-bit-identical to enabled telemetry.
fn observability_smoke_gate() {
    use raqo_core::{PlanRequest, PlanningService, Priority, ServiceConfig};
    use raqo_faults::{Fault, FaultGuard, FaultKind};
    use raqo_resource::{PlanningBudget, ShardedCacheBank};
    use raqo_telemetry::{TraceConfig, TraceFlags};

    let schema = TpchSchema::new(1.0);
    let model: &'static JoinCostModel = Box::leak(Box::new(JoinCostModel::trained_hive()));
    let (_, ms) = timed(|| {
        let tel = Telemetry::with_trace_config(TraceConfig {
            head_rate: 0.01,
            seed: 7,
            ..TraceConfig::default()
        });
        let mut config = ServiceConfig { workers: 1, ..Default::default() };
        config.budgets[Priority::Batch as usize] = PlanningBudget::with_max_evals(0);
        let service = PlanningService::start(
            config,
            ShardedCacheBank::with_shards(8),
            tel.clone(),
            |_| {
                RaqoOptimizer::new(
                    std::sync::Arc::new(schema.catalog.clone()),
                    std::sync::Arc::new(schema.graph.clone()),
                    model,
                    ClusterConditions::paper_default(),
                    PlannerKind::Selinger,
                    ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor {
                        threshold: 0.01,
                    }),
                )
            },
        );

        // One ticket plans under an injected NaN: sanitization fires on a
        // resource worker thread, and the captured trace scope must
        // attribute it back to this ticket for tail retention.
        let sanitized_id = {
            let _guard = FaultGuard::new();
            raqo_faults::arm(Fault::at("cost.model.scalar", FaultKind::Nan, 5));
            raqo_faults::arm(Fault::at("cost.model.batch", FaultKind::Nan, 5));
            let reply = service
                .submit(PlanRequest::new(QuerySpec::tpch_q3(), Priority::Interactive))
                .wait();
            assert!(reply.plan.is_some(), "observability smoke: faulted ticket unplanned");
            reply.trace_id
        };
        // One ticket exhausts its (zero) budget: the ladder degrades and
        // the optimizer flags the trace.
        let exhausted_id = {
            let reply = service
                .submit(PlanRequest::new(QuerySpec::tpch_q12(), Priority::Batch))
                .wait();
            let plan = reply.plan.expect("observability smoke: batch ticket unplanned");
            assert!(plan.degradation.is_some(), "zero budget must degrade");
            reply.trace_id
        };
        // Clean traffic: at a 1% head rate nearly all of it samples out.
        for i in 0..20u32 {
            service
                .submit(
                    PlanRequest::new(QuerySpec::tpch_q3(), Priority::Standard)
                        .with_namespace(i),
                )
                .wait();
        }
        drop(service);

        let completed = tel.completed_traces();
        for (label, id, want) in [
            ("sanitized", sanitized_id, TraceFlags::COST_SANITIZED),
            ("budget-exhausted", exhausted_id, TraceFlags::BUDGET_EXHAUSTED),
        ] {
            let trace = completed.iter().find(|t| t.trace_id == id).unwrap_or_else(|| {
                panic!("observability smoke: {label} ticket not retained at 1% head rate")
            });
            assert!(
                trace.flags.contains(want),
                "observability smoke: {label} ticket retained but not flagged {want:?}"
            );
        }
        let snap = tel.snapshot().expect("enabled");
        assert_eq!(snap.get(Counter::TracesStarted), 22);
        assert!(
            snap.get(Counter::TracesSampledOut) >= 18,
            "observability smoke: head sampling kept too much clean traffic ({} sampled out)",
            snap.get(Counter::TracesSampledOut)
        );

        // The export survives a real JSON parser and carries the flagged
        // tickets.
        let otlp = tel.otlp_json();
        let parsed =
            serde_json::from_str(&otlp).expect("observability smoke: OTLP JSON parses");
        let Value::Object(top) = &parsed else {
            panic!("observability smoke: OTLP root is not an object")
        };
        assert!(top.iter().any(|(k, _)| k == "resourceSpans"));
        for id in [sanitized_id, exhausted_id] {
            assert!(
                otlp.contains(&format!("{id:032x}")),
                "observability smoke: trace {id:x} missing from OTLP export"
            );
        }

        // Disabled telemetry changes nothing about the plan itself.
        let mut with_tel = traced_optimizer(&schema, model, &Telemetry::enabled());
        let mut without = traced_optimizer(&schema, model, &Telemetry::disabled());
        let a = with_tel.optimize(&QuerySpec::tpch_q3()).expect("plan");
        let b = without.optimize(&QuerySpec::tpch_q3()).expect("plan");
        assert_eq!(a.query.tree, b.query.tree, "observability smoke: tracing changed the tree");
        assert_eq!(
            a.query.cost.to_bits(),
            b.query.cost.to_bits(),
            "observability smoke: tracing changed the cost"
        );
    });
    assert!(!raqo_faults::armed(), "observability smoke: faults leaked");
    println!(
        "observab. ok  {ms:>8.0} ms  OTLP round-trips; flagged tickets retained at 1% head \
         rate; disabled == enabled plans"
    );
}

/// `--smoke` telemetry gate: one traced query must produce a span tree
/// covering every pipeline phase, registry totals that agree exactly with
/// the run's [`RaqoStats`], and a well-formed Prometheus export.
fn telemetry_smoke_gate() {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let tel = Telemetry::enabled();
    let mut opt = traced_optimizer(&schema, &model, &tel);
    let before = tel.snapshot().expect("enabled");
    let (plan, ms) = timed(|| opt.optimize(&QuerySpec::tpch_q3()).expect("plan"));
    let after = tel.snapshot().expect("enabled");
    // The §V rule-based path dispatches through the same sink.
    let tree = raqo_core::train_raqo_tree(
        &raqo_sim::engine::Engine::hive(),
        &raqo_sim::profile::ProfileGrid::paper_default(),
    );
    let mut rule_coster =
        raqo_core::RuleBasedCoster::new(&tree, &model, 10.0, 4.0).with_telemetry(tel.clone());
    raqo_planner::SelingerPlanner::plan(
        &schema.catalog,
        &schema.graph,
        &QuerySpec::tpch_q3(),
        &mut rule_coster,
    )
    .expect("rule-based plan");
    let span_tree = tel.span_tree_text();
    for phase in [
        "optimize",
        "planner.selinger",
        "selinger.dp",
        "selinger.final_cost",
        "plan_cost",
        "resource_planning.cached",
        "cache.lookup.nearest",
        "rule.dispatch",
    ] {
        assert!(
            span_tree.contains(phase),
            "telemetry smoke: span tree missing phase {phase}:\n{span_tree}"
        );
    }
    assert_eq!(
        plan.stats,
        RaqoStats::from_registry_delta(&before, &after),
        "telemetry smoke: registry totals diverge from RaqoStats"
    );
    let final_snap = tel.snapshot().expect("enabled");
    assert!(final_snap.get(Counter::RuleDispatches) > 0, "rule dispatches not counted");
    let prom = final_snap.to_prometheus();
    for series in ["raqo_plan_cost_calls_total", "raqo_plan_cost_latency_us_bucket"] {
        assert!(prom.contains(series), "telemetry smoke: Prometheus export missing {series}");
    }
    println!(
        "telemetry ok  {ms:>8.0} ms  span tree covers dispatch/planner/resource-planning/cache; \
         registry matches stats"
    );
}

/// `--smoke` gate: one Selinger figure (TPC-H, all tables, exhaustive
/// resource planning) through every `Parallelism` × memoization
/// combination; all modes must agree on the joint plan.
fn selinger_smoke_gate() {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let query = QuerySpec::tpch_all(&schema);
    let cluster = ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0);
    let mut base: Option<(raqo_planner::PlanTree, f64)> = None;
    let mut combos = 0;
    let (_, ms) = timed(|| {
        for parallelism in [Parallelism::Off, Parallelism::Threads(2), Parallelism::Auto] {
            for planner in [PlannerKind::Selinger, PlannerKind::SelingerMemoized] {
                let memoized = matches!(planner, PlannerKind::SelingerMemoized);
                let mut opt = RaqoOptimizer::new(
                    &schema.catalog,
                    &schema.graph,
                    &model,
                    cluster,
                    planner,
                    ResourceStrategy::BruteForce,
                )
                .with_parallelism(parallelism);
                let plan = opt.optimize(&query).expect("smoke plan");
                let (tree, cost) = (plan.query.tree.clone(), plan.query.cost);
                match &base {
                    None => base = Some((tree, cost)),
                    Some((t0, c0)) => {
                        assert_eq!(t0, &tree, "Selinger smoke: trees diverge at {parallelism:?}");
                        // Memoized runs replay DP-time IO accumulation
                        // order; plain runs must agree bitwise.
                        let ok = if memoized {
                            (c0 - cost).abs() <= 1e-9 * c0.abs()
                        } else {
                            c0.to_bits() == cost.to_bits()
                        };
                        assert!(ok, "Selinger smoke: costs diverge at {parallelism:?}: {c0} vs {cost}");
                    }
                }
                combos += 1;
            }
        }
    });
    println!("selinger  ok  {ms:>8.0} ms  {combos} parallelism x memoize combinations agree");
}

/// `--smoke` IDP parity gate: at the exhaustive-DP threshold (n = 20) a
/// covering-block IDP run must be bit-identical to Selinger DP, and past
/// it (24-relation chain and star) the optimizer must bridge with IDP —
/// reporting `relation_bound_bridged`, never the randomized rung — and
/// produce an executable joint plan that beats the randomized planner on
/// the same seed.
fn idp_smoke_gate() {
    use raqo_core::{DegradationRung, DegradationTrigger};
    use raqo_planner::coster::FixedResourceCoster;
    use raqo_planner::{DpFill, IdpConfig, IdpPlanner, RandomizedConfig, SelingerPlanner};

    let model = JoinCostModel::trained_hive();
    let (_, ms) = timed(|| {
        // n = 20: IDP with a covering block *is* the DP — trees, costs, and
        // join decisions bit-for-bit.
        let schema = raqo_catalog::RandomSchemaConfig::with_tables(20, 20).generate();
        let query = QuerySpec::new("n20", schema.catalog.table_ids().collect::<Vec<_>>());
        let mut dp_coster = FixedResourceCoster::new(&model, 10.0, 4.0);
        let dp = SelingerPlanner::plan(&schema.catalog, &schema.graph, &query, &mut dp_coster)
            .expect("idp smoke: n=20 DP plan");
        let mut idp_coster = FixedResourceCoster::new(&model, 10.0, 4.0);
        let idp = IdpPlanner::plan(
            &schema.catalog,
            &schema.graph,
            &query,
            &mut idp_coster,
            IdpConfig { block_size: 20, fill: DpFill::Auto },
        )
        .expect("idp smoke: n=20 IDP plan");
        assert_eq!(dp.tree, idp.tree, "idp smoke: n=20 trees diverge");
        assert_eq!(
            dp.cost.to_bits(),
            idp.cost.to_bits(),
            "idp smoke: n=20 costs diverge: {} vs {}",
            dp.cost,
            idp.cost
        );
        assert_eq!(dp.joins, idp.joins, "idp smoke: n=20 join decisions diverge");

        // n = 24 chain and star: bridged, executable, and better than the
        // randomized planner on the same smoke seed.
        for (shape, schema) in [
            ("chain", raqo_catalog::RandomSchema::chain(24, 24)),
            ("star", raqo_catalog::RandomSchema::star(24, 24)),
        ] {
            let query = QuerySpec::new(
                format!("{shape}_24"),
                schema.catalog.table_ids().collect::<Vec<_>>(),
            );
            let mk_opt = |planner| {
                RaqoOptimizer::new(
                    &schema.catalog,
                    &schema.graph,
                    &model,
                    ClusterConditions::paper_default(),
                    planner,
                    ResourceStrategy::HillClimb,
                )
            };
            let plan = mk_opt(PlannerKind::Selinger)
                .optimize(&query)
                .unwrap_or_else(|| panic!("idp smoke: {shape} plan not found"));
            let d = plan.degradation.expect("idp smoke: bridge must be reported");
            assert_eq!(d.rung, DegradationRung::IdpBridge, "idp smoke: {shape} wrong rung");
            assert_eq!(
                d.trigger,
                DegradationTrigger::RelationBoundBridged,
                "idp smoke: {shape} wrong trigger"
            );
            // Executable: covers the query, one decision per join, every
            // join carries a concrete resource assignment and finite cost.
            assert!(
                raqo_planner::plan::covers_exactly(&plan.query.tree, &query.relations),
                "idp smoke: {shape} plan does not cover the query"
            );
            assert_eq!(plan.query.joins.len(), 23, "idp smoke: {shape} join count");
            assert!(plan.query.cost.is_finite() && plan.query.cost > 0.0);
            for join in &plan.query.joins {
                assert!(
                    join.decision.resources.is_some(),
                    "idp smoke: {shape} join without resources"
                );
            }
            let randomized = mk_opt(PlannerKind::FastRandomized(RandomizedConfig {
                restarts: 2,
                rounds_per_join: 5,
                epsilon: 0.05,
                seed: 24,
                memoize: false,
            }))
            .optimize(&query)
            .unwrap_or_else(|| panic!("idp smoke: {shape} randomized plan not found"));
            assert!(
                plan.query.cost <= randomized.query.cost * (1.0 + 1e-9),
                "idp smoke: {shape} IDP cost {} worse than randomized {}",
                plan.query.cost,
                randomized.query.cost
            );
        }
    });
    println!(
        "idp       ok  {ms:>8.0} ms  n=20 DP parity bit-exact; 24-relation chain+star bridged \
         and beat the randomized planner"
    );
}

/// `--smoke` Cascades gate: on the crafted fact/dim star the memo
/// planner's winner must be *bushy* and strictly cheaper than the best
/// left-deep Selinger plan; on a fully cyclic clique it must be no worse;
/// and whenever its winner happens to be left-deep (chains at small n)
/// its cost must agree with Selinger exactly — the memo search covers
/// every left-deep order Selinger enumerates, plus the bushy shapes.
fn cascades_smoke_gate() {
    let (series, ms) = timed(|| speedup::measure_cascades(true));
    let star = series
        .points
        .iter()
        .find(|p| p.shape == "star")
        .expect("cascades smoke: star point");
    assert!(
        star.bushy,
        "cascades smoke: star winner must be bushy: {series:?}"
    );
    assert!(
        star.cascades_cost < star.selinger_cost,
        "cascades smoke: bushy star plan {} must strictly beat left-deep {}",
        star.cascades_cost,
        star.selinger_cost
    );
    assert!(
        series.clique_bushy_and_cheaper,
        "cascades smoke: crafted-clique winner must be bushy and strictly \
         cheaper than left-deep: {series:?}"
    );
    for p in &series.points {
        assert!(
            p.no_worse,
            "cascades smoke: {} plan {} worse than selinger {}",
            p.shape, p.cascades_cost, p.selinger_cost
        );
        if !p.bushy {
            assert!(
                (p.cascades_cost - p.selinger_cost).abs() <= 1e-9 * p.selinger_cost.abs(),
                "cascades smoke: left-deep {} winner must match selinger exactly \
                 ({} vs {})",
                p.shape,
                p.cascades_cost,
                p.selinger_cost
            );
        }
    }
    let gain = (1.0 - star.cascades_cost / star.selinger_cost) * 100.0;
    println!(
        "cascades  ok  {ms:>8.0} ms  bushy star beats best left-deep by {gain:.1}%; \
         bushy clique win; chain no worse than Selinger"
    );
}

/// `--smoke` SIMD/batched-kernel gate. Whichever cost kernel this binary
/// compiled in (the explicit AVX2 kernel under `--features simd`, the
/// scalar fold otherwise), the dispatching batch entry point must be
/// bit-identical to the scalar fold — across both feature maps, both join
/// implementations, BHJ-infeasible points, and slice lengths sweeping the
/// 4-lane remainder — and the lock-step batched multi-start hill climber
/// must reproduce the per-seed climber's outcome bit-for-bit.
fn simd_parity_smoke_gate() {
    use raqo_resource::{
        hill_climb_multi, hill_climb_multi_batched, ResourceConfig, SeedStrategy,
    };
    use raqo_sim::engine::JoinImpl;

    let (_, ms) = timed(|| {
        let cluster = ClusterConditions::two_dim(1.0..=40.0, 1.0..=6.0, 1.0, 1.0);
        let configs: Vec<ResourceConfig> = cluster.grid().collect();
        let lens = [0, 1, 3, configs.len() - 1, configs.len()];
        for model in [JoinCostModel::trained_hive(), JoinCostModel::trained_hive_extended()] {
            for join in [JoinImpl::SortMerge, JoinImpl::BroadcastHash] {
                // 10 GB builds are BHJ-infeasible at small container sizes,
                // so the feasibility select is exercised in both states.
                for build_gb in [0.5, 10.0] {
                    for len in lens {
                        let mut fast = vec![0.0; len];
                        let mut scalar = vec![0.0; len];
                        model.join_cost_batch(join, build_gb, &configs[..len], &mut fast);
                        model.join_cost_batch_scalar(
                            join,
                            build_gb,
                            &configs[..len],
                            &mut scalar,
                        );
                        for (i, (f, s)) in fast.iter().zip(&scalar).enumerate() {
                            assert_eq!(
                                f.to_bits(),
                                s.to_bits(),
                                "simd smoke: {join:?} build {build_gb} config {i}: {f} vs {s}"
                            );
                        }
                    }
                }
            }
        }

        // The batched climber against the per-seed reference on a surface
        // with a basin and an infeasible region.
        let cost = |r: &ResourceConfig| {
            let (c, s) = (r.containers(), r.container_size_gb());
            if c > 35.0 {
                f64::INFINITY
            } else {
                (c - 23.0) * (c - 23.0) + 3.0 * (s - 4.0) * (s - 4.0)
            }
        };
        let per_seed = hill_climb_multi(&cluster, cost, Parallelism::Off);
        let batched = hill_climb_multi_batched(
            &cluster,
            |probes: &[ResourceConfig], out: &mut [f64]| {
                for (r, o) in probes.iter().zip(out.iter_mut()) {
                    *o = cost(r);
                }
            },
            SeedStrategy::default(),
        );
        assert_eq!(per_seed.config, batched.config, "simd smoke: climbers pick different configs");
        assert_eq!(
            per_seed.cost.to_bits(),
            batched.cost.to_bits(),
            "simd smoke: climber costs diverge: {} vs {}",
            per_seed.cost,
            batched.cost
        );
        assert_eq!(
            per_seed.iterations, batched.iterations,
            "simd smoke: climber evaluation counts diverge"
        );
    });
    let kernel = if raqo_cost::simd_active() { "avx2" } else { "scalar" };
    println!(
        "simd      ok  {ms:>8.0} ms  {kernel} kernel; batch==scalar bitwise; \
         batched climb == per-seed climb"
    );
}

/// `--smoke` concurrency gate: the threaded cache-bank stress harness (8
/// threads of mixed insert/lookup/clear/save traffic on one sharded bank)
/// must finish with no panics, no lost entries, and per-shard statistics
/// that sum to the merged bank's; then a tiny overloaded
/// [`raqo_core::PlanningService`] must answer every request — shed ones
/// included — with a plan.
fn concurrency_smoke_gate() {
    use raqo_core::{PlanRequest, PlanningService, Priority, ServiceConfig};
    use raqo_resource::ShardedCacheBank;

    let (report, ms) = timed(|| {
        let report = raqo_resource::concurrency_stress(8, 200)
            .unwrap_or_else(|e| panic!("concurrency smoke: stress harness failed: {e}"));
        assert!(report.clears > 0 && report.saves > 0, "stress never exercised clear/save");

        // Overload a 1-worker, 2-slot service with a burst: every ticket
        // must still resolve to a plan.
        let schema = TpchSchema::new(1.0);
        let model: &'static JoinCostModel =
            Box::leak(Box::new(JoinCostModel::trained_hive()));
        let service = PlanningService::start(
            ServiceConfig { workers: 1, queue_capacity: 2, ..Default::default() },
            ShardedCacheBank::with_shards(8),
            Telemetry::disabled(),
            |_| {
                RaqoOptimizer::new(
                    std::sync::Arc::new(schema.catalog.clone()),
                    std::sync::Arc::new(schema.graph.clone()),
                    model,
                    ClusterConditions::paper_default(),
                    PlannerKind::Selinger,
                    ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor {
                        threshold: 0.05,
                    }),
                )
            },
        );
        let tickets: Vec<_> = (0..12)
            .map(|i| {
                service.submit(
                    PlanRequest::new(QuerySpec::tpch_q3(), Priority::Standard)
                        .with_namespace(i % 4),
                )
            })
            .collect();
        let mut shed = 0;
        for ticket in tickets {
            let reply = ticket.wait();
            assert!(reply.plan.is_some(), "concurrency smoke: request went unplanned");
            if reply.shed {
                shed += 1;
                assert!(
                    reply.plan.as_ref().is_some_and(|p| p.degradation.is_some()),
                    "concurrency smoke: shed plan lacks a degradation report"
                );
            }
        }
        assert!(shed > 0, "concurrency smoke: a 2-slot queue under a 12-burst must shed");
        report
    });
    println!(
        "concurr.  ok  {ms:>8.0} ms  {} threads x {} ops over {} shards, {} entries settled; \
         overloaded service answered every ticket",
        report.threads,
        report.ops,
        report.shards,
        report.entries
    );
}

/// `--chaos` gate: deterministic fault injection plus planning budgets must
/// never leave the optimizer without a plan. Exercises every rung of the
/// graceful-degradation ladder (undegraded, randomized, rule-based), cost
/// sanitization under injected NaNs, worker-panic recovery bit-identity,
/// and cache-file corruption quarantine.
fn chaos_smoke_gate() {
    use raqo_core::DegradationRung;
    use raqo_faults::{Fault, FaultGuard, FaultKind};
    use raqo_resource::PlanningBudget;
    use std::time::Duration;

    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let queries = tpch_queries(&schema);
    let mk_opt = |strategy: ResourceStrategy| {
        RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            ClusterConditions::paper_default(),
            PlannerKind::Selinger,
            strategy,
        )
    };

    let (_, ms) = timed(|| {
        // Rung 1: no budget, no faults — every sweep query plans undegraded.
        for (name, query) in &queries {
            let plan = mk_opt(ResourceStrategy::HillClimb)
                .optimize(query)
                .expect("chaos: clean plan");
            assert!(plan.degradation.is_none(), "chaos: {name} degraded without a budget");
        }

        // Rung 3: with faults armed and a 1 ms deadline, a valid plan must
        // still come back for every sweep query, and the report names the
        // rung. The injected NaN makes rung 1 hostile even if the clock
        // somehow holds.
        {
            let _guard = FaultGuard::new();
            raqo_faults::arm(Fault::repeating("cost.model.scalar", FaultKind::Nan));
            raqo_faults::arm(Fault::repeating("cost.model.batch", FaultKind::Nan));
            for (name, query) in &queries {
                let mut opt = mk_opt(ResourceStrategy::HillClimb);
                opt.set_budget(PlanningBudget::with_deadline(Duration::from_millis(1)));
                let plan = opt.optimize(query).expect("chaos: plan under faults + deadline");
                let rung = plan
                    .degradation
                    .map(|d| format!("rung {} (trigger {})", d.rung, d.trigger))
                    .unwrap_or_else(|| "undegraded".to_string());
                assert!(
                    raqo_planner::plan::covers_exactly(&plan.query.tree, &query.relations),
                    "chaos: {name} plan does not cover the query"
                );
                assert!(plan.query.cost.is_finite(), "chaos: {name} cost not finite");
                println!("  {name:>10}  faults + 1 ms deadline -> {rung}");
            }
        }

        // A zero deadline deterministically lands on the rule-based floor.
        {
            let mut opt = mk_opt(ResourceStrategy::BruteForce);
            opt.set_budget(PlanningBudget::with_deadline(Duration::ZERO));
            let plan = opt.optimize(&queries[1].1).expect("chaos: rung-3 plan");
            let d = plan.degradation.expect("chaos: zero deadline must degrade");
            assert_eq!(d.rung, DegradationRung::RuleBased, "chaos: rung 3 not reached");
        }

        // Rung 2: a tiny eval budget exhausts inside the first join; the
        // grace allowance lets the reduced randomized planner finish.
        {
            let mut opt = mk_opt(ResourceStrategy::BruteForce);
            opt.set_budget(PlanningBudget::with_max_evals(100));
            let plan = opt.optimize(&queries[1].1).expect("chaos: rung-2 plan");
            let d = plan.degradation.expect("chaos: eval exhaustion must degrade");
            assert_eq!(d.rung, DegradationRung::Randomized, "chaos: rung 2 not reached");
        }

        // Cost sanitization: a one-shot NaN mid-search is absorbed (the
        // poisoned point becomes infeasible), counted, and still planned
        // through.
        {
            let _guard = FaultGuard::new();
            raqo_faults::arm(Fault::at("cost.model.scalar", FaultKind::Nan, 5));
            raqo_faults::arm(Fault::at("cost.model.batch", FaultKind::Nan, 5));
            let tel = Telemetry::enabled();
            let mut opt = mk_opt(ResourceStrategy::HillClimb);
            opt.set_telemetry(tel.clone());
            let plan = opt.optimize(&queries[3].1).expect("chaos: plan with NaN injection");
            assert!(plan.query.cost.is_finite());
            let snap = tel.snapshot().expect("enabled");
            let sanitized = snap.get(Counter::CostSanitizationsScalar)
                + snap.get(Counter::CostSanitizationsBatch);
            assert!(sanitized >= 1, "chaos: injected NaN was not counted");
        }

        // Worker panic: a poisoned parallel worker is recovered by the
        // bit-identical sequential fallback.
        {
            let clean = mk_opt(ResourceStrategy::HillClimb)
                .with_parallelism(Parallelism::Threads(2))
                .optimize(&queries[3].1)
                .expect("chaos: clean parallel plan");
            let _guard = FaultGuard::new();
            raqo_faults::arm(Fault::once("core.worker.cost", FaultKind::Panic));
            // The injected panic is expected; keep it off the console.
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let tel = Telemetry::enabled();
            let mut opt =
                mk_opt(ResourceStrategy::HillClimb).with_parallelism(Parallelism::Threads(2));
            opt.set_telemetry(tel.clone());
            let recovered = opt.optimize(&queries[3].1).expect("chaos: plan despite panic");
            std::panic::set_hook(prev_hook);
            assert_eq!(
                clean.query.tree, recovered.query.tree,
                "chaos: panic recovery changed the plan tree"
            );
            assert_eq!(
                clean.query.cost.to_bits(),
                recovered.query.cost.to_bits(),
                "chaos: panic recovery changed the plan cost"
            );
            let panics = tel.snapshot().expect("enabled").get(Counter::WorkerPanics);
            assert!(panics >= 1, "chaos: worker panic was not counted");
        }

        // Cache-file corruption: the loader quarantines the bad file and
        // reports a typed error instead of crashing or replaying garbage.
        {
            let dir = std::env::temp_dir().join(format!("raqo-chaos-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("chaos: temp dir");
            let path = dir.join("bank.json");
            let bank = SharedCacheBank::new();
            bank.save(&path).expect("chaos: save bank");
            raqo_faults::corrupt_file(&path, 42).expect("chaos: corrupt file");
            let err = SharedCacheBank::load(&path).expect_err("chaos: corrupt load must fail");
            assert!(err.is_corrupt(), "chaos: expected a corruption error, got {err}");
            let quarantined = dir.join("bank.json.corrupt");
            assert!(quarantined.exists(), "chaos: corrupt file was not quarantined");
            let _ = std::fs::remove_dir_all(&dir);
        }
    });
    assert!(!raqo_faults::armed(), "chaos: faults leaked past their guard");
    println!(
        "chaos     ok  {ms:>8.0} ms  ladder rungs reachable; NaN/panic/corruption contained"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let all = args.iter().any(|a| a == "--all");
    let smoke = args.iter().any(|a| a == "--smoke");
    let chaos = args.iter().any(|a| a == "--chaos");
    let service_demo = args.iter().any(|a| a == "--service-demo");
    let bench_json = args.iter().position(|a| a == "--bench-json");
    let enforce_floors = args.iter().any(|a| a == "--enforce-floors");
    let serve = args
        .iter()
        .position(|a| a == "--serve")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let client = args
        .iter()
        .position(|a| a == "--client")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let cache_file = args
        .iter()
        .position(|a| a == "--cache-file")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let metrics = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let otlp = args
        .iter()
        .position(|a| a == "--otlp")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let flight_dir = args
        .iter()
        .position(|a| a == "--flight-dir")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    let fig = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let experiments = registry();

    if args.iter().any(|a| a == "--serve") {
        let Some(addr) = serve else {
            eprintln!("--serve needs a bind address argument (e.g. 127.0.0.1:7432)");
            std::process::exit(2);
        };
        run_serve(&addr);
        return;
    }

    if args.iter().any(|a| a == "--client") {
        let Some(addr) = client else {
            eprintln!("--client needs a server address argument (e.g. 127.0.0.1:7432)");
            std::process::exit(2);
        };
        run_client(&addr);
        return;
    }

    if args.iter().any(|a| a == "--cache-file") {
        let Some(path) = cache_file else {
            eprintln!("--cache-file needs a path argument");
            std::process::exit(2);
        };
        run_cache_file(&path);
        return;
    }

    if args.iter().any(|a| a == "--trace") {
        let Some(path) = trace else {
            eprintln!("--trace needs an output file argument");
            std::process::exit(2);
        };
        run_trace(&path);
        return;
    }

    if args.iter().any(|a| a == "--metrics") {
        let Some(base) = metrics else {
            eprintln!("--metrics needs an output base-path argument");
            std::process::exit(2);
        };
        run_metrics(&base);
        return;
    }

    if args.iter().any(|a| a == "--otlp") {
        let Some(path) = otlp else {
            eprintln!("--otlp needs an output file argument");
            std::process::exit(2);
        };
        run_otlp(&path, flight_dir.as_deref());
        return;
    }

    // The joint-planning hot-path benchmark: three modes, JSON report.
    if let Some(i) = bench_json {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_planner.json".to_string());
        let report = speedup::measure(quick);
        speedup::table(&report).print();
        println!(
            "randomized speedup: {:.2}x ({} -> {} over {} workers), plans identical: {}",
            report.speedup,
            report.runs[0].wall_ms.round(),
            report.runs[report.runs.len() - 1].wall_ms.round(),
            report.worker_threads,
            report.plans_identical
        );
        println!(
            "selinger speedup: {:.2}x ({} -> {} over {} workers), plans identical: {}",
            report.selinger.speedup,
            report.selinger.runs[0].wall_ms.round(),
            report.selinger.runs[report.selinger.runs.len() - 1].wall_ms.round(),
            report.worker_threads,
            report.selinger.plans_identical
        );
        println!(
            "cost kernel ({}): {:.2}x ({:.1} -> {:.1} ms over {} x {} configs), bitwise identical: {}",
            report.cost_kernel.kernel,
            report.cost_kernel.speedup,
            report.cost_kernel.scalar_ms,
            report.cost_kernel.dispatch_ms,
            report.cost_kernel.repeats,
            report.cost_kernel.configs,
            report.cost_kernel.bitwise_identical
        );
        println!(
            "batched climb: {:.2}x ({} -> {} ms), outcomes identical: {}",
            report.climb.speedup,
            report.climb.runs[0].wall_ms.round(),
            report.climb.runs[1].wall_ms.round(),
            report.climb.outcomes_identical
        );
        for p in &report.idp.points {
            println!(
                "idp bridge {:>5} n={:<2}  {:>8.1} ms  cost {:>12.3}  {} joins  bridged: {}",
                p.shape, p.tables, p.wall_ms, p.plan_cost, p.joins, p.bridged
            );
        }
        println!(
            "telemetry overhead over {} tickets: sampled(1%) {:+.1}%, full {:+.1}% \
             ({} -> {} traces retained), plans identical: {}",
            report.telemetry.tickets,
            report.telemetry.sampled_overhead_pct,
            report.telemetry.full_overhead_pct,
            report.telemetry.runs[1].traces_retained,
            report.telemetry.runs[2].traces_retained,
            report.telemetry.plans_identical
        );
        throughput::table(&report.throughput).print();
        println!(
            "service throughput: {:.2}x sharded over single-lock at 8 workers \
             ({} warm entries, checkpoint every {} plans)",
            report.throughput.speedup_at_max_workers,
            report.throughput.warm_entries,
            report.throughput.checkpoint_every
        );
        net_bench::table(&report.net).print();
        let peak = report.net.points.last().expect("net series has points");
        println!(
            "wire front end: {:.0} req/s at {} connections (p50 {:.0} us, p99 {:.0} us e2e)",
            peak.requests_per_sec, peak.connections, peak.p50_latency_us, peak.p99_latency_us
        );
        for p in &report.cascades.points {
            println!(
                "cascades {:>6} n={:<2}  selinger {:>12.3} -> cascades {:>12.3}  \
                 bushy: {:<5}  no worse: {}",
                p.shape, p.tables, p.selinger_cost, p.cascades_cost, p.bushy, p.no_worse
            );
        }
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote planner bench report to {path}");
        // Performance floors. Timing-sensitive by nature (shared CI
        // runners wobble), so breaches only fail the run under
        // `--enforce-floors`; the default is a loud warning.
        let mut breached = false;
        // Regression floor: a sharded service slower than the single-lock
        // baseline means the sharding layer itself regressed.
        if report.throughput.speedup_at_max_workers < 1.0 {
            eprintln!(
                "{}: sharded plans/sec fell below the single-lock baseline \
                 ({:.2}x)",
                if enforce_floors { "FAIL" } else { "WARN" },
                report.throughput.speedup_at_max_workers
            );
            breached = true;
        }
        // The wire layer may tax throughput, but dropping below even the
        // slowest in-process configuration (×0.8 margin) means the event
        // loop or framing regressed, not the planner.
        let floor = net_bench::in_process_floor(&report.throughput) * 0.8;
        if report.net.peak_requests_per_sec < floor {
            eprintln!(
                "{}: wire requests/sec fell below the in-process floor x0.8 \
                 ({:.0}/s < {:.0}/s)",
                if enforce_floors { "FAIL" } else { "WARN" },
                report.net.peak_requests_per_sec, floor
            );
            breached = true;
        }
        if breached && enforce_floors {
            std::process::exit(1);
        }
        return;
    }

    // CI fast path: every figure module at its tiny sweep sizes, with a
    // per-figure pass/timing line instead of the full tables.
    if smoke {
        let mut total_ms = 0.0;
        for e in &experiments {
            let (tables, ms) = timed(|| (e.run)(true));
            total_ms += ms;
            println!("fig {:>2}  ok  {:>8.0} ms  {} table(s)  {}", e.id, ms, tables.len(), e.title);
        }
        selinger_smoke_gate();
        idp_smoke_gate();
        cascades_smoke_gate();
        simd_parity_smoke_gate();
        telemetry_smoke_gate();
        observability_smoke_gate();
        concurrency_smoke_gate();
        net_smoke_gate();
        chaos_smoke_gate();
        println!("smoke: {} experiments in {:.1} s", experiments.len(), total_ms / 1000.0);
        return;
    }

    if chaos {
        chaos_smoke_gate();
        return;
    }

    // Walkthrough of the planning service: priority classes, admission
    // control, and degradation under overload.
    if service_demo {
        let (admitted, shed) = throughput::service_demo();
        assert!(admitted > 0, "service demo admitted nothing");
        assert!(shed > 0, "an 8-slot queue under a 32-burst must shed");
        return;
    }

    if list || (!all && fig.is_none()) {
        println!("Available experiments (run with --fig <id> or --all):");
        for e in &experiments {
            println!("  --fig {:>2}  {}", e.id, e.title);
        }
        println!("  --smoke      every figure at tiny sizes (CI fast path)");
        println!("  --chaos      fault-injection gate: degradation ladder + recovery paths");
        println!("  --service-demo  planning service under overload: priorities + degradation");
        println!("  --bench-json planner speedup benchmark -> BENCH_planner.json");
        println!("  --cache-file <path>  TPC-H sweep warm-started from a persisted cache");
        println!("  --trace <file>       traced TPC-H sweep: EXPLAIN ANALYZE + span trees -> file");
        println!("  --metrics <base>     TPC-H sweep metrics -> <base>.prom + <base>.json");
        println!("  --otlp <file>        service-driven TPC-H sweep -> OTLP/JSON trace export");
        println!("  --flight-dir <dir>   with --otlp: dump flight-recorder files on degradation");
        println!("  --serve <addr>       raqo-net planning server (Ctrl-D or `quit` drains)");
        println!("  --client <addr>      TPC-H sweep against a running --serve process");
        if !list {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| all || fig.as_deref() == Some(e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment with id {fig:?}; try --list");
        std::process::exit(2);
    }

    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut all_tables: Vec<(String, Vec<Table>)> = Vec::new();
    for e in selected {
        println!("=== Figure {} — {} ===\n", e.id, e.title);
        let tables = (e.run)(quick);
        for table in &tables {
            table.print();
        }
        all_tables.push((e.id.to_string(), tables));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_tables).expect("tables serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote JSON tables to {path}");
    }
}
