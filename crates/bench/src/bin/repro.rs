//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro --all                  # every figure, full-size sweeps
//! repro --fig 13               # one figure
//! repro --fig 15 --quick       # reduced sweep sizes
//! repro --all --json out.json  # machine-readable tables as well
//! repro --list                 # what exists
//! ```

use raqo_bench::experiments::registry;
use raqo_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let all = args.iter().any(|a| a == "--all");
    let fig = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let experiments = registry();

    if list || (!all && fig.is_none()) {
        println!("Available experiments (run with --fig <id> or --all):");
        for e in &experiments {
            println!("  --fig {:>2}  {}", e.id, e.title);
        }
        if !list {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| all || fig.as_deref() == Some(e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment with id {fig:?}; try --list");
        std::process::exit(2);
    }

    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut all_tables: Vec<(String, Vec<Table>)> = Vec::new();
    for e in selected {
        println!("=== Figure {} — {} ===\n", e.id, e.title);
        let tables = (e.run)(quick);
        for table in &tables {
            table.print();
        }
        all_tables.push((e.id.to_string(), tables));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_tables).expect("tables serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote JSON tables to {path}");
    }
}
