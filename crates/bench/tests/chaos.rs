//! Chaos suite: end-to-end fault injection through the public optimizer
//! API.
//!
//! The injector ([`raqo_faults`]) is process-global, so every test takes
//! `INJECTOR` for its whole body and wraps its faults in a [`FaultGuard`];
//! the suite lives in its own test binary so no unrelated test shares the
//! process.

use raqo_catalog::{tpch::TpchSchema, QuerySpec};
use raqo_core::{
    DegradationRung, DegradationTrigger, Parallelism, PlannerKind, PlanningBudget, RaqoOptimizer,
    RaqoPlan, ResourceStrategy, Telemetry,
};
use raqo_cost::JoinCostModel;
use raqo_faults::{Fault, FaultGuard, FaultKind};
use raqo_resource::{ClusterConditions, SharedCacheBank};
use raqo_telemetry::Counter;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests because the fault injector is process-global state.
static INJECTOR: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking chaos test must not wedge the rest of the suite.
    INJECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

fn optimizer<'a>(
    schema: &'a TpchSchema,
    model: &'a JoinCostModel,
    strategy: ResourceStrategy,
) -> RaqoOptimizer<'a, JoinCostModel> {
    RaqoOptimizer::new(
        &schema.catalog,
        &schema.graph,
        model,
        ClusterConditions::paper_default(),
        PlannerKind::Selinger,
        strategy,
    )
}

fn assert_valid(plan: &RaqoPlan, query: &QuerySpec) {
    assert!(
        raqo_planner::plan::covers_exactly(&plan.query.tree, &query.relations),
        "plan does not cover the query"
    );
    assert_eq!(plan.query.joins.len(), query.num_joins());
    assert!(plan.query.cost.is_finite() && plan.query.cost > 0.0);
}

/// Run `f` with the default panic output suppressed — injected panics are
/// expected and should not spam the test log.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn injected_nan_is_sanitized_and_the_query_still_plans() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();

    // Poison one scalar and one batch model evaluation mid-search.
    raqo_faults::arm(Fault::at("cost.model.scalar", FaultKind::Nan, 7));
    raqo_faults::arm(Fault::at("cost.model.batch", FaultKind::Nan, 2));

    let tel = Telemetry::enabled();
    let query = QuerySpec::tpch_all(&schema);
    let mut opt = optimizer(&schema, &model, ResourceStrategy::HillClimb);
    opt.set_telemetry(tel.clone());
    let plan = opt.optimize(&query).expect("NaN injection must not kill planning");
    assert_valid(&plan, &query);

    let snap = tel.snapshot().expect("enabled");
    let sanitized =
        snap.get(Counter::CostSanitizationsScalar) + snap.get(Counter::CostSanitizationsBatch);
    assert!(sanitized >= 1, "injected NaN was not counted as sanitized");
}

#[test]
fn worker_panic_recovers_to_a_bit_identical_plan() {
    let _serial = lock();
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let query = QuerySpec::tpch_all(&schema);

    let clean = optimizer(&schema, &model, ResourceStrategy::HillClimb)
        .with_parallelism(Parallelism::Threads(2))
        .optimize(&query)
        .expect("clean parallel plan");

    let _guard = FaultGuard::new();
    raqo_faults::arm(Fault::once("core.worker.cost", FaultKind::Panic));
    let tel = Telemetry::enabled();
    let mut opt =
        optimizer(&schema, &model, ResourceStrategy::HillClimb).with_parallelism(Parallelism::Threads(2));
    opt.set_telemetry(tel.clone());
    let recovered = with_quiet_panics(|| opt.optimize(&query)).expect("plan despite worker panic");

    assert_eq!(clean.query.tree, recovered.query.tree, "recovery changed the join tree");
    assert_eq!(
        clean.query.cost.to_bits(),
        recovered.query.cost.to_bits(),
        "recovery changed the plan cost: {} vs {}",
        clean.query.cost,
        recovered.query.cost
    );
    let panics = tel.snapshot().expect("enabled").get(Counter::WorkerPanics);
    assert!(panics >= 1, "worker panic was not counted");
}

#[test]
fn resource_worker_panic_recovers_to_a_bit_identical_outcome() {
    let _serial = lock();
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let query = QuerySpec::tpch_q3();

    // Exhaustive resource planning fans the grid out across threads; the
    // probe sits inside each grid worker.
    let clean = optimizer(&schema, &model, ResourceStrategy::BruteForce)
        .with_parallelism(Parallelism::Threads(2))
        .optimize(&query)
        .expect("clean plan");

    let _guard = FaultGuard::new();
    raqo_faults::arm(Fault::once("resource.worker.grid", FaultKind::Panic));
    raqo_faults::arm(Fault::once("resource.worker.grid_batch", FaultKind::Panic));
    let tel = Telemetry::enabled();
    let mut opt = optimizer(&schema, &model, ResourceStrategy::BruteForce)
        .with_parallelism(Parallelism::Threads(2));
    opt.set_telemetry(tel.clone());
    let recovered = with_quiet_panics(|| opt.optimize(&query)).expect("plan despite worker panic");

    assert_eq!(clean.query.tree, recovered.query.tree);
    assert_eq!(clean.query.cost.to_bits(), recovered.query.cost.to_bits());
    let panics = tel.snapshot().expect("enabled").get(Counter::WorkerPanics);
    assert!(panics >= 1, "resource worker panic was not counted");
}

#[test]
fn plan_cost_failure_degrades_to_rule_based_not_none() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let query = QuerySpec::tpch_q3();

    // Every getPlanCost call fails: rungs 1 and 2 become infeasible, the
    // rule-based floor (which never routes through this probe) holds.
    raqo_faults::arm(Fault::repeating("core.plan_cost", FaultKind::Fail));

    let plan = optimizer(&schema, &model, ResourceStrategy::HillClimb)
        .optimize(&query)
        .expect("ladder must bottom out at the rule-based rung");
    assert_valid(&plan, &query);
    let d = plan.degradation.expect("total cost failure must be reported");
    assert_eq!(d.rung, DegradationRung::RuleBased);
    assert_eq!(d.trigger, DegradationTrigger::Infeasible);
}

#[test]
fn injected_delay_blows_the_deadline_and_lands_on_rung_three() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let query = QuerySpec::tpch_q3();

    // One slow cost call (50 ms against a 5 ms deadline) must trip the
    // deadline; grace never extends the clock, so the ladder skips the
    // randomized rung and lands on the budget-free rule-based floor.
    raqo_faults::arm(Fault::once("core.plan_cost", FaultKind::Delay(Duration::from_millis(50))));

    let mut opt = optimizer(&schema, &model, ResourceStrategy::HillClimb);
    opt.set_budget(PlanningBudget::with_deadline(Duration::from_millis(5)));
    let plan = opt.optimize(&query).expect("deadline blowout must still plan");
    assert_valid(&plan, &query);
    let d = plan.degradation.expect("deadline blowout must be reported");
    assert_eq!(d.rung, DegradationRung::RuleBased);
    assert_eq!(d.trigger, DegradationTrigger::Deadline);
}

#[test]
fn one_ms_deadline_with_faults_plans_every_sweep_query() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();

    raqo_faults::arm(Fault::repeating("cost.model.scalar", FaultKind::Nan));
    raqo_faults::arm(Fault::repeating("cost.model.batch", FaultKind::Nan));

    for query in [
        QuerySpec::tpch_q2(),
        QuerySpec::tpch_q3(),
        QuerySpec::tpch_q12(),
        QuerySpec::tpch_all(&schema),
    ] {
        let mut opt = optimizer(&schema, &model, ResourceStrategy::HillClimb);
        opt.set_budget(PlanningBudget::with_deadline(Duration::from_millis(1)));
        let plan = opt.optimize(&query).expect("faults + deadline must still plan");
        assert_valid(&plan, &query);
        // Under hostile conditions the run must *name* how it degraded.
        let d = plan.degradation.expect("hostile run must report its rung");
        assert!(matches!(d.rung, DegradationRung::Randomized | DegradationRung::RuleBased));
    }
}

#[test]
fn disarmed_probes_change_nothing() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let query = QuerySpec::tpch_all(&schema);

    assert!(!raqo_faults::armed());
    let a = optimizer(&schema, &model, ResourceStrategy::HillClimb)
        .optimize(&query)
        .expect("plan");
    let b = optimizer(&schema, &model, ResourceStrategy::HillClimb)
        .optimize(&query)
        .expect("plan");
    assert!(a.degradation.is_none() && b.degradation.is_none());
    assert_eq!(a.query.tree, b.query.tree);
    assert_eq!(a.query.cost.to_bits(), b.query.cost.to_bits());
}

#[test]
fn corrupted_cache_file_is_quarantined_with_a_typed_error() {
    let _serial = lock();
    let dir = std::env::temp_dir().join(format!("raqo-chaos-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bank.json");

    let bank = SharedCacheBank::new();
    bank.save(&path).expect("save bank");
    raqo_faults::corrupt_file(&path, 1234).expect("corrupt file");

    let err = SharedCacheBank::load(&path).expect_err("corrupt load must fail");
    assert!(err.is_corrupt(), "expected a corruption error, got: {err}");
    assert!(!path.exists(), "corrupt file must be moved out of the way");
    assert!(
        dir.join("bank.json.corrupt").exists(),
        "corrupt file must be preserved for forensics"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
