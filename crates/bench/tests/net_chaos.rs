//! Network chaos suite: fault schedules on every `net.*` probe site,
//! driven end to end through [`raqo_net::PlanServer`]/[`raqo_net::PlanClient`].
//!
//! The contract under test, per the wire front end's design invariants:
//! with delay, torn-frame, disconnect, or garbage faults armed the server
//! never hangs, never panics, and never leaks a connection or thread;
//! every surviving request gets a real plan, every failing one a *typed*
//! error; and requests the chaos schedule did not touch return plans
//! bit-identical to an in-process [`PlanningService`] fed the same
//! request stream.
//!
//! The injector is process-global, so every test takes `INJECTOR` for its
//! whole body and wraps its faults in a [`FaultGuard`]; the suite lives in
//! its own test binary so no unrelated test shares the process.

use raqo_catalog::{tpch::TpchSchema, QuerySpec};
use raqo_core::{
    PlanRequest, PlannerKind, PlanningService, Priority, RaqoOptimizer, ResourceStrategy,
    ServiceConfig, Telemetry,
};
use raqo_cost::JoinCostModel;
use raqo_faults::{Fault, FaultGuard, FaultKind};
use raqo_net::{ClientConfig, NetConfig, NetError, PlanClient, PlanServer};
use raqo_resource::{CacheLookup, ClusterConditions, ShardedCacheBank};
use raqo_telemetry::Counter;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Serializes tests because the fault injector is process-global state.
static INJECTOR: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    INJECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

fn model() -> &'static JoinCostModel {
    static MODEL: OnceLock<JoinCostModel> = OnceLock::new();
    MODEL.get_or_init(JoinCostModel::trained_hive)
}

fn schema() -> &'static TpchSchema {
    static SCHEMA: OnceLock<TpchSchema> = OnceLock::new();
    SCHEMA.get_or_init(|| TpchSchema::new(1.0))
}

fn build_optimizer(_worker: usize) -> RaqoOptimizer<'static, JoinCostModel> {
    let schema = schema();
    RaqoOptimizer::new(
        Arc::new(schema.catalog.clone()),
        Arc::new(schema.graph.clone()),
        model(),
        ClusterConditions::paper_default(),
        PlannerKind::fast_randomized(7),
        ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.05 }),
    )
}

fn start_service(workers: usize, tel: &Telemetry) -> Arc<PlanningService> {
    Arc::new(PlanningService::start(
        ServiceConfig { workers, queue_capacity: 512, ..Default::default() },
        ShardedCacheBank::with_shards(8),
        tel.clone(),
        build_optimizer,
    ))
}

fn start_stack(net: NetConfig, workers: usize) -> (PlanServer, Arc<PlanningService>, Telemetry) {
    let tel = Telemetry::enabled();
    let service = start_service(workers, &tel);
    let server = PlanServer::bind("127.0.0.1:0", net, service.clone(), tel.clone())
        .expect("chaos: bind");
    (server, service, tel)
}

fn client(server: &PlanServer, read_timeout: Duration, retries: u32, tel: &Telemetry) -> PlanClient {
    PlanClient::connect(
        server.local_addr(),
        ClientConfig { read_timeout, retries, backoff_base: Duration::from_millis(5), ..ClientConfig::default() },
    )
    .expect("chaos: client connect")
    .with_telemetry(tel.clone())
}

/// Kernel threads of this process, from `/proc/self/status`.
fn threads_now() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Assert every opened connection was accounted closed.
fn assert_connections_balanced(tel: &Telemetry) {
    let snap = tel.snapshot().expect("enabled");
    assert_eq!(
        snap.get(Counter::NetConnectionsOpened),
        snap.get(Counter::NetConnectionsClosed),
        "a connection leaked past shutdown"
    );
}

#[test]
fn delay_faults_on_the_read_path_stall_ticks_but_never_hang() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let (server, service, tel) = start_stack(NetConfig::default(), 1);
    let mut client = client(&server, Duration::from_secs(5), 1, &tel);

    let clean = client.plan(&QuerySpec::tpch_q3(), Priority::Interactive).expect("clean reply");
    assert!(clean.plan.is_some());

    // Three consecutive event-loop ticks each stall 25 ms inside the read
    // probe — the slow-network case, not a dead one.
    for nth in 1..=3 {
        raqo_faults::arm(Fault::at("net.read", FaultKind::Delay(Duration::from_millis(25)), nth));
    }
    let start = Instant::now();
    let reply = client
        .plan_with(&QuerySpec::tpch_q12(), Priority::Standard, 1, 0)
        .expect("delayed reply");
    assert!(reply.plan.is_some(), "delay fault lost the plan");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "delay fault wedged the event loop: {:?}",
        start.elapsed()
    );

    drop(client);
    server.shutdown();
    drop(service);
    assert_connections_balanced(&tel);
}

#[test]
fn torn_frame_recovers_through_the_client_timeout_retry() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let (server, service, tel) = start_stack(NetConfig::default(), 1);
    let mut client = client(&server, Duration::from_millis(250), 2, &tel);

    // The first buffered frame loses its tail: the server sits on an
    // incomplete prefix (it cannot know more bytes will never come), the
    // client times out, drops the wedged connection, and retries fresh.
    raqo_faults::arm(Fault::once("net.frame", FaultKind::Fail));
    let reply =
        client.plan(&QuerySpec::tpch_q3(), Priority::Interactive).expect("retry must recover");
    assert!(reply.plan.is_some());
    let snap = tel.snapshot().expect("enabled");
    assert!(snap.get(Counter::NetClientRetries) >= 1, "torn frame never forced a retry");

    drop(client);
    server.shutdown();
    drop(service);
    assert_connections_balanced(&tel);
}

#[test]
fn garbage_byte_surfaces_as_a_typed_error_frame_then_a_clean_close() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let (server, service, tel) = start_stack(NetConfig::default(), 1);
    // No retries: a garbage-corrupted request draws a non-retryable typed
    // error, and this test wants to see exactly that error.
    let mut c = client(&server, Duration::from_secs(5), 0, &tel);

    // A long query name pins the buffer midpoint (where the garbage byte
    // flips) inside the JSON tail, so the corruption deterministically
    // breaks the body rather than silently renaming a relation.
    let q3 = QuerySpec::tpch_q3();
    let query = QuerySpec::new(
        "chaos_garbage_a_name_long_enough_to_cover_the_buffer_midpoint_of_the_frame",
        q3.relations.clone(),
    );
    raqo_faults::arm(Fault::once("net.frame", FaultKind::Nan));
    let err = c
        .plan_with(&query, Priority::Standard, 3, 0)
        .expect_err("a corrupted frame must not plan");
    match &err {
        NetError::Server { .. } | NetError::Protocol(_) | NetError::Io(_) => {}
        other => panic!("garbage fault produced a non-typed outcome: {other:?}"),
    }
    let snap = tel.snapshot().expect("enabled");
    assert!(snap.get(Counter::NetFrameErrors) >= 1, "frame corruption was not counted");

    // The poisoned connection is gone; a fresh one still plans.
    let mut fresh = client(&server, Duration::from_secs(5), 1, &tel);
    let reply = fresh.plan(&q3, Priority::Interactive).expect("post-garbage reply");
    assert!(reply.plan.is_some());

    drop(c);
    drop(fresh);
    server.shutdown();
    drop(service);
    assert_connections_balanced(&tel);
}

#[test]
fn accept_and_write_resets_recover_and_replies_dedup_across_connections() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let (server, service, tel) = start_stack(NetConfig::default(), 1);
    let mut c = client(&server, Duration::from_millis(500), 3, &tel);

    // Reset inside the accept path: the TCP handshake succeeds but the
    // server drops the stream before servicing it.
    raqo_faults::arm(Fault::once("net.accept", FaultKind::Fail));
    let reply = c.plan(&QuerySpec::tpch_q3(), Priority::Interactive).expect("accept-reset retry");
    assert!(reply.plan.is_some());

    // Reset on the write side: the reply is computed and cached in the
    // reply ring, but the connection dies before delivery. The retry on a
    // fresh connection must be answered from the ring — same id, no
    // second planning run.
    let completed_before = service.completed();
    raqo_faults::arm(Fault::once("net.write", FaultKind::Fail));
    let reply = c.plan_with(&QuerySpec::tpch_q12(), Priority::Standard, 2, 0)
        .expect("write-reset retry");
    assert!(reply.plan.is_some());
    let snap = tel.snapshot().expect("enabled");
    assert!(
        snap.get(Counter::NetRepliesDeduped) >= 1,
        "the write-reset retry was not served from the reply ring"
    );
    assert_eq!(
        service.completed(),
        completed_before + 1,
        "the deduped retry must not trigger a second planning run"
    );

    drop(c);
    server.shutdown();
    drop(service);
    assert_connections_balanced(&tel);
}

#[test]
fn non_faulted_requests_bit_match_the_in_process_service() {
    let _serial = lock();
    let _guard = FaultGuard::new();
    let (server, service, tel) = start_stack(NetConfig::default(), 1);
    let twin = start_service(1, &Telemetry::disabled());
    let mut c = client(&server, Duration::from_millis(500), 3, &tel);

    let queries = [QuerySpec::tpch_q3(), QuerySpec::tpch_q12(), QuerySpec::tpch_q2()];
    let mut wire_json: Vec<String> = Vec::new();
    for i in 0..8usize {
        if i == 4 {
            // Mid-stream chaos: the next tick resets the connection. The
            // client's retry is transparent, and because the reset lands
            // before the request is read, each request still plans exactly
            // once, in order — the twin comparison below stays 1:1.
            raqo_faults::arm(Fault::once("net.read", FaultKind::Fail));
        }
        let query = &queries[i % queries.len()];
        let priority = Priority::ALL[i % Priority::ALL.len()];
        let reply = c
            .plan_with(query, priority, i as u32, 0)
            .expect("chaos parity: wire reply");
        wire_json.push(reply.plan_json);
    }
    for (i, wire) in wire_json.iter().enumerate() {
        let query = &queries[i % queries.len()];
        let priority = Priority::ALL[i % Priority::ALL.len()];
        let local = twin
            .submit(PlanRequest::new(query.clone(), priority).with_namespace(i as u32))
            .wait();
        let local_json = serde_json::to_string(&local.plan).expect("twin serializes");
        assert_eq!(
            wire, &local_json,
            "request {i}: wire plan diverged from the in-process answer under chaos"
        );
    }

    drop(c);
    server.shutdown();
    drop(service);
    drop(twin);
    assert_connections_balanced(&tel);
}

/// The deterministic soak: 300 mixed-priority requests over 12 client
/// connections with a scheduled fault roughly every 8th frame probe, plus
/// seeded resets on the accept/read/write paths. The server must answer
/// every request with a plan or a typed error — no hangs, no panics — and
/// afterwards the process must hold exactly as many threads and zero more
/// connections than before the storm.
#[test]
fn soak_survives_one_in_eight_faulted_frames_with_zero_leaks() {
    let _serial = lock();
    let threads_before = threads_now();
    let _guard = FaultGuard::new();
    let (server, service, tel) = start_stack(
        NetConfig {
            max_connections: 64,
            dispatchers: 4,
            dispatch_capacity: 256,
            poll_interval: Duration::from_micros(500),
            ..NetConfig::default()
        },
        4,
    );

    // The schedule: every 8th `net.frame` probe is faulted — mostly
    // garbage bytes, every fifth one a torn frame — and one seeded reset
    // on each transport path.
    for k in 1u64..=40 {
        let kind = if k % 5 == 0 { FaultKind::Fail } else { FaultKind::Nan };
        raqo_faults::arm(Fault::at("net.frame", kind, 8 * k));
    }
    raqo_faults::arm(Fault::seeded("net.accept", FaultKind::Fail, 0xC0FF_EE01, 6));
    raqo_faults::arm(Fault::seeded("net.read", FaultKind::Fail, 0xC0FF_EE02, 400));
    raqo_faults::arm(Fault::seeded("net.write", FaultKind::Fail, 0xC0FF_EE03, 400));

    const CONNECTIONS: usize = 12;
    const PER_CONN: usize = 25;
    let addr = server.local_addr();
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|conn| {
            std::thread::spawn(move || {
                // The read timeout must cover a debug-build planning run
                // plus queue wait behind eleven sibling connections on a
                // cold process; a timed-out request retries as a duplicate
                // planning job, so a too-tight budget compounds the very
                // overload it then fails on.
                let mut client = PlanClient::connect(
                    addr,
                    ClientConfig {
                        read_timeout: Duration::from_millis(1200),
                        retries: 3,
                        backoff_base: Duration::from_millis(2),
                        jitter_seed: conn as u64,
                        ..ClientConfig::default()
                    },
                )
                .expect("soak: connect");
                let queries =
                    [QuerySpec::tpch_q3(), QuerySpec::tpch_q12(), QuerySpec::tpch_q2()];
                let (mut ok, mut typed_err) = (0usize, 0usize);
                for i in 0..PER_CONN {
                    let query = &queries[(conn + i) % queries.len()];
                    let priority = Priority::ALL[(conn + i) % Priority::ALL.len()];
                    match client.plan_with(query, priority, conn as u32, 0) {
                        Ok(reply) => {
                            assert!(reply.plan.is_some(), "soak: reply without a plan");
                            ok += 1;
                        }
                        // Any typed error is an acceptable casualty of the
                        // storm; a panic or a hang is not, and either would
                        // fail the join / overall test timeout instead.
                        Err(_) => typed_err += 1,
                    }
                }
                (ok, typed_err)
            })
        })
        .collect();

    let (mut ok, mut typed_err) = (0usize, 0usize);
    for handle in handles {
        let (o, e) = handle.join().expect("soak: a client thread panicked");
        ok += o;
        typed_err += e;
    }
    assert_eq!(ok + typed_err, CONNECTIONS * PER_CONN, "soak lost a request outcome");
    assert!(
        ok >= CONNECTIONS * PER_CONN / 2,
        "the storm ate the majority of requests: {ok} ok / {typed_err} errors"
    );

    // Drain with the faults still armed: shutdown itself must survive the
    // schedule. Then account for every resource.
    server.shutdown();
    drop(service);
    drop(_guard);
    assert!(!raqo_faults::armed(), "soak: faults leaked");
    assert_connections_balanced(&tel);

    // Thread accounting: every server, dispatcher, worker, and client
    // thread must be joined. Detached threads would show up here.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = threads_now();
        if now <= threads_before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "soak leaked threads: {threads_before} before, {now} after"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
