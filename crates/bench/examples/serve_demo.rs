//! Demo of the wire front end: a `raqo-net` planning server under a
//! mixed-priority workload fired by retrying clients.
//!
//! ```text
//! cargo run -p raqo-bench --example serve_demo
//! ```
//!
//! Binds a [`raqo_net::PlanServer`] on a loopback port, then runs one
//! closed-loop [`raqo_net::PlanClient`] per priority class (interactive /
//! standard / batch, each its own tenant namespace and TCP connection)
//! against a TPC-H query mix. Interactive requests carry a deadline
//! budget; batch requests run unbounded. Afterwards the demo prints
//! per-class end-to-end latency percentiles (the same nearest-rank
//! [`raqo_sim::percentile`] the queue simulator uses), the server's
//! shed/dedup/frame counters, and drains gracefully — the same walkthrough
//! as `repro --serve` plus `repro --client`, in one process.

use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::QuerySpec;
use raqo_core::{
    PlannerKind, PlanningService, Priority, RaqoOptimizer, ResourceStrategy, ServiceConfig,
    Telemetry,
};
use raqo_cost::JoinCostModel;
use raqo_net::{ClientConfig, NetConfig, PlanClient, PlanServer};
use raqo_resource::{CacheLookup, ClusterConditions, ShardedCacheBank};
use raqo_sim::percentile;
use raqo_telemetry::Counter;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const REQUESTS_PER_CLASS: usize = 24;

fn model() -> &'static JoinCostModel {
    static MODEL: OnceLock<JoinCostModel> = OnceLock::new();
    MODEL.get_or_init(JoinCostModel::trained_hive)
}

fn schema() -> &'static TpchSchema {
    static SCHEMA: OnceLock<TpchSchema> = OnceLock::new();
    SCHEMA.get_or_init(|| TpchSchema::new(1.0))
}

fn build_optimizer(_worker: usize) -> RaqoOptimizer<'static, JoinCostModel> {
    let schema = schema();
    RaqoOptimizer::new(
        Arc::new(schema.catalog.clone()),
        Arc::new(schema.graph.clone()),
        model(),
        ClusterConditions::paper_default(),
        PlannerKind::Selinger,
        ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.05 }),
    )
}

fn main() {
    let tel = Telemetry::enabled();
    let service = Arc::new(PlanningService::start(
        ServiceConfig { workers: 2, ..Default::default() },
        ShardedCacheBank::with_shards(8),
        tel.clone(),
        build_optimizer,
    ));
    let server = PlanServer::bind("127.0.0.1:0", NetConfig::default(), service.clone(), tel.clone())
        .expect("serve demo: bind");
    let addr = server.local_addr();
    println!("raqo-net serving RQNW v1 on {addr} (2 planning workers)\n");

    // One retrying client per priority class, each on its own connection
    // and tenant namespace. Interactive traffic carries a 250 ms deadline
    // budget: if the queue eats it, the server still answers — from the
    // ladder's zero-evaluation rung, flagged — instead of planning stale.
    let classes: [(Priority, u32); 3] =
        [(Priority::Interactive, 250), (Priority::Standard, 0), (Priority::Batch, 0)];
    let handles: Vec<_> = classes
        .map(|(priority, deadline_ms)| {
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(
                    addr,
                    ClientConfig { retries: 3, ..ClientConfig::default() },
                )
                .expect("serve demo: connect");
                let queries =
                    [QuerySpec::tpch_q3(), QuerySpec::tpch_q12(), QuerySpec::tpch_q2()];
                let mut latencies_us = Vec::with_capacity(REQUESTS_PER_CLASS);
                let mut expired = 0u64;
                for i in 0..REQUESTS_PER_CLASS {
                    let sent = Instant::now();
                    let reply = client
                        .plan_with(
                            &queries[i % queries.len()],
                            priority,
                            priority as u32,
                            deadline_ms,
                        )
                        .expect("serve demo: every request must be answered");
                    latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                    assert!(reply.plan.is_some(), "serve demo: reply without a plan");
                    if reply.deadline_expired {
                        expired += 1;
                    }
                }
                (priority, latencies_us, expired)
            })
        })
        .into_iter()
        .collect();

    println!(
        "{:>12}  {:>9}  {:>12}  {:>12}  {:>12}  {:>8}",
        "class", "requests", "p50 (ms)", "p95 (ms)", "p99 (ms)", "expired"
    );
    for handle in handles {
        let (priority, latencies_us, expired) =
            handle.join().expect("serve demo: client thread");
        println!(
            "{:>12}  {:>9}  {:>12.2}  {:>12.2}  {:>12.2}  {:>8}",
            priority.name(),
            latencies_us.len(),
            percentile(&latencies_us, 50.0) / 1e3,
            percentile(&latencies_us, 95.0) / 1e3,
            percentile(&latencies_us, 99.0) / 1e3,
            expired,
        );
    }

    // Graceful drain: stop accepting, flush in-flight replies, checkpoint
    // the cache bank, close every connection, join every thread.
    let sleep_a_tick = Duration::from_millis(5);
    while server.in_flight() > 0 {
        std::thread::sleep(sleep_a_tick);
    }
    server.shutdown();
    drop(service);

    let snap = tel.snapshot().expect("enabled");
    println!(
        "\ndrained: {} connection(s), {} frames in / {} out, {} frame error(s), \
         {} reply(ies) deduped, {} client retries, shed {} overload / {} deadline",
        snap.get(Counter::NetConnectionsOpened),
        snap.get(Counter::NetFramesIn),
        snap.get(Counter::NetFramesOut),
        snap.get(Counter::NetFrameErrors),
        snap.get(Counter::NetRepliesDeduped),
        snap.get(Counter::NetClientRetries),
        snap.get(Counter::NetShedOverloaded),
        snap.get(Counter::NetShedDeadline),
    );
    assert_eq!(
        snap.get(Counter::NetConnectionsOpened),
        snap.get(Counter::NetConnectionsClosed),
        "serve demo: a connection leaked"
    );
}
