//! Demo of the concurrent planning service: priority classes, per-class
//! budgets, admission control, and graceful degradation under overload.
//!
//! ```text
//! cargo run -p raqo-bench --example service_demo
//! ```
//!
//! Starts a deliberately small `PlanningService` (2 workers, an 8-slot
//! queue), floods it with a 32-request burst across three priority
//! classes and four tenant namespaces, and prints what came back:
//! admitted requests are planned on the worker pool under their class
//! budget, shed requests are planned inline under a zero-evaluation
//! budget and arrive annotated with the ladder rung that produced
//! them. No request is refused. Same walkthrough as
//! `repro --service-demo`.

fn main() {
    raqo_bench::throughput::service_demo();
}
