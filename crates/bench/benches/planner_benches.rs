//! Criterion benches for the planner-facing experiments (Figs. 12–15):
//! the planning paths whose *runtimes* the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqo_catalog::tpch::TpchSchema;
use raqo_catalog::{QuerySpec, RandomSchema, RandomSchemaConfig};
use raqo_core::{Parallelism, PlannerKind, RaqoOptimizer, ResourceStrategy, Telemetry};
use raqo_cost::JoinCostModel;
use raqo_planner::coster::FixedResourceCoster;
use raqo_planner::{DpFill, IdpConfig, IdpPlanner, RandomizedConfig, SelingerPlanner};
use raqo_resource::{CacheLookup, ClusterConditions};
use std::hint::black_box;

fn fast_randomized() -> PlannerKind {
    PlannerKind::FastRandomized(RandomizedConfig {
        restarts: 4,
        rounds_per_join: 4,
        epsilon: 0.05,
        seed: 17,
        memoize: false,
    })
}

/// Fig. 12: QO vs RAQO planning time per TPC-H query (Selinger).
fn fig12_raqo_planning(c: &mut Criterion) {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::paper_default();
    let mut group = c.benchmark_group("fig12_raqo_planning");
    for query in QuerySpec::tpch_suite(&schema) {
        group.bench_with_input(BenchmarkId::new("qo", &query.name), &query, |b, q| {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::Selinger,
                ResourceStrategy::HillClimb,
            );
            b.iter(|| black_box(opt.plan_for_resources(q, 10.0, 4.0)));
        });
        group.bench_with_input(BenchmarkId::new("raqo", &query.name), &query, |b, q| {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::Selinger,
                ResourceStrategy::HillClimb,
            );
            b.iter(|| black_box(opt.optimize(q)));
        });
    }
    group.finish();
}

/// Fig. 13: brute force vs hill climbing on the All query.
fn fig13_hillclimb(c: &mut Criterion) {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::paper_default();
    let query = QuerySpec::tpch_all(&schema);
    let mut group = c.benchmark_group("fig13_hillclimb");
    group.sample_size(10);
    for (name, strategy) in [
        ("brute_force", ResourceStrategy::BruteForce),
        ("hill_climb", ResourceStrategy::HillClimb),
    ] {
        group.bench_function(name, |b| {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::Selinger,
                strategy,
            );
            b.iter(|| black_box(opt.optimize(&query)));
        });
    }
    group.finish();
}

/// Fig. 14: hill climbing with and without the resource-plan cache.
fn fig14_cache(c: &mut Criterion) {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::paper_default();
    let query = QuerySpec::tpch_all(&schema);
    let mut group = c.benchmark_group("fig14_cache");
    let variants: [(&str, ResourceStrategy); 3] = [
        ("hc_uncached", ResourceStrategy::HillClimb),
        (
            "hc_cache_nn_0.01",
            ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor { threshold: 0.01 }),
        ),
        (
            "hc_cache_wa_0.1",
            ResourceStrategy::HillClimbCached(CacheLookup::WeightedAverage { threshold: 0.1 }),
        ),
    ];
    for (name, strategy) in variants {
        group.bench_function(name, |b| {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::Selinger,
                strategy,
            );
            b.iter(|| {
                // Per-query caching: cold cache each run, as the paper
                // measures it.
                opt.clear_cache();
                black_box(opt.optimize(&query))
            });
        });
    }
    group.finish();
}

/// Fig. 15(a): planning a growing random join with the randomized planner.
fn fig15_scale(c: &mut Criterion) {
    let schema = RandomSchemaConfig::with_tables(100, 5).generate();
    let model = JoinCostModel::trained_hive_extended();
    let cluster = ClusterConditions::paper_default();
    let mut group = c.benchmark_group("fig15_scale");
    group.sample_size(10);
    for k in [16usize, 44, 100] {
        let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, k, k as u64);
        group.bench_with_input(BenchmarkId::new("raqo_cached", k), &query, |b, q| {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                fast_randomized(),
                ResourceStrategy::HillClimbCached(CacheLookup::NearestNeighbor {
                    threshold: 0.01,
                }),
            );
            b.iter(|| {
                opt.clear_cache();
                black_box(opt.optimize(q))
            });
        });
    }
    group.finish();
}

/// The joint-planning hot path: fast randomized planner + brute-force
/// resource planning, sequential baseline vs sub-plan memoization vs
/// memoization + parallel grid scan (the `BENCH_planner.json` modes at
/// criterion-friendly sizes).
fn planner_speedup(c: &mut Criterion) {
    let schema = RandomSchemaConfig::with_tables(24, 5).generate();
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0);
    let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, 24, 3);
    let config = |memoize: bool| RandomizedConfig {
        restarts: 1,
        rounds_per_join: 2,
        epsilon: 0.05,
        seed: 17,
        memoize,
    };
    let mut group = c.benchmark_group("planner_speedup");
    group.sample_size(10);
    let modes: [(&str, Parallelism, bool); 3] = [
        ("sequential", Parallelism::Off, false),
        ("memoized", Parallelism::Off, true),
        ("parallel_memoized", Parallelism::Auto, true),
    ];
    for (name, parallelism, memoize) in modes {
        group.bench_function(name, |b| {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::FastRandomized(config(memoize)),
                ResourceStrategy::BruteForce,
            );
            opt.set_parallelism(parallelism);
            b.iter(|| black_box(opt.optimize(&query)));
        });
    }

    // The Selinger DP through the same ladder: scalar baseline vs the
    // batched cost kernel vs batched + parallel DP levels (all brute-force
    // resource planning, all bit-identical plans).
    let selinger_query = QuerySpec::random_connected(&schema.catalog, &schema.graph, 8, 3);
    let selinger_modes: [(&str, Parallelism, bool); 3] = [
        ("selinger_scalar", Parallelism::Off, false),
        ("selinger_batched", Parallelism::Off, true),
        ("selinger_parallel", Parallelism::Auto, true),
    ];
    for (name, parallelism, batch) in selinger_modes {
        group.bench_function(name, |b| {
            let mut opt = RaqoOptimizer::new(
                &schema.catalog,
                &schema.graph,
                &model,
                cluster,
                PlannerKind::Selinger,
                ResourceStrategy::BruteForce,
            );
            opt.set_parallelism(parallelism);
            opt.set_batch_kernel(batch);
            b.iter(|| black_box(opt.optimize(&selinger_query)));
        });
    }
    group.finish();
}

/// The u64-mask DP at the widened threshold: a 20-relation chain (the
/// sparse best case that now fits exhaustive DP) and a 16-relation star
/// (the dense adversarial case), dense table vs the two-level streamed
/// fill. Plain join ordering at fixed resources isolates the DP itself.
fn selinger_u64(c: &mut Criterion) {
    let model = JoinCostModel::trained_hive();
    let mut group = c.benchmark_group("selinger_u64");
    group.sample_size(10);
    let workloads =
        [("chain_20", RandomSchema::chain(20, 20)), ("star_16", RandomSchema::star(16, 16))];
    for (name, schema) in &workloads {
        let query = QuerySpec::new(*name, schema.catalog.table_ids().collect::<Vec<_>>());
        for (fill_name, fill) in [("dense", DpFill::Dense), ("streamed", DpFill::Streamed)] {
            group.bench_with_input(BenchmarkId::new(*name, fill_name), &query, |b, q| {
                b.iter(|| {
                    let mut coster = FixedResourceCoster::new(&model, 10.0, 4.0);
                    black_box(SelingerPlanner::plan_opts(
                        &schema.catalog,
                        &schema.graph,
                        q,
                        &mut coster,
                        raqo_resource::Parallelism::Off,
                        None,
                        &raqo_telemetry::Telemetry::disabled(),
                        raqo_planner::selinger::DEFAULT_DP_THRESHOLD,
                        fill,
                    ))
                });
            });
        }
    }
    group.finish();
}

/// The IDP bridge past the exhaustive threshold: 32-relation chain and
/// 24-relation star at the default block size, fixed resources.
fn idp_bridge(c: &mut Criterion) {
    let model = JoinCostModel::trained_hive();
    let mut group = c.benchmark_group("idp_bridge");
    group.sample_size(10);
    let workloads =
        [("chain_32", RandomSchema::chain(32, 32)), ("star_24", RandomSchema::star(24, 24))];
    for (name, schema) in &workloads {
        let query = QuerySpec::new(*name, schema.catalog.table_ids().collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::from_parameter(name), &query, |b, q| {
            b.iter(|| {
                let mut coster = FixedResourceCoster::new(&model, 10.0, 4.0);
                black_box(IdpPlanner::plan(
                    &schema.catalog,
                    &schema.graph,
                    q,
                    &mut coster,
                    IdpConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

/// The §VI cost kernel in isolation: the scalar fold vs the dispatching
/// batch entry point — the explicit AVX2 kernel when built with
/// `--features simd` on an AVX2 machine, the same scalar fold otherwise
/// (the benchmark id names which one ran). Outputs are asserted bitwise
/// identical across the full 10 000-point grid before timing starts.
fn cost_kernel_simd(c: &mut Criterion) {
    use raqo_sim::engine::JoinImpl;
    let cluster = ClusterConditions::two_dim(1.0..=1000.0, 1.0..=10.0, 1.0, 1.0);
    let configs: Vec<raqo_resource::ResourceConfig> = cluster.grid().collect();
    let models = [
        ("paper", JoinCostModel::trained_hive()),
        ("extended", JoinCostModel::trained_hive_extended()),
    ];
    let dispatch = if raqo_cost::simd_active() { "avx2" } else { "dispatch_scalar" };
    let mut group = c.benchmark_group("cost_kernel_simd");
    for (map, model) in &models {
        let mut fast = vec![0.0; configs.len()];
        let mut scalar = vec![0.0; configs.len()];
        model.join_cost_batch(JoinImpl::SortMerge, 4.0, &configs, &mut fast);
        model.join_cost_batch_scalar(JoinImpl::SortMerge, 4.0, &configs, &mut scalar);
        assert!(
            fast.iter().zip(&scalar).all(|(f, s)| f.to_bits() == s.to_bits()),
            "cost_kernel_simd: kernel paths diverge on the {map} map"
        );
        group.bench_function(BenchmarkId::new("scalar", map), |b| {
            let mut out = vec![0.0; configs.len()];
            b.iter(|| {
                model.join_cost_batch_scalar(
                    JoinImpl::SortMerge,
                    4.0,
                    black_box(&configs),
                    &mut out,
                );
                black_box(out.last().copied())
            })
        });
        group.bench_function(BenchmarkId::new(dispatch, map), |b| {
            let mut out = vec![0.0; configs.len()];
            b.iter(|| {
                model.join_cost_batch(JoinImpl::SortMerge, 4.0, black_box(&configs), &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

/// Multi-start hill climbing through the optimizer: the per-seed climber
/// vs the lock-step batched climber (`use_batch` gathers each round's
/// whole candidate neighborhood into one batched cost call). Plans and
/// accounting are asserted identical across both modes before timing
/// starts, telemetry_overhead-style.
fn hill_climb_batched(c: &mut Criterion) {
    let schema = TpchSchema::new(1.0);
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::two_dim(1.0..=200.0, 1.0..=10.0, 1.0, 1.0);
    let query = QuerySpec::tpch_all(&schema);
    let make_opt = |batch: bool| {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            cluster,
            PlannerKind::Selinger,
            ResourceStrategy::HillClimb,
        );
        opt.set_parallelism(Parallelism::Threads(2));
        opt.set_batch_kernel(batch);
        opt
    };
    let per_seed = make_opt(false).optimize(&query).expect("plan");
    let batched = make_opt(true).optimize(&query).expect("plan");
    assert_eq!(per_seed.query, batched.query, "batched climb changed the plan");
    assert_eq!(per_seed.stats, batched.stats, "batched climb changed the accounting");

    let mut group = c.benchmark_group("hill_climb_batched");
    group.sample_size(10);
    for (name, batch) in [("per_seed", false), ("batched", true)] {
        group.bench_function(name, |b| {
            let mut opt = make_opt(batch);
            b.iter(|| black_box(opt.optimize(&query)));
        });
    }
    group.finish();
}

/// The telemetry no-op gate: the selinger_batched workload with the
/// default disabled sink must match the PR-2 baseline (every
/// instrumentation site is a branch on `None`), and the enabled sink's
/// price is measured alongside. Plans are asserted bit-identical across
/// both modes before timing starts.
fn telemetry_overhead(c: &mut Criterion) {
    let schema = RandomSchemaConfig::with_tables(24, 5).generate();
    let model = JoinCostModel::trained_hive();
    let cluster = ClusterConditions::two_dim(1.0..=50.0, 1.0..=8.0, 1.0, 1.0);
    let query = QuerySpec::random_connected(&schema.catalog, &schema.graph, 8, 3);
    let make_opt = |telemetry: Telemetry| {
        let mut opt = RaqoOptimizer::new(
            &schema.catalog,
            &schema.graph,
            &model,
            cluster,
            PlannerKind::Selinger,
            ResourceStrategy::BruteForce,
        );
        opt.set_parallelism(Parallelism::Off);
        opt.set_batch_kernel(true);
        opt.set_telemetry(telemetry);
        opt
    };
    // Telemetry must not change the answer, only observe it.
    let baseline = make_opt(Telemetry::disabled()).optimize(&query).expect("plan");
    let traced_tel = Telemetry::enabled();
    let traced = make_opt(traced_tel.clone()).optimize(&query).expect("plan");
    assert_eq!(baseline.query, traced.query, "telemetry changed the plan");
    assert_eq!(baseline.stats, traced.stats, "telemetry changed the accounting");

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("selinger_batched_disabled", |b| {
        let mut opt = make_opt(Telemetry::disabled());
        b.iter(|| black_box(opt.optimize(&query)));
    });
    group.bench_function("selinger_batched_enabled", |b| {
        let tel = Telemetry::enabled();
        let mut opt = make_opt(tel.clone());
        b.iter(|| {
            // Bound the span store: each iteration traces from a clean
            // slate, as `repro --trace` does per query.
            tel.clear_spans();
            black_box(opt.optimize(&query))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    fig12_raqo_planning,
    fig13_hillclimb,
    fig14_cache,
    fig15_scale,
    planner_speedup,
    selinger_u64,
    idp_bridge,
    cost_kernel_simd,
    hill_climb_batched,
    telemetry_overhead
);
criterion_main!(benches);
