//! Criterion micro-benches for the substrates the planning experiments
//! lean on: resource-space search primitives, the cache, cost-model
//! evaluation, CART training, and the simulator sweeps behind Figs. 1–9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqo_cost::features::feature_vector;
use raqo_cost::{JoinCostModel, OperatorCost};
use raqo_dtree::{CartConfig, Sample};
use raqo_resource::{
    brute_force, hill_climb, CacheLookup, ClusterConditions, ResourceConfig, ResourcePlanCache,
};
use raqo_sim::engine::{Engine, JoinImpl};
use raqo_sim::profile::{labeled_grid, ProfileGrid};
use raqo_sim::queue::{simulate, QueueSimConfig};
use raqo_sim::sweeps::switch_point_small_size;
use std::hint::black_box;

/// The §VI-B search primitives on the learned quadratic surface.
fn resource_search(c: &mut Criterion) {
    let model = JoinCostModel::trained_hive();
    let cost = |r: &ResourceConfig| -> f64 {
        model
            .join_cost(JoinImpl::SortMerge, 2.0, 77.0, r.containers(), r.container_size_gb())
            .unwrap()
    };
    let mut group = c.benchmark_group("resource_search");
    for (name, cluster) in [
        ("100x10", ClusterConditions::paper_default()),
        ("1000x10", ClusterConditions::two_dim(1.0..=1000.0, 1.0..=10.0, 1.0, 1.0)),
    ] {
        group.bench_function(BenchmarkId::new("brute_force", name), |b| {
            b.iter(|| black_box(brute_force(&cluster, cost)))
        });
        group.bench_function(BenchmarkId::new("hill_climb", name), |b| {
            b.iter(|| black_box(hill_climb(&cluster, cluster.min, cost)))
        });
    }
    group.finish();
}

/// Sorted-array cache lookups at growing cache sizes.
fn cache_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_lookup");
    for n in [16usize, 256, 4096] {
        let mut cache = ResourcePlanCache::new();
        for i in 0..n {
            cache.insert(i as f64, ResourceConfig::containers_and_size(10.0, 4.0));
        }
        group.bench_with_input(BenchmarkId::new("exact_hit", n), &n, |b, &n| {
            b.iter(|| black_box(cache.lookup((n / 2) as f64, CacheLookup::Exact)))
        });
        group.bench_with_input(BenchmarkId::new("nn_miss_then_near", n), &n, |b, &n| {
            b.iter(|| {
                black_box(cache.lookup(
                    n as f64 / 2.0 + 0.25,
                    CacheLookup::NearestNeighbor { threshold: 0.5 },
                ))
            })
        });
    }
    group.finish();
}

/// One learned-model prediction (the hot operation of all planning).
fn cost_model_eval(c: &mut Criterion) {
    let model = JoinCostModel::trained_hive();
    c.bench_function("cost_model/predict", |b| {
        b.iter(|| black_box(model.join_cost(JoinImpl::SortMerge, 2.0, 77.0, 40.0, 6.0)))
    });
    c.bench_function("cost_model/feature_vector", |b| {
        b.iter(|| black_box(feature_vector(2.0, 6.0, 40.0)))
    });
}

/// CART training on the Fig. 11 grid (the §V "one-time investment").
fn cart_training(c: &mut Criterion) {
    let engine = Engine::hive();
    let grid = ProfileGrid::paper_default();
    let samples: Vec<Sample> = labeled_grid(&engine, &grid)
        .into_iter()
        .map(|l| Sample::new(l.features().to_vec(), (l.best == JoinImpl::SortMerge) as usize))
        .collect();
    c.bench_function("cart/fit_fig11_grid", |b| {
        b.iter(|| {
            black_box(CartConfig::default().fit(
                &samples,
                vec!["d".into(), "cs".into(), "nc".into(), "tc".into()],
                vec!["BHJ".into(), "SMJ".into()],
            ))
        })
    });
}

/// The simulator paths behind Figs. 1, 4, and 9.
fn simulator(c: &mut Criterion) {
    let engine = Engine::hive();
    c.bench_function("sim/join_time", |b| {
        b.iter(|| black_box(engine.join_time(JoinImpl::SortMerge, 3.4, 77.0, 20.0, 3.0)))
    });
    c.bench_function("sim/switch_point", |b| {
        b.iter(|| black_box(switch_point_small_size(&engine, 77.0, 10.0, 9.0, 0.1, 12.0)))
    });
    let mut group = c.benchmark_group("sim/queue");
    group.sample_size(10);
    group.bench_function("fig1_default_workload", |b| {
        b.iter(|| black_box(simulate(&QueueSimConfig::default())))
    });
    group.finish();
}

criterion_group!(
    benches,
    resource_search,
    cache_lookup,
    cost_model_eval,
    cart_training,
    simulator
);
criterion_main!(benches);
