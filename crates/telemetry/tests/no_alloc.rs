//! Disabled-mode no-allocation check: the no-op sink must not touch the
//! allocator on any instrumentation path. A counting global allocator
//! tracks per-thread allocation counts; the disabled-telemetry hot loop
//! must leave the count unchanged.

use raqo_telemetry::{Counter, Gauge, Hist, Telemetry, TraceFlags};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates to `System` unchanged; only a thread-local counter is
// updated alongside.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn disabled_telemetry_does_not_allocate() {
    let tel = Telemetry::disabled();
    // Warm up thread-locals and lazy statics outside the measured window.
    {
        let _s = tel.span("warmup");
        tel.inc(Counter::PlanCostCalls);
    }

    let before = allocations();
    for i in 0..10_000 {
        let _root = tel.span("optimize");
        let _level = tel.span_labeled("selinger.level", i % 8);
        tel.inc(Counter::PlanCostCalls);
        tel.add(Counter::ResourceIterations, 17);
        tel.observe(Hist::PlanCostLatencyUs, 42);
        let sw = tel.stopwatch();
        tel.observe_elapsed_us(Hist::PlanCostLatencyUs, &sw);
        // Contention metrics: per-shard lookup counters, the lock-wait
        // histogram, and the queue-depth gauge must be equally free.
        tel.inc(Counter::cache_shard(i % 16));
        tel.observe(Hist::CacheLockWaitUs, 3);
        tel.gauge_add(Gauge::ServiceQueueDepth, 1);
        tel.gauge_set(Gauge::ServiceQueueDepth, 0);
        // The trace pipeline must be equally free when disabled: inert
        // contexts, no-op flags, and inert cross-thread scope tokens.
        let trace = tel.start_trace("plan.ticket");
        trace.attr("tenant.namespace", i);
        trace.flag(TraceFlags::DEGRADED);
        {
            let _in_trace = trace.enter();
            tel.flag_current_trace(TraceFlags::BUDGET_EXHAUSTED);
            let token = tel.current_scope();
            let _in_scope = tel.enter_scope(token);
        }
        trace.finish();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated {} times in the hot loop",
        after - before
    );
}

#[test]
fn enabled_telemetry_still_works_under_counting_allocator() {
    let tel = Telemetry::enabled();
    {
        let _root = tel.span("optimize");
        tel.inc(Counter::PlanCostCalls);
    }
    assert_eq!(tel.spans().len(), 1);
    assert_eq!(tel.snapshot().unwrap().get(Counter::PlanCostCalls), 1);
}
