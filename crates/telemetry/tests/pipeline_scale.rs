//! Service-scale trace-pipeline guarantees: under 1% head sampling on a
//! 100k+-span workload, completed-ring memory stays bounded by its span
//! capacity while every flagged (degraded/panicked/budget-exhausted)
//! ticket is retained in the export, and the OTLP-shaped JSON round-trips
//! through a real JSON parser.

use raqo_telemetry::{Telemetry, TraceConfig, TraceFlags};

const TICKETS: usize = 2_000;
const SPANS_PER_TICKET: usize = 60; // 120k spans total
const FLAG_EVERY: usize = 50; // 40 flagged tickets
const RING_CAPACITY: usize = 8_192;

#[test]
fn sampled_pipeline_bounds_memory_and_keeps_every_flagged_ticket() {
    let tel = Telemetry::with_trace_config(TraceConfig {
        head_rate: 0.01,
        seed: 42,
        completed_span_capacity: RING_CAPACITY,
        ..TraceConfig::default()
    });

    let mut flagged_ids: Vec<u128> = Vec::new();
    for t in 0..TICKETS {
        let trace = tel.start_trace("plan.ticket");
        trace.attr("tenant.namespace", t % 7);
        {
            let _in_trace = trace.enter();
            let _phase = tel.span("optimize");
            for s in 0..SPANS_PER_TICKET - 2 {
                let _leaf = tel.span_labeled("plan_cost", s);
            }
        }
        if t % FLAG_EVERY == 0 {
            trace.flag(TraceFlags::DEGRADED);
            flagged_ids.push(trace.trace_id());
        }
        trace.finish();
    }

    // Memory bound: 120k spans were recorded, but the completed ring
    // holds at most its configured span capacity.
    assert!(flagged_ids.len() == TICKETS / FLAG_EVERY);
    assert!(
        tel.completed_span_count() <= RING_CAPACITY,
        "completed ring holds {} spans, capacity {}",
        tel.completed_span_count(),
        RING_CAPACITY
    );
    assert_eq!(tel.active_trace_count(), 0);

    let snap = tel.snapshot().unwrap();
    use raqo_telemetry::Counter;
    assert_eq!(snap.get(Counter::TracesStarted), TICKETS as u64);
    let retained = snap.get(Counter::TracesRetained);
    let sampled_out = snap.get(Counter::TracesSampledOut);
    assert_eq!(retained + sampled_out, TICKETS as u64);
    // 1% head rate: retention is flagged tickets plus a ~1% head sample,
    // nowhere near the full workload.
    assert!(
        retained >= flagged_ids.len() as u64 && retained < 200,
        "retained {retained} of {TICKETS}"
    );

    // Tail guarantee: 100% of flagged tickets survive sampling AND ring
    // eviction, each with its root span and flag intact.
    let completed = tel.completed_traces();
    for id in &flagged_ids {
        let trace = completed
            .iter()
            .find(|t| t.trace_id == *id)
            .unwrap_or_else(|| panic!("flagged trace {id:x} missing from completed ring"));
        assert!(trace.flags.contains(TraceFlags::DEGRADED));
        assert!(trace.retained);
        assert_eq!(trace.root().expect("root survives").name, "plan.ticket");
        assert_eq!(trace.spans.len(), SPANS_PER_TICKET);
    }

    // The export carries them too, and the OTLP-shaped JSON survives a
    // real parser (ids as 32/16-digit hex, timestamps as strings).
    let otlp = tel.otlp_json();
    let parsed = serde_json::from_str(&otlp).expect("OTLP JSON parses");
    let serde::Value::Object(top) = &parsed else { panic!("OTLP root is an object") };
    assert!(top.iter().any(|(k, _)| k == "resourceSpans"));
    for id in &flagged_ids {
        assert!(
            otlp.contains(&format!("{id:032x}")),
            "flagged trace {id:x} missing from OTLP export"
        );
    }
}
