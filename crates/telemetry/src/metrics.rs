//! The metrics registry: enum-indexed atomic counters and fixed-bucket
//! histograms, snapshotted into JSON or Prometheus text format.
//!
//! Counters are the source of truth for everything `RaqoStats` reports —
//! the stats struct is a *view* over a registry snapshot, so the two can
//! never diverge. Histograms use fixed bucket boundaries chosen once at
//! compile time: no locks, no allocation on the observe path.

use serde::Value;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Every counter the optimizer stack increments. The discriminant is the
/// index into the registry's atomic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `getPlanCost` invocations (one per join operator costed).
    PlanCostCalls,
    /// Resource-planning iterations across all strategies (paper Fig. 13).
    ResourceIterations,
    /// Resource-plan cache hits answered by an exact-key match.
    CacheHitsExact,
    /// Cache hits answered by nearest-neighbor lookup.
    CacheHitsNearest,
    /// Cache hits answered by weighted-average interpolation.
    CacheHitsWeighted,
    /// Cache lookups that missed and fell through to planning.
    CacheMisses,
    /// Cross-run Selinger memo probes that hit.
    MemoHits,
    /// Cross-run Selinger memo probes that missed.
    MemoMisses,
    /// Memo entries evicted by the per-context LRU cap.
    MemoEvictions,
    /// Persisted cache files discarded on load (model fingerprint mismatch).
    CacheFileInvalidations,
    /// Batched-kernel chunk evaluations (one per grid chunk).
    BatchChunks,
    /// Hill-climb searches launched (multi-start counts each start).
    HillClimbClimbs,
    /// Lock-step rounds executed by the batched multi-start climber (one
    /// per whole-neighborhood sweep over all live seeds).
    HillClimbBatchedRounds,
    /// Randomized-planner improvement rounds executed.
    RandomizedRounds,
    /// Selinger DP levels filled.
    SelingerLevels,
    /// IDP collapse rounds executed (block DP + merge).
    IdpRounds,
    /// Rule-based (decision tree) join dispatches.
    RuleDispatches,
    /// Spans discarded because the span store hit its cap.
    SpansDropped,
    /// Planner/coster worker threads that panicked and were recovered by
    /// the sequential fallback.
    WorkerPanics,
    /// Non-finite or negative model outputs mapped to "infeasible" at the
    /// scalar cost boundary.
    CostSanitizationsScalar,
    /// Non-finite-but-not-+Inf or negative outputs sanitized in the batched
    /// cost kernel (+Inf alone is the kernel's legitimate OOM signal).
    CostSanitizationsBatch,
    /// Relation-bound queries bridged with the IDP planner instead of
    /// dropping to the randomized rung.
    DegradationsIdpBridge,
    /// Degradations to ladder rung 2 (randomized planner).
    DegradationsRandomized,
    /// Degradations to ladder rung 3 (rule-based RAQO).
    DegradationsRuleBased,
    /// Sharded-cache lookups routed to shard bucket 0. Shard indices fold
    /// onto [`SHARD_LABEL_BUCKETS`] label buckets via `index % 8`, so banks
    /// with more than 8 shards still split their traffic across all eight
    /// labels (the fold is the identity for N ≤ 8, which covers the default
    /// `next_pow2(2×cores)` on small machines).
    CacheShardLookups0,
    /// Shard bucket 1 (see [`Counter::CacheShardLookups0`]).
    CacheShardLookups1,
    /// Shard bucket 2.
    CacheShardLookups2,
    /// Shard bucket 3.
    CacheShardLookups3,
    /// Shard bucket 4.
    CacheShardLookups4,
    /// Shard bucket 5.
    CacheShardLookups5,
    /// Shard bucket 6.
    CacheShardLookups6,
    /// Shard bucket 7.
    CacheShardLookups7,
    /// Requests admitted into the planning service's bounded queue.
    ServiceAdmitted,
    /// Requests shed at admission (queue full): planned inline at the
    /// bottom degradation rung instead of waiting.
    ServiceShed,
    /// Requests completed by a service worker (shed requests excluded).
    ServiceCompleted,
    /// Ticket traces started via `Telemetry::start_trace`.
    TracesStarted,
    /// Finished traces retained by head or tail sampling.
    TracesRetained,
    /// Finished traces discarded by head sampling (no retention flags).
    TracesSampledOut,
    /// Retained traces evicted from the completed ring to stay under its
    /// span-count capacity (oldest unflagged first).
    TracesEvicted,
    /// Flight-recorder dumps written to disk.
    FlightDumps,
    /// Cache-bank entries evicted by compaction (cold/stale entries past
    /// the configured high-water mark).
    CacheEvictions,
    /// TCP connections accepted by the plan server.
    NetConnectionsOpened,
    /// TCP connections closed by the plan server (every open eventually
    /// pairs with a close; the difference is the live-connection count).
    NetConnectionsClosed,
    /// Wire frames decoded from clients.
    NetFramesIn,
    /// Wire frames written to clients.
    NetFramesOut,
    /// Inbound frames rejected as malformed (bad magic/version, oversized,
    /// torn, or an undecodable body) and answered with a typed error frame.
    NetFrameErrors,
    /// Requests shed by the server because the dispatch queue was full,
    /// answered with an `Overloaded` error frame.
    NetShedOverloaded,
    /// Connections shed at accept because the connection cap was reached.
    NetShedConnCap,
    /// Requests whose deadline budget had already expired when a dispatcher
    /// picked them up (planned at the zero-eval rung, not stale).
    NetShedDeadline,
    /// Connections dropped because the peer stopped reading and its
    /// buffered reply backlog hit the per-connection output cap.
    NetShedSlowReader,
    /// Retransmitted requests answered from the server's reply ring instead
    /// of being re-planned (request-id idempotence).
    NetRepliesDeduped,
    /// Idle connections closed by the reaper (slow-loris defense).
    NetIdleReaped,
    /// Client-side retry attempts (reconnect + resend of the same request
    /// id after an error, timeout, or overload reply).
    NetClientRetries,
    /// Logical groups materialized by the Cascades memo search.
    CascadesGroups,
    /// Join expressions materialized (after dedup) by the Cascades memo.
    CascadesExpressions,
    /// Tasks popped off the Cascades task stack.
    CascadesTasks,
    /// Cascades memo searches cut short by the planning budget (the plan
    /// returned is the best costed so far, or the seed left-deep tree).
    DegradationsMemoCut,
}

/// Number of `shard="N"` label buckets for sharded-cache lookup counters.
pub const SHARD_LABEL_BUCKETS: usize = 8;

impl Counter {
    pub const ALL: [Counter; 57] = [
        Counter::PlanCostCalls,
        Counter::ResourceIterations,
        Counter::CacheHitsExact,
        Counter::CacheHitsNearest,
        Counter::CacheHitsWeighted,
        Counter::CacheMisses,
        Counter::MemoHits,
        Counter::MemoMisses,
        Counter::MemoEvictions,
        Counter::CacheFileInvalidations,
        Counter::BatchChunks,
        Counter::HillClimbClimbs,
        Counter::HillClimbBatchedRounds,
        Counter::RandomizedRounds,
        Counter::SelingerLevels,
        Counter::IdpRounds,
        Counter::RuleDispatches,
        Counter::SpansDropped,
        Counter::WorkerPanics,
        Counter::CostSanitizationsScalar,
        Counter::CostSanitizationsBatch,
        Counter::DegradationsIdpBridge,
        Counter::DegradationsRandomized,
        Counter::DegradationsRuleBased,
        Counter::CacheShardLookups0,
        Counter::CacheShardLookups1,
        Counter::CacheShardLookups2,
        Counter::CacheShardLookups3,
        Counter::CacheShardLookups4,
        Counter::CacheShardLookups5,
        Counter::CacheShardLookups6,
        Counter::CacheShardLookups7,
        Counter::ServiceAdmitted,
        Counter::ServiceShed,
        Counter::ServiceCompleted,
        Counter::TracesStarted,
        Counter::TracesRetained,
        Counter::TracesSampledOut,
        Counter::TracesEvicted,
        Counter::FlightDumps,
        Counter::CacheEvictions,
        Counter::NetConnectionsOpened,
        Counter::NetConnectionsClosed,
        Counter::NetFramesIn,
        Counter::NetFramesOut,
        Counter::NetFrameErrors,
        Counter::NetShedOverloaded,
        Counter::NetShedConnCap,
        Counter::NetShedDeadline,
        Counter::NetShedSlowReader,
        Counter::NetRepliesDeduped,
        Counter::NetIdleReaped,
        Counter::NetClientRetries,
        Counter::CascadesGroups,
        Counter::CascadesExpressions,
        Counter::CascadesTasks,
        Counter::DegradationsMemoCut,
    ];

    /// The lookup counter for shard `index`, folding indices past
    /// [`SHARD_LABEL_BUCKETS`] onto the fixed label set (`index % 8`).
    #[inline]
    pub fn cache_shard(index: usize) -> Counter {
        const SHARDS: [Counter; SHARD_LABEL_BUCKETS] = [
            Counter::CacheShardLookups0,
            Counter::CacheShardLookups1,
            Counter::CacheShardLookups2,
            Counter::CacheShardLookups3,
            Counter::CacheShardLookups4,
            Counter::CacheShardLookups5,
            Counter::CacheShardLookups6,
            Counter::CacheShardLookups7,
        ];
        SHARDS[index % SHARD_LABEL_BUCKETS]
    }

    /// Prometheus metric name (`_total` suffix per convention).
    pub fn name(self) -> &'static str {
        match self {
            Counter::PlanCostCalls => "raqo_plan_cost_calls_total",
            Counter::ResourceIterations => "raqo_resource_iterations_total",
            Counter::CacheHitsExact => "raqo_cache_hits_exact_total",
            Counter::CacheHitsNearest => "raqo_cache_hits_nearest_total",
            Counter::CacheHitsWeighted => "raqo_cache_hits_weighted_total",
            Counter::CacheMisses => "raqo_cache_misses_total",
            Counter::MemoHits => "raqo_memo_hits_total",
            Counter::MemoMisses => "raqo_memo_misses_total",
            Counter::MemoEvictions => "raqo_memo_evictions_total",
            Counter::CacheFileInvalidations => "raqo_cache_file_invalidations_total",
            Counter::BatchChunks => "raqo_batch_chunks_total",
            Counter::HillClimbClimbs => "raqo_hill_climb_climbs_total",
            Counter::HillClimbBatchedRounds => "raqo_hill_climb_batched_rounds_total",
            Counter::RandomizedRounds => "raqo_randomized_rounds_total",
            Counter::SelingerLevels => "raqo_selinger_levels_total",
            Counter::IdpRounds => "raqo_idp_rounds_total",
            Counter::RuleDispatches => "raqo_rule_dispatches_total",
            Counter::SpansDropped => "raqo_spans_dropped_total",
            Counter::WorkerPanics => "raqo_worker_panics_total",
            Counter::CostSanitizationsScalar => "raqo_cost_sanitizations_total{site=\"scalar\"}",
            Counter::CostSanitizationsBatch => "raqo_cost_sanitizations_total{site=\"batch\"}",
            Counter::DegradationsIdpBridge => "raqo_degradations_total{rung=\"idp_bridge\"}",
            Counter::DegradationsRandomized => "raqo_degradations_total{rung=\"randomized\"}",
            Counter::DegradationsRuleBased => "raqo_degradations_total{rung=\"rule_based\"}",
            Counter::CacheShardLookups0 => "raqo_cache_shard_lookups_total{shard=\"0\"}",
            Counter::CacheShardLookups1 => "raqo_cache_shard_lookups_total{shard=\"1\"}",
            Counter::CacheShardLookups2 => "raqo_cache_shard_lookups_total{shard=\"2\"}",
            Counter::CacheShardLookups3 => "raqo_cache_shard_lookups_total{shard=\"3\"}",
            Counter::CacheShardLookups4 => "raqo_cache_shard_lookups_total{shard=\"4\"}",
            Counter::CacheShardLookups5 => "raqo_cache_shard_lookups_total{shard=\"5\"}",
            Counter::CacheShardLookups6 => "raqo_cache_shard_lookups_total{shard=\"6\"}",
            Counter::CacheShardLookups7 => "raqo_cache_shard_lookups_total{shard=\"7\"}",
            Counter::ServiceAdmitted => "raqo_service_admitted_total",
            Counter::ServiceShed => "raqo_service_shed_total",
            Counter::ServiceCompleted => "raqo_service_completed_total",
            Counter::TracesStarted => "raqo_traces_started_total",
            Counter::TracesRetained => "raqo_traces_retained_total",
            Counter::TracesSampledOut => "raqo_traces_sampled_out_total",
            Counter::TracesEvicted => "raqo_traces_evicted_total",
            Counter::FlightDumps => "raqo_flight_dumps_total",
            Counter::CacheEvictions => "raqo_cache_evictions_total",
            Counter::NetConnectionsOpened => "raqo_net_connections_total{event=\"opened\"}",
            Counter::NetConnectionsClosed => "raqo_net_connections_total{event=\"closed\"}",
            Counter::NetFramesIn => "raqo_net_frames_total{dir=\"in\"}",
            Counter::NetFramesOut => "raqo_net_frames_total{dir=\"out\"}",
            Counter::NetFrameErrors => "raqo_net_frame_errors_total",
            Counter::NetShedOverloaded => "raqo_net_shed_total{reason=\"overloaded\"}",
            Counter::NetShedConnCap => "raqo_net_shed_total{reason=\"conn_cap\"}",
            Counter::NetShedDeadline => "raqo_net_shed_total{reason=\"deadline\"}",
            Counter::NetShedSlowReader => "raqo_net_shed_total{reason=\"slow_reader\"}",
            Counter::NetRepliesDeduped => "raqo_net_replies_deduped_total",
            Counter::NetIdleReaped => "raqo_net_idle_reaped_total",
            Counter::NetClientRetries => "raqo_net_client_retries_total",
            Counter::CascadesGroups => "raqo_cascades_groups_total",
            Counter::CascadesExpressions => "raqo_cascades_expressions_total",
            Counter::CascadesTasks => "raqo_cascades_tasks_total",
            Counter::DegradationsMemoCut => "raqo_degradations_total{rung=\"memo_cut\"}",
        }
    }

    /// Prometheus metric *family* name: [`Counter::name`] with any label set
    /// stripped. `HELP`/`TYPE` lines are per-family, series lines per-name.
    pub fn family(self) -> &'static str {
        let name = self.name();
        match name.find('{') {
            Some(brace) => &name[..brace],
            None => name,
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            Counter::PlanCostCalls => "getPlanCost invocations",
            Counter::ResourceIterations => "resource planning iterations",
            Counter::CacheHitsExact => "resource-plan cache exact hits",
            Counter::CacheHitsNearest => "resource-plan cache nearest-neighbor hits",
            Counter::CacheHitsWeighted => "resource-plan cache weighted-average hits",
            Counter::CacheMisses => "resource-plan cache misses",
            Counter::MemoHits => "Selinger cross-run memo hits",
            Counter::MemoMisses => "Selinger cross-run memo misses",
            Counter::MemoEvictions => "Selinger memo contexts evicted by the context LRU",
            Counter::CacheFileInvalidations => "persisted cache files invalidated on fingerprint mismatch",
            Counter::BatchChunks => "batched cost-kernel chunk evaluations",
            Counter::HillClimbClimbs => "hill-climb searches launched",
            Counter::HillClimbBatchedRounds => {
                "lock-step rounds of the batched multi-start hill climber"
            }
            Counter::RandomizedRounds => "randomized planner improvement rounds",
            Counter::SelingerLevels => "Selinger DP levels filled",
            Counter::IdpRounds => "IDP collapse rounds (block DP + merge)",
            Counter::RuleDispatches => "rule-based decision-tree join dispatches",
            Counter::SpansDropped => "spans dropped at the span-store cap",
            Counter::WorkerPanics => "worker-thread panics recovered by sequential fallback",
            Counter::CostSanitizationsScalar | Counter::CostSanitizationsBatch => {
                "cost-model outputs sanitized to infeasible at the boundary"
            }
            Counter::DegradationsIdpBridge
            | Counter::DegradationsRandomized
            | Counter::DegradationsRuleBased
            | Counter::DegradationsMemoCut => {
                "optimizer degradations to a lower planning-ladder rung"
            }
            Counter::CacheShardLookups0
            | Counter::CacheShardLookups1
            | Counter::CacheShardLookups2
            | Counter::CacheShardLookups3
            | Counter::CacheShardLookups4
            | Counter::CacheShardLookups5
            | Counter::CacheShardLookups6
            | Counter::CacheShardLookups7 => {
                "sharded-cache lookups per shard label bucket (index % 8)"
            }
            Counter::ServiceAdmitted => "planning-service requests admitted to the queue",
            Counter::ServiceShed => "planning-service requests shed at admission (queue full)",
            Counter::ServiceCompleted => "planning-service requests completed by workers",
            Counter::TracesStarted => "ticket traces started",
            Counter::TracesRetained => "finished traces retained by head or tail sampling",
            Counter::TracesSampledOut => "finished traces discarded by head sampling",
            Counter::TracesEvicted => "retained traces evicted from the completed ring",
            Counter::FlightDumps => "flight-recorder dumps written to disk",
            Counter::CacheEvictions => "cache-bank entries evicted by compaction",
            Counter::NetConnectionsOpened | Counter::NetConnectionsClosed => {
                "plan-server TCP connection lifecycle events"
            }
            Counter::NetFramesIn | Counter::NetFramesOut => "wire frames by direction",
            Counter::NetFrameErrors => {
                "malformed inbound frames answered with a typed error frame"
            }
            Counter::NetShedOverloaded
            | Counter::NetShedConnCap
            | Counter::NetShedDeadline
            | Counter::NetShedSlowReader => "plan-server load shed by reason",
            Counter::NetRepliesDeduped => {
                "retried requests answered from the reply ring (idempotence)"
            }
            Counter::NetIdleReaped => "idle connections closed by the reaper",
            Counter::NetClientRetries => "plan-client retry attempts",
            Counter::CascadesGroups => "Cascades memo groups materialized",
            Counter::CascadesExpressions => "Cascades memo join expressions (deduplicated)",
            Counter::CascadesTasks => "Cascades task-stack pops",
        }
    }
}

/// Histogram bucket boundaries for plan-cost latency, in microseconds.
pub const PLAN_COST_LATENCY_BUCKETS: [u64; 12] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 5_000, 10_000];

/// Histogram bucket boundaries for resource iterations per planning call.
pub const RESOURCE_ITERATIONS_BUCKETS: [u64; 12] =
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 4_096];

/// Histogram bucket boundaries for cache-shard lock acquisition waits, in
/// microseconds. An uncontended acquire lands in the first bucket; the top
/// buckets catch pathological convoys (a writer holding a shard across a
/// snapshot clone).
pub const LOCK_WAIT_BUCKETS: [u64; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 10_000];

/// Histogram bucket boundaries for planning-service queue waits, in
/// microseconds (sub-millisecond through multi-second overload tails).
pub const QUEUE_WAIT_BUCKETS: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 500_000, 2_000_000,
];

const HIST_BUCKETS: usize = 12;

/// Every histogram the optimizer stack observes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wall time of one `getPlanCost` call, microseconds.
    PlanCostLatencyUs,
    /// Resource iterations spent by one resource-planning call.
    ResourceIterationsPerCall,
    /// Wall time spent acquiring a cache-shard lock, microseconds.
    CacheLockWaitUs,
    /// Wall time a planning-service request waited in the admission queue
    /// before a worker picked it up, microseconds.
    ServiceQueueWaitUs,
}

impl Hist {
    pub const ALL: [Hist; 4] = [
        Hist::PlanCostLatencyUs,
        Hist::ResourceIterationsPerCall,
        Hist::CacheLockWaitUs,
        Hist::ServiceQueueWaitUs,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Hist::PlanCostLatencyUs => "raqo_plan_cost_latency_us",
            Hist::ResourceIterationsPerCall => "raqo_resource_iterations_per_call",
            Hist::CacheLockWaitUs => "raqo_cache_lock_wait_us",
            Hist::ServiceQueueWaitUs => "raqo_service_queue_wait_us",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            Hist::PlanCostLatencyUs => "getPlanCost wall time in microseconds",
            Hist::ResourceIterationsPerCall => "resource iterations per resource-planning call",
            Hist::CacheLockWaitUs => "cache-shard lock acquisition wait in microseconds",
            Hist::ServiceQueueWaitUs => "planning-service admission-queue wait in microseconds",
        }
    }

    pub fn buckets(self) -> &'static [u64; HIST_BUCKETS] {
        match self {
            Hist::PlanCostLatencyUs => &PLAN_COST_LATENCY_BUCKETS,
            Hist::ResourceIterationsPerCall => &RESOURCE_ITERATIONS_BUCKETS,
            Hist::CacheLockWaitUs => &LOCK_WAIT_BUCKETS,
            Hist::ServiceQueueWaitUs => &QUEUE_WAIT_BUCKETS,
        }
    }
}

/// Stored gauges: point-in-time levels set by the instrumented code (unlike
/// the derived gauges, which are computed from counters at snapshot time).
/// Values are signed so transient dec-past-zero races in concurrent
/// inc/dec pairs cannot wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Requests currently waiting in the planning service's admission queue.
    ServiceQueueDepth,
}

impl Gauge {
    pub const ALL: [Gauge; 1] = [Gauge::ServiceQueueDepth];

    pub fn name(self) -> &'static str {
        match self {
            Gauge::ServiceQueueDepth => "raqo_service_queue_depth",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            Gauge::ServiceQueueDepth => "requests waiting in the planning-service admission queue",
        }
    }
}

/// One histogram's cells: per-bucket counts plus the +Inf overflow, a
/// value sum, and an observation count. All atomics; observe is lock-free.
#[derive(Default)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

/// The registry itself: one atomic slot per [`Counter`], one cell block
/// per [`Hist`], one signed slot per [`Gauge`]. Shared across worker
/// threads by reference.
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [HistCells; Hist::ALL.len()],
    gauges: [AtomicI64; Gauge::ALL.len()],
}

// Derived `Default` needs per-element array impls that std only provides
// up to length 32; the counter array is past that.
impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistCells::default()),
            gauges: std::array::from_fn(|_| AtomicI64::new(0)),
        }
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Record one observation. Finds the first bucket whose upper bound
    /// holds the value (cumulative counts are computed at snapshot time).
    #[inline]
    pub fn observe(&self, h: Hist, value: u64) {
        let cells = &self.hists[h as usize];
        match h.buckets().iter().position(|&le| value <= le) {
            Some(i) => cells.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => cells.overflow.fetch_add(1, Ordering::Relaxed),
        };
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Set a stored gauge to an absolute level.
    #[inline]
    pub fn gauge_set(&self, g: Gauge, value: i64) {
        self.gauges[g as usize].store(value, Ordering::Relaxed);
    }

    /// Move a stored gauge by `delta` (negative to decrement).
    #[inline]
    pub fn gauge_add(&self, g: Gauge, delta: i64) {
        self.gauges[g as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level of a stored gauge.
    #[inline]
    pub fn gauge_get(&self, g: Gauge) -> i64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL.map(|c| self.get(c));
        let hists = Hist::ALL.map(|h| {
            let cells = &self.hists[h as usize];
            HistSnapshot {
                hist: h,
                buckets: std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed)),
                overflow: cells.overflow.load(Ordering::Relaxed),
                sum: cells.sum.load(Ordering::Relaxed),
                count: cells.count.load(Ordering::Relaxed),
            }
        });
        let gauges = Gauge::ALL.map(|g| self.gauge_get(g));
        MetricsSnapshot { counters, hists, gauges }
    }
}

/// Point-in-time histogram state (per-bucket counts, not cumulative).
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    pub hist: Hist,
    pub buckets: [u64; HIST_BUCKETS],
    pub overflow: u64,
    pub sum: u64,
    pub count: u64,
}

/// Point-in-time registry state; renders to JSON and Prometheus text.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::ALL.len()],
    hists: [HistSnapshot; Hist::ALL.len()],
    gauges: [i64; Gauge::ALL.len()],
}

impl MetricsSnapshot {
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Stored-gauge level at snapshot time.
    pub fn gauge(&self, g: Gauge) -> i64 {
        self.gauges[g as usize]
    }

    /// Sharded-cache lookups summed over all shard label buckets.
    pub fn cache_shard_lookups_total(&self) -> u64 {
        (0..SHARD_LABEL_BUCKETS).map(|i| self.get(Counter::cache_shard(i))).sum()
    }

    pub fn hist(&self, h: Hist) -> &HistSnapshot {
        &self.hists[h as usize]
    }

    /// Counter delta vs. an earlier snapshot (used for per-query views).
    pub fn delta(&self, earlier: &MetricsSnapshot, c: Counter) -> u64 {
        self.get(c).saturating_sub(earlier.get(c))
    }

    /// Cache hits across all lookup kinds.
    pub fn cache_hits_total(&self) -> u64 {
        self.get(Counter::CacheHitsExact)
            + self.get(Counter::CacheHitsNearest)
            + self.get(Counter::CacheHitsWeighted)
    }

    /// Overall cache hit ratio; `None` until a lookup happened.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let hits = self.cache_hits_total();
        let lookups = hits + self.get(Counter::CacheMisses);
        (lookups > 0).then(|| hits as f64 / lookups as f64)
    }

    /// Per-kind cache hit ratio over all lookups, in (exact, nearest,
    /// weighted-average) order; `None` until a lookup happened.
    pub fn cache_hit_ratio_by_kind(&self) -> Option<[f64; 3]> {
        let lookups = self.cache_hits_total() + self.get(Counter::CacheMisses);
        (lookups > 0).then(|| {
            [
                Counter::CacheHitsExact,
                Counter::CacheHitsNearest,
                Counter::CacheHitsWeighted,
            ]
            .map(|c| self.get(c) as f64 / lookups as f64)
        })
    }

    /// The snapshot as a JSON value: `{"counters": {...}, "histograms":
    /// {...}, "gauges": {...}}`.
    pub fn to_json_value(&self) -> Value {
        let counters = Value::Object(
            Counter::ALL
                .iter()
                .map(|&c| (c.name().to_string(), Value::Num(self.get(c) as f64)))
                .collect(),
        );
        let hists = Value::Object(
            Hist::ALL
                .iter()
                .map(|&h| {
                    let s = self.hist(h);
                    let buckets = Value::Array(
                        h.buckets()
                            .iter()
                            .zip(s.buckets.iter())
                            .map(|(&le, &n)| {
                                Value::Object(vec![
                                    ("le".to_string(), Value::Num(le as f64)),
                                    ("count".to_string(), Value::Num(n as f64)),
                                ])
                            })
                            .collect(),
                    );
                    let obj = Value::Object(vec![
                        ("buckets".to_string(), buckets),
                        ("overflow".to_string(), Value::Num(s.overflow as f64)),
                        ("sum".to_string(), Value::Num(s.sum as f64)),
                        ("count".to_string(), Value::Num(s.count as f64)),
                    ]);
                    (h.name().to_string(), obj)
                })
                .collect(),
        );
        let mut gauges = Vec::new();
        for &g in Gauge::ALL.iter() {
            gauges.push((g.name().to_string(), Value::Num(self.gauge(g) as f64)));
        }
        if let Some(r) = self.cache_hit_ratio() {
            gauges.push(("raqo_cache_hit_ratio".to_string(), Value::Num(r)));
        }
        if let Some([e, n, w]) = self.cache_hit_ratio_by_kind() {
            gauges.push(("raqo_cache_hit_ratio_exact".to_string(), Value::Num(e)));
            gauges.push(("raqo_cache_hit_ratio_nearest".to_string(), Value::Num(n)));
            gauges.push(("raqo_cache_hit_ratio_weighted".to_string(), Value::Num(w)));
        }
        Value::Object(vec![
            ("counters".to_string(), counters),
            ("histograms".to_string(), hists),
            ("gauges".to_string(), Value::Object(gauges)),
        ])
    }

    /// Pretty-printed JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        serde::write_value(&mut out, &self.to_json_value(), Some(2), 0);
        out.push('\n');
        out
    }

    /// Prometheus text exposition format (version 0.0.4): HELP/TYPE lines,
    /// counters with `_total` names, histograms with cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for &c in Counter::ALL.iter() {
            // Labeled series (e.g. raqo_degradations_total{rung="..."}) share
            // one family; HELP/TYPE must appear once per family.
            if c.family() != last_family {
                last_family = c.family();
                out.push_str(&format!("# HELP {} {}\n", c.family(), c.help()));
                out.push_str(&format!("# TYPE {} counter\n", c.family()));
            }
            out.push_str(&format!("{} {}\n", c.name(), self.get(c)));
        }
        for &h in Hist::ALL.iter() {
            let s = self.hist(h);
            out.push_str(&format!("# HELP {} {}\n", h.name(), h.help()));
            out.push_str(&format!("# TYPE {} histogram\n", h.name()));
            let mut cumulative = 0u64;
            for (&le, &n) in h.buckets().iter().zip(s.buckets.iter()) {
                cumulative += n;
                out.push_str(&format!("{}_bucket{{le=\"{}\"}} {}\n", h.name(), le, cumulative));
            }
            cumulative += s.overflow;
            out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", h.name(), cumulative));
            out.push_str(&format!("{}_sum {}\n", h.name(), s.sum));
            out.push_str(&format!("{}_count {}\n", h.name(), s.count));
        }
        for &g in Gauge::ALL.iter() {
            out.push_str(&format!("# HELP {} {}\n", g.name(), g.help()));
            out.push_str(&format!("# TYPE {} gauge\n", g.name()));
            out.push_str(&format!("{} {}\n", g.name(), self.gauge(g)));
        }
        if let Some(r) = self.cache_hit_ratio() {
            out.push_str("# HELP raqo_cache_hit_ratio overall resource-plan cache hit ratio\n");
            out.push_str("# TYPE raqo_cache_hit_ratio gauge\n");
            out.push_str(&format!("raqo_cache_hit_ratio {r}\n"));
        }
        if let Some(ratios) = self.cache_hit_ratio_by_kind() {
            for (kind, r) in ["exact", "nearest", "weighted"].iter().zip(ratios) {
                let name = format!("raqo_cache_hit_ratio_{kind}");
                out.push_str(&format!("# HELP {name} cache hit ratio, {kind} lookups\n"));
                out.push_str(&format!("# TYPE {name} gauge\n"));
                out.push_str(&format!("{name} {r}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.inc(Counter::PlanCostCalls, 3);
        reg.inc(Counter::PlanCostCalls, 2);
        reg.inc(Counter::CacheMisses, 1);
        let snap = reg.snapshot();
        assert_eq!(snap.get(Counter::PlanCostCalls), 5);
        assert_eq!(snap.get(Counter::CacheMisses), 1);
        assert_eq!(snap.get(Counter::MemoHits), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let reg = MetricsRegistry::new();
        // Boundary semantics are `value <= le` (Prometheus): an observation
        // exactly on a bound lands in that bucket, one past it in the next.
        reg.observe(Hist::PlanCostLatencyUs, 1); // le=1
        reg.observe(Hist::PlanCostLatencyUs, 2); // le=2
        reg.observe(Hist::PlanCostLatencyUs, 3); // le=5
        reg.observe(Hist::PlanCostLatencyUs, 10); // le=10
        reg.observe(Hist::PlanCostLatencyUs, 11); // le=25
        reg.observe(Hist::PlanCostLatencyUs, 10_000); // last finite bucket
        reg.observe(Hist::PlanCostLatencyUs, 10_001); // +Inf overflow
        let s = reg.snapshot();
        let h = s.hist(Hist::PlanCostLatencyUs).clone();
        assert_eq!(h.buckets[0], 1, "value 1 in le=1");
        assert_eq!(h.buckets[1], 1, "value 2 in le=2");
        assert_eq!(h.buckets[2], 1, "value 3 in le=5");
        assert_eq!(h.buckets[3], 1, "value 10 in le=10");
        assert_eq!(h.buckets[4], 1, "value 11 in le=25");
        assert_eq!(h.buckets[11], 1, "value 10000 in le=10000");
        assert_eq!(h.overflow, 1, "value 10001 overflows");
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1 + 2 + 3 + 10 + 11 + 10_000 + 10_001);
    }

    #[test]
    fn histogram_zero_goes_to_first_bucket() {
        let reg = MetricsRegistry::new();
        reg.observe(Hist::ResourceIterationsPerCall, 0);
        let s = reg.snapshot();
        assert_eq!(s.hist(Hist::ResourceIterationsPerCall).buckets[0], 1);
    }

    #[test]
    fn prometheus_golden() {
        let reg = MetricsRegistry::new();
        reg.inc(Counter::PlanCostCalls, 7);
        reg.inc(Counter::CacheHitsExact, 3);
        reg.inc(Counter::CacheMisses, 1);
        reg.observe(Hist::PlanCostLatencyUs, 4);
        reg.observe(Hist::PlanCostLatencyUs, 4);
        reg.observe(Hist::PlanCostLatencyUs, 80_000);
        let text = reg.snapshot().to_prometheus();

        // Counter block, exactly as Prometheus expects it.
        assert!(text.contains(
            "# HELP raqo_plan_cost_calls_total getPlanCost invocations\n\
             # TYPE raqo_plan_cost_calls_total counter\n\
             raqo_plan_cost_calls_total 7\n"
        ));
        // Histogram block: cumulative buckets, +Inf, sum, count.
        assert!(text.contains("raqo_plan_cost_latency_us_bucket{le=\"5\"} 2\n"));
        assert!(text.contains("raqo_plan_cost_latency_us_bucket{le=\"10000\"} 2\n"));
        assert!(text.contains("raqo_plan_cost_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("raqo_plan_cost_latency_us_sum 80008\n"));
        assert!(text.contains("raqo_plan_cost_latency_us_count 3\n"));
        // Gauge derived from hit/miss counters: 3 of 4 lookups hit.
        assert!(text.contains("raqo_cache_hit_ratio 0.75\n"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn json_snapshot_is_valid_json() {
        let reg = MetricsRegistry::new();
        reg.inc(Counter::MemoHits, 2);
        reg.observe(Hist::ResourceIterationsPerCall, 33);
        let text = reg.snapshot().to_json();
        let value = serde_json::from_str(&text).expect("snapshot JSON parses");
        let serde::Value::Object(fields) = value else {
            panic!("snapshot JSON must be an object")
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["counters", "histograms", "gauges"]);
    }

    #[test]
    fn shard_counter_folds_onto_label_buckets() {
        assert_eq!(Counter::cache_shard(0), Counter::CacheShardLookups0);
        assert_eq!(Counter::cache_shard(7), Counter::CacheShardLookups7);
        assert_eq!(Counter::cache_shard(8), Counter::CacheShardLookups0);
        assert_eq!(Counter::cache_shard(13), Counter::CacheShardLookups5);
        let reg = MetricsRegistry::new();
        for shard in 0..32 {
            reg.inc(Counter::cache_shard(shard), 1);
        }
        let s = reg.snapshot();
        for bucket in 0..SHARD_LABEL_BUCKETS {
            assert_eq!(s.get(Counter::cache_shard(bucket)), 4, "32 shards fold 4-to-1");
        }
        assert_eq!(s.cache_shard_lookups_total(), 32);
        assert!(s
            .to_prometheus()
            .contains("raqo_cache_shard_lookups_total{shard=\"3\"} 4\n"));
    }

    #[test]
    fn stored_gauge_set_add_and_export() {
        let reg = MetricsRegistry::new();
        reg.gauge_set(Gauge::ServiceQueueDepth, 5);
        reg.gauge_add(Gauge::ServiceQueueDepth, 3);
        reg.gauge_add(Gauge::ServiceQueueDepth, -6);
        let s = reg.snapshot();
        assert_eq!(s.gauge(Gauge::ServiceQueueDepth), 2);
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE raqo_service_queue_depth gauge\n"));
        assert!(prom.contains("raqo_service_queue_depth 2\n"));
        let json = s.to_json();
        assert!(json.contains("raqo_service_queue_depth"));
        serde_json::from_str(&json).expect("gauge JSON parses");
    }

    #[test]
    fn every_metric_appears_in_both_exports() {
        // Exhaustiveness guard: adding a Counter/Hist/Gauge variant without
        // it reaching both export formats is a silent observability hole.
        // `name()` strings are the contract, so match on those.
        let reg = MetricsRegistry::new();
        for (i, &c) in Counter::ALL.iter().enumerate() {
            reg.inc(c, i as u64 + 1);
        }
        for &h in Hist::ALL.iter() {
            reg.observe(h, 1);
        }
        for &g in Gauge::ALL.iter() {
            reg.gauge_set(g, 1);
        }
        let snap = reg.snapshot();
        let prom = snap.to_prometheus();
        // Counter names may carry Prometheus labels (quotes), which JSON
        // escapes in the rendered text — compare against parsed keys.
        let parsed = serde_json::from_str(&snap.to_json()).expect("snapshot JSON parses");
        let serde::Value::Object(sections) = parsed else { panic!("snapshot is an object") };
        let keys_of = |section: &str| -> Vec<String> {
            let Some(serde::Value::Object(fields)) =
                sections.iter().find(|(k, _)| k == section).map(|(_, v)| v)
            else {
                panic!("missing {section} section")
            };
            fields.iter().map(|(k, _)| k.clone()).collect()
        };
        let (counters, hists, gauges) =
            (keys_of("counters"), keys_of("histograms"), keys_of("gauges"));
        for &c in Counter::ALL.iter() {
            assert!(prom.contains(&format!("{} ", c.name())), "{} missing in prom", c.name());
            assert!(counters.iter().any(|k| k == c.name()), "{} missing in json", c.name());
        }
        for &h in Hist::ALL.iter() {
            assert!(
                prom.contains(&format!("{}_count ", h.name())),
                "{} missing in prom",
                h.name()
            );
            assert!(hists.iter().any(|k| k == h.name()), "{} missing in json", h.name());
        }
        for &g in Gauge::ALL.iter() {
            assert!(prom.contains(&format!("{} ", g.name())), "{} missing in prom", g.name());
            assert!(gauges.iter().any(|k| k == g.name()), "{} missing in json", g.name());
        }
        // Distinct increments round-trip: no two counters alias one cell.
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(snap.get(c), i as u64 + 1, "{} aliased", c.name());
        }
    }

    #[test]
    fn cache_hit_ratio_by_kind_sums_with_misses() {
        let reg = MetricsRegistry::new();
        reg.inc(Counter::CacheHitsExact, 2);
        reg.inc(Counter::CacheHitsNearest, 1);
        reg.inc(Counter::CacheHitsWeighted, 1);
        reg.inc(Counter::CacheMisses, 4);
        let s = reg.snapshot();
        let [e, n, w] = s.cache_hit_ratio_by_kind().unwrap();
        assert_eq!(e, 0.25);
        assert_eq!(n, 0.125);
        assert_eq!(w, 0.125);
        assert_eq!(s.cache_hit_ratio().unwrap(), 0.5);
    }
}
