//! The trace pipeline: per-ticket span ring buffers, two-stage sampling,
//! and pluggable sinks.
//!
//! Every planning ticket gets its own trace ([`Telemetry::start_trace`]):
//! a bounded ring of [`SpanRecord`]s plus string attributes (tenant
//! namespace, priority class, …) and a deterministic 128-bit trace id.
//! Spans opened by a thread that has [`TraceContext::enter`]ed the trace
//! — or a worker that entered a [`TraceScope`] captured before spawn —
//! record into that ring and parent under the ticket root instead of the
//! thread-local ambient stack.
//!
//! Sampling is two-stage:
//!
//! * **Head**: the trace id is derived from `(seed, ticket counter)` by a
//!   splitmix64 mix, and the keep/discard decision compares its high half
//!   against `head_rate` — deterministic and reproducible for a given
//!   seed, no RNG state.
//! * **Tail**: traces flagged [`TraceFlags::DEGRADED`],
//!   [`TraceFlags::PANIC`], [`TraceFlags::BUDGET_EXHAUSTED`], or
//!   [`TraceFlags::COST_SANITIZED`] are *always* retained, regardless of
//!   the head decision. Flags are raised automatically when the
//!   corresponding counters fire on a thread inside the trace.
//!
//! Retained traces land in a completed-trace ring bounded by total span
//! count; when it overflows, the oldest *unflagged* traces are evicted
//! first, so flagged (interesting) traces survive as long as anything
//! does. Every finished trace — retained or not — is offered to the
//! registered [`SpanSink`]s first, which is how the flight recorder keeps
//! its always-on ring.

use crate::span::{Inner, SpanRecord, Telemetry};
use crate::{Counter, MetricsRegistry};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

/// Sequence id of a trace's root span (always the first record pushed).
pub(crate) const ROOT_SEQ: u32 = 0;

/// Default per-ticket span ring capacity.
pub const DEFAULT_TRACE_SPAN_CAP: usize = 8_192;

/// Bitset of retention-relevant conditions observed during a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceFlags(pub u8);

impl TraceFlags {
    pub const NONE: TraceFlags = TraceFlags(0);
    /// A degradation rung fired (IDP bridge, reduced randomized, rule-based).
    pub const DEGRADED: TraceFlags = TraceFlags(1);
    /// A planning worker panicked and was recovered.
    pub const PANIC: TraceFlags = TraceFlags(2);
    /// A planning budget (deadline or eval cap) was exhausted.
    pub const BUDGET_EXHAUSTED: TraceFlags = TraceFlags(4);
    /// A non-finite/negative cost-model output was sanitized.
    pub const COST_SANITIZED: TraceFlags = TraceFlags(8);

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn union(self, other: TraceFlags) -> TraceFlags {
        TraceFlags(self.0 | other.0)
    }

    #[inline]
    pub fn contains(self, other: TraceFlags) -> bool {
        self.0 & other.0 == other.0
    }

    #[inline]
    pub fn intersects(self, other: TraceFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Stable human-readable names of the set flags.
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.contains(TraceFlags::DEGRADED) {
            out.push("degraded");
        }
        if self.contains(TraceFlags::PANIC) {
            out.push("worker_panic");
        }
        if self.contains(TraceFlags::BUDGET_EXHAUSTED) {
            out.push("budget_exhausted");
        }
        if self.contains(TraceFlags::COST_SANITIZED) {
            out.push("cost_sanitized");
        }
        out
    }
}

/// Counters whose firing marks the current trace as tail-retention
/// worthy.
pub(crate) fn auto_flag(c: Counter) -> TraceFlags {
    match c {
        Counter::WorkerPanics => TraceFlags::PANIC,
        Counter::CostSanitizationsScalar | Counter::CostSanitizationsBatch => {
            TraceFlags::COST_SANITIZED
        }
        Counter::DegradationsIdpBridge
        | Counter::DegradationsRandomized
        | Counter::DegradationsRuleBased => TraceFlags::DEGRADED,
        _ => TraceFlags::NONE,
    }
}

/// Sampling and capacity configuration for the trace pipeline.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Fraction of traces kept by head sampling, in `[0, 1]`. The
    /// decision is deterministic in `(seed, ticket counter)`.
    pub head_rate: f64,
    /// Seed mixed into trace ids (and therefore the head decision).
    pub seed: u64,
    /// Total spans retained across all completed traces; oldest unflagged
    /// traces are evicted first when the ring overflows.
    pub completed_span_capacity: usize,
    /// Span ring capacity of each ticket trace.
    pub trace_span_cap: usize,
    /// Span ring capacity of the ambient (non-ticket) trace.
    pub ambient_span_cap: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            head_rate: 1.0,
            seed: 0,
            completed_span_capacity: crate::MAX_SPANS,
            trace_span_cap: DEFAULT_TRACE_SPAN_CAP,
            ambient_span_cap: crate::MAX_SPANS,
        }
    }
}

impl TraceConfig {
    /// Deterministic head-sampling decision for a trace id.
    pub fn head_keeps(&self, trace_id: u128) -> bool {
        if self.head_rate >= 1.0 {
            return true;
        }
        if self.head_rate <= 0.0 {
            return false;
        }
        let hi = (trace_id >> 64) as u64;
        hi < (self.head_rate * u64::MAX as f64) as u64
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic 128-bit trace id for ticket `key` under `seed`.
pub(crate) fn trace_id_for(seed: u64, key: u64) -> u128 {
    let hi = splitmix64(seed ^ splitmix64(key));
    let lo = splitmix64(hi ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let id = ((hi as u128) << 64) | lo as u128;
    if id == 0 {
        1
    } else {
        id
    }
}

/// Deterministic span id within a trace (OTLP wants 8 bytes, nonzero).
pub(crate) fn span_id_for(trace_id: u128, seq: u32) -> u64 {
    let id = splitmix64((trace_id as u64) ^ ((seq as u64) + 1).wrapping_mul(0xA24B_AED4_963E_E407));
    if id == 0 {
        1
    } else {
        id
    }
}

/// One trace's in-flight state: a bounded span ring plus metadata.
pub(crate) struct TraceBuf {
    pub(crate) name: String,
    pub(crate) trace_id: u128,
    pub(crate) attrs: Vec<(String, String)>,
    pub(crate) spans: VecDeque<SpanRecord>,
    pub(crate) next_seq: u32,
    pub(crate) evicted: u64,
    pub(crate) flags: TraceFlags,
    pub(crate) cap: usize,
}

impl TraceBuf {
    pub(crate) fn new(name: String, trace_id: u128, cap: usize) -> Self {
        TraceBuf {
            name,
            trace_id,
            attrs: Vec::new(),
            spans: VecDeque::new(),
            next_seq: 0,
            evicted: 0,
            flags: TraceFlags::NONE,
            cap: cap.max(1),
        }
    }

    /// Push a span, evicting the oldest record when the ring is full.
    /// Returns the new span's sequence id and how many records were
    /// evicted (0 or 1).
    pub(crate) fn push_span(
        &mut self,
        name: String,
        parent: Option<u32>,
        start_ns: u64,
    ) -> (u32, u64) {
        let mut evicted = 0;
        if self.spans.len() >= self.cap {
            self.spans.pop_front();
            self.evicted += 1;
            evicted = 1;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.spans.push_back(SpanRecord {
            name,
            id: seq,
            parent,
            start_ns,
            end_ns: None,
        });
        (seq, evicted)
    }

    /// Locate a live record by sequence id (O(1): ids are dense and the
    /// ring is ordered).
    pub(crate) fn get_mut(&mut self, seq: u32) -> Option<&mut SpanRecord> {
        let front = self.spans.front()?.id;
        let offset = seq.checked_sub(front)? as usize;
        let rec = self.spans.get_mut(offset)?;
        debug_assert_eq!(rec.id, seq);
        Some(rec)
    }
}

/// A finished trace as delivered to sinks and the completed ring.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// Deterministic 128-bit id (hex-rendered for OTLP).
    pub trace_id: u128,
    /// The ticket name given to [`Telemetry::start_trace`].
    pub name: String,
    /// Trace-level attributes (tenant namespace, priority class, …).
    pub attrs: Vec<(String, String)>,
    /// Conditions observed during the trace.
    pub flags: TraceFlags,
    /// Whether deterministic head sampling kept this trace.
    pub head_sampled: bool,
    /// `head_sampled || !flags.is_empty()` — whether the trace entered
    /// the completed ring.
    pub retained: bool,
    /// The span ring's contents at finish, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring during the trace's life.
    pub evicted: u64,
}

impl CompletedTrace {
    /// The root span, if it survived eviction.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == ROOT_SEQ)
    }

    /// 32-hex-digit OTLP trace id.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

/// A sink offered every finished trace *before* the sampling decision
/// discards anything; `trace.retained` tells the sink what the sampler
/// decided. Sinks run outside the pipeline lock and may use `registry`.
pub trait SpanSink: Send + Sync {
    fn on_trace_finish(&self, trace: &CompletedTrace, registry: &MetricsRegistry);
}

/// Shared pipeline state behind the telemetry handle's mutex.
pub(crate) struct Pipeline {
    pub(crate) config: TraceConfig,
    /// Trace key 0: the legacy ambient store behind [`Telemetry::spans`].
    pub(crate) ambient: TraceBuf,
    /// In-flight ticket traces, keyed by nonzero trace key.
    pub(crate) active: Vec<(u64, TraceBuf)>,
    /// Retained completed traces, oldest first.
    pub(crate) completed: VecDeque<CompletedTrace>,
    /// Total spans across `completed`.
    pub(crate) completed_spans: usize,
    next_key: u64,
}

impl Pipeline {
    pub(crate) fn new(config: TraceConfig) -> Self {
        Pipeline {
            ambient: TraceBuf::new(
                "ambient".to_string(),
                trace_id_for(config.seed, 0),
                config.ambient_span_cap,
            ),
            active: Vec::new(),
            completed: VecDeque::new(),
            completed_spans: 0,
            next_key: 1,
            config,
        }
    }

    pub(crate) fn buf_mut(&mut self, key: u64) -> Option<&mut TraceBuf> {
        if key == 0 {
            Some(&mut self.ambient)
        } else {
            self.active.iter_mut().find(|(k, _)| *k == key).map(|(_, b)| b)
        }
    }

    pub(crate) fn start_trace_buf(&mut self, name: &str) -> (u64, u128) {
        let key = self.next_key;
        self.next_key += 1;
        let trace_id = trace_id_for(self.config.seed, key);
        self.active.push((
            key,
            TraceBuf::new(name.to_string(), trace_id, self.config.trace_span_cap),
        ));
        (key, trace_id)
    }

    /// Remove a finished trace and run the retention decision. Returns the
    /// completed trace (for sinks) or `None` when the key was already
    /// finished.
    pub(crate) fn finish(&mut self, key: u64, end_ns: u64) -> Option<CompletedTrace> {
        let pos = self.active.iter().position(|(k, _)| *k == key)?;
        let (_, mut buf) = self.active.remove(pos);
        // Stamp the root (and leave any other still-open spans marked
        // open — they are exported as such).
        if let Some(root) = buf.get_mut(ROOT_SEQ) {
            if root.end_ns.is_none() {
                root.end_ns = Some(root.start_ns.max(end_ns).max(root.start_ns + 1));
            }
        }
        let head_sampled = self.config.head_keeps(buf.trace_id);
        let retained = head_sampled || !buf.flags.is_empty();
        Some(CompletedTrace {
            trace_id: buf.trace_id,
            name: buf.name,
            attrs: buf.attrs,
            flags: buf.flags,
            head_sampled,
            retained,
            spans: buf.spans.into_iter().collect(),
            evicted: buf.evicted,
        })
    }

    /// Admit a retained trace into the completed ring, evicting oldest
    /// unflagged traces (then oldest flagged, if nothing else is left) to
    /// stay under the span-count capacity. Returns evicted trace count.
    pub(crate) fn admit(&mut self, trace: CompletedTrace) -> u64 {
        let n = trace.spans.len();
        let mut evicted = 0;
        while !self.completed.is_empty()
            && self.completed_spans + n > self.config.completed_span_capacity
        {
            let victim = self
                .completed
                .iter()
                .position(|t| t.flags.is_empty())
                .unwrap_or(0);
            if let Some(t) = self.completed.remove(victim) {
                self.completed_spans -= t.spans.len();
                evicted += 1;
            }
        }
        self.completed_spans += n;
        self.completed.push_back(trace);
        evicted
    }
}

/// Per-ticket trace handle. Clone-able and `Send`; inert (every method
/// free) when telemetry is disabled.
#[derive(Clone)]
pub struct TraceContext {
    inner: Option<(Arc<Inner>, u64, u128)>,
}

impl TraceContext {
    /// A context that records nothing.
    pub const fn inert() -> Self {
        TraceContext { inner: None }
    }

    pub(crate) fn start(inner: &Arc<Inner>, name: &str) -> Self {
        let start = Instant::now();
        let start_ns = start.duration_since(inner.epoch).as_nanos() as u64;
        let (key, trace_id) = {
            let mut p = inner.pipeline.lock().unwrap();
            let (key, trace_id) = p.start_trace_buf(name);
            // The root span (seq 0) carries the ticket name; it opens now
            // and closes when the context finishes.
            if let Some(buf) = p.buf_mut(key) {
                buf.push_span(name.to_string(), None, start_ns);
            }
            (key, trace_id)
        };
        inner.registry.inc(Counter::TracesStarted, 1);
        TraceContext {
            inner: Some((Arc::clone(inner), key, trace_id)),
        }
    }

    /// Whether this context records anything.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The deterministic trace id (0 when inert).
    pub fn trace_id(&self) -> u128 {
        self.inner.as_ref().map_or(0, |(_, _, id)| *id)
    }

    /// Attach a trace-level attribute. The value is only formatted when
    /// the context is recording.
    pub fn attr(&self, key: &str, value: impl std::fmt::Display) {
        if let Some((inner, k, _)) = &self.inner {
            let mut p = inner.pipeline.lock().unwrap();
            if let Some(buf) = p.buf_mut(*k) {
                buf.attrs.push((key.to_string(), value.to_string()));
            }
        }
    }

    /// Raise retention flags on this trace.
    pub fn flag(&self, flags: TraceFlags) {
        if let Some((inner, k, _)) = &self.inner {
            let mut p = inner.pipeline.lock().unwrap();
            if let Some(buf) = p.buf_mut(*k) {
                buf.flags = buf.flags.union(flags);
            }
        }
    }

    /// Make this trace the current thread's span destination until the
    /// guard drops. Spans opened meanwhile parent under the ticket root.
    pub fn enter(&self) -> TraceGuard {
        match &self.inner {
            None => TraceGuard { prev: None, _not_send: PhantomData },
            Some((inner, key, _)) => {
                let prev = Telemetry::set_current_trace(inner.id, *key);
                TraceGuard { prev: Some(prev), _not_send: PhantomData }
            }
        }
    }

    /// Finish the trace: stamp the root span, run the head/tail retention
    /// decision, offer the result to every sink, and (if retained) admit
    /// it into the completed ring. Idempotent across clones — the first
    /// finish wins.
    pub fn finish(self) {
        let Some((inner, key, _)) = self.inner else { return };
        let end_ns = Instant::now().duration_since(inner.epoch).as_nanos() as u64;
        let (trace, ring_evicted) = {
            let mut p = inner.pipeline.lock().unwrap();
            let Some(trace) = p.finish(key, end_ns) else { return };
            let evicted = if trace.retained { p.admit(trace.clone()) } else { 0 };
            (trace, evicted)
        };
        if trace.retained {
            inner.registry.inc(Counter::TracesRetained, 1);
        } else {
            inner.registry.inc(Counter::TracesSampledOut, 1);
        }
        if ring_evicted > 0 {
            inner.registry.inc(Counter::TracesEvicted, ring_evicted);
        }
        let sinks = inner.sinks.lock().unwrap().clone();
        for sink in sinks {
            sink.on_trace_finish(&trace, &inner.registry);
        }
    }
}

/// RAII guard from [`TraceContext::enter`]; restores the thread's previous
/// trace destination on drop. Not `Send` — it must drop on the thread
/// that entered.
pub struct TraceGuard {
    prev: Option<(u64, u64)>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            Telemetry::restore_current_trace(prev);
        }
    }
}

/// A `Copy` token capturing a thread's trace + innermost open span, for
/// carrying span parentage across a thread spawn.
#[derive(Debug, Clone, Copy)]
pub struct TraceScope {
    tel_id: u64,
    key: u64,
    parent: Option<u32>,
    active: bool,
}

impl TraceScope {
    /// A scope that changes nothing when entered.
    pub const fn inert() -> Self {
        TraceScope { tel_id: 0, key: 0, parent: None, active: false }
    }

    pub(crate) fn active(tel_id: u64, key: u64, parent: Option<u32>) -> Self {
        TraceScope { tel_id, key, parent, active: true }
    }
}

/// RAII guard from [`Telemetry::enter_scope`]. Not `Send`.
pub struct ScopeGuard {
    state: Option<(u64, u64, Option<u32>, (u64, u64))>,
    _not_send: PhantomData<*const ()>,
}

impl ScopeGuard {
    pub(crate) fn inert() -> Self {
        ScopeGuard { state: None, _not_send: PhantomData }
    }

    pub(crate) fn enter(scope: TraceScope) -> Self {
        if !scope.active {
            return ScopeGuard::inert();
        }
        let prev = Telemetry::set_current_trace(scope.tel_id, scope.key);
        if let Some(seq) = scope.parent {
            Telemetry::push_stack_entry(scope.tel_id, scope.key, seq);
        }
        ScopeGuard {
            state: Some((scope.tel_id, scope.key, scope.parent, prev)),
            _not_send: PhantomData,
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some((tid, key, parent, prev)) = self.state.take() {
            if let Some(seq) = parent {
                Telemetry::pop_stack_entry(tid, key, seq);
            }
            Telemetry::restore_current_trace(prev);
        }
    }
}
