//! The flight recorder: an always-on ring of recent completed traces that
//! dumps itself (plus a metrics snapshot) to disk whenever a trace
//! finishes flagged with a degradation, worker panic, or budget
//! exhaustion — so post-hoc debugging of a shed or degraded ticket needs
//! no foresight and no 100% sampling.
//!
//! Dump files are JSON (`raqo-flight-v1`):
//!
//! ```text
//! {
//!   "format": "raqo-flight-v1",
//!   "trigger_trace_id": "<32 hex>",
//!   "trigger_flags": ["degraded", ...],
//!   "recent_traces": [ {trace_id, name, flags, attrs, retained, spans[]} ... ],
//!   "metrics": { ...registry snapshot... }
//! }
//! ```
//!
//! The recorder is a [`SpanSink`]: it sees *every* finished trace before
//! the sampler discards anything, so the ring's context is complete even
//! at a 1% head rate.

use crate::span::spans_to_json_value;
use crate::trace::{CompletedTrace, SpanSink, TraceFlags};
use crate::{Counter, MetricsRegistry};
use serde::{write_value, Value};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Mutex;

/// Traces kept in the always-on ring (the dump's context window).
pub const DEFAULT_FLIGHT_KEEP: usize = 8;

/// Flags that trigger a dump when present on a finishing trace.
fn dump_trigger() -> TraceFlags {
    TraceFlags::DEGRADED
        .union(TraceFlags::PANIC)
        .union(TraceFlags::BUDGET_EXHAUSTED)
}

struct FlightState {
    recent: VecDeque<CompletedTrace>,
    dumps: u64,
    last_error: Option<String>,
}

/// See the module docs. Register with [`crate::Telemetry::add_span_sink`].
pub struct FlightRecorder {
    dir: PathBuf,
    keep: usize,
    state: Mutex<FlightState>,
}

fn trace_json(t: &CompletedTrace) -> Value {
    Value::Object(vec![
        ("trace_id".to_string(), Value::String(t.trace_id_hex())),
        ("name".to_string(), Value::String(t.name.clone())),
        (
            "flags".to_string(),
            Value::Array(
                t.flags
                    .names()
                    .into_iter()
                    .map(|n| Value::String(n.to_string()))
                    .collect(),
            ),
        ),
        (
            "attrs".to_string(),
            Value::Object(
                t.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                    .collect(),
            ),
        ),
        ("retained".to_string(), Value::Bool(t.retained)),
        ("evicted_spans".to_string(), Value::Num(t.evicted as f64)),
        ("spans".to_string(), spans_to_json_value(&t.spans)),
    ])
}

impl FlightRecorder {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_keep(dir, DEFAULT_FLIGHT_KEEP)
    }

    pub fn with_keep(dir: impl Into<PathBuf>, keep: usize) -> Self {
        FlightRecorder {
            dir: dir.into(),
            keep: keep.max(1),
            state: Mutex::new(FlightState {
                recent: VecDeque::new(),
                dumps: 0,
                last_error: None,
            }),
        }
    }

    /// Dumps successfully written so far.
    pub fn dump_count(&self) -> u64 {
        self.state.lock().unwrap().dumps
    }

    /// The most recent I/O error, if a dump failed.
    pub fn last_error(&self) -> Option<String> {
        self.state.lock().unwrap().last_error.clone()
    }
}

impl SpanSink for FlightRecorder {
    fn on_trace_finish(&self, trace: &CompletedTrace, registry: &MetricsRegistry) {
        let mut st = self.state.lock().unwrap();
        st.recent.push_back(trace.clone());
        while st.recent.len() > self.keep {
            st.recent.pop_front();
        }
        if !trace.flags.intersects(dump_trigger()) {
            return;
        }
        let doc = Value::Object(vec![
            (
                "format".to_string(),
                Value::String("raqo-flight-v1".to_string()),
            ),
            (
                "trigger_trace_id".to_string(),
                Value::String(trace.trace_id_hex()),
            ),
            (
                "trigger_flags".to_string(),
                Value::Array(
                    trace
                        .flags
                        .names()
                        .into_iter()
                        .map(|n| Value::String(n.to_string()))
                        .collect(),
                ),
            ),
            (
                "recent_traces".to_string(),
                Value::Array(st.recent.iter().map(trace_json).collect()),
            ),
            ("metrics".to_string(), registry.snapshot().to_json_value()),
        ]);
        let mut rendered = String::new();
        write_value(&mut rendered, &doc, Some(2), 0);
        rendered.push('\n');
        let seq = st.dumps + 1;
        let file = self.dir.join(format!(
            "flight_{seq:05}_{:016x}.json",
            (trace.trace_id >> 64) as u64
        ));
        let write = std::fs::create_dir_all(&self.dir)
            .and_then(|_| std::fs::write(&file, rendered.as_bytes()));
        match write {
            Ok(()) => {
                st.dumps = seq;
                st.last_error = None;
                registry.inc(Counter::FlightDumps, 1);
            }
            Err(e) => st.last_error = Some(format!("{}: {e}", file.display())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "raqo_flight_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn flagged_trace_dumps_ring_and_metrics() {
        let dir = tmpdir("dump");
        let tel = Telemetry::enabled();
        let rec = Arc::new(FlightRecorder::new(&dir));
        tel.add_span_sink(rec.clone());

        // Two clean traces fill the ring, then a degraded one trips a dump.
        for name in ["q1", "q2"] {
            let ctx = tel.start_trace(name);
            let g = ctx.enter();
            {
                let _s = tel.span("optimize");
            }
            drop(g);
            ctx.finish();
        }
        let ctx = tel.start_trace("q3");
        ctx.attr("tenant.namespace", 7);
        ctx.flag(TraceFlags::DEGRADED);
        ctx.finish();

        assert_eq!(rec.dump_count(), 1, "error: {:?}", rec.last_error());
        assert_eq!(
            tel.snapshot().unwrap().get(Counter::FlightDumps),
            1,
            "dump is counted"
        );
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let text = std::fs::read_to_string(entries[0].as_ref().unwrap().path()).unwrap();
        let doc = serde_json::from_str(&text).expect("dump parses as JSON");
        let rendered = serde::render_compact(&doc);
        assert!(text.contains("raqo-flight-v1"));
        assert!(rendered.contains("degraded"));
        assert!(rendered.contains("\"q1\""), "ring context includes earlier traces");
        assert!(rendered.contains("raqo_traces_started_total") || rendered.contains("traces_started"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_traces_do_not_dump() {
        let dir = tmpdir("clean");
        let tel = Telemetry::enabled();
        let rec = Arc::new(FlightRecorder::new(&dir));
        tel.add_span_sink(rec.clone());
        let ctx = tel.start_trace("ok");
        ctx.finish();
        assert_eq!(rec.dump_count(), 0);
        assert!(!dir.exists(), "no dump directory is created until a dump fires");
    }
}
