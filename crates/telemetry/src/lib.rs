//! `raqo-telemetry` — observability for the joint query+resource
//! optimizer.
//!
//! Three layers, all dependency-free:
//!
//! 1. **Spans** ([`Telemetry::span`]): RAII guards with monotonic timings
//!    and thread-local parent/child nesting, covering the pipeline phases
//!    (dispatch, Selinger DP levels, randomized rounds, resource planning,
//!    cache lookups). Capped at [`MAX_SPANS`] with a dropped counter.
//! 2. **Metrics registry** ([`MetricsRegistry`]): enum-indexed atomic
//!    counters and fixed-bucket histograms, exported as JSON
//!    ([`MetricsSnapshot::to_json`]) and Prometheus text format
//!    ([`MetricsSnapshot::to_prometheus`]).
//! 3. **The no-op sink**: [`Telemetry::disabled`] is the default
//!    everywhere; every instrumentation call on it is branch-on-`None`
//!    and free — no clock reads, no locks, no allocation (asserted by the
//!    `no_alloc` integration test and the `telemetry_overhead` bench).

mod metrics;
mod span;

pub use metrics::{
    Counter, Gauge, Hist, HistSnapshot, MetricsRegistry, MetricsSnapshot, LOCK_WAIT_BUCKETS,
    PLAN_COST_LATENCY_BUCKETS, QUEUE_WAIT_BUCKETS, RESOURCE_ITERATIONS_BUCKETS,
    SHARD_LABEL_BUCKETS,
};
pub use span::{aggregate_spans, render_span_tree, Span, SpanRecord, Stopwatch, Telemetry, MAX_SPANS};
