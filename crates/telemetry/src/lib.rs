//! `raqo-telemetry` — observability for the joint query+resource
//! optimizer.
//!
//! Four layers, all dependency-free:
//!
//! 1. **Spans** ([`Telemetry::span`]): RAII guards with monotonic timings
//!    and thread-local parent/child nesting, covering the pipeline phases
//!    (dispatch, Selinger DP levels, randomized rounds, resource planning,
//!    cache lookups). Backed by bounded ring buffers (ambient cap
//!    [`MAX_SPANS`], per-ticket cap [`DEFAULT_TRACE_SPAN_CAP`]) with
//!    evictions counted.
//! 2. **The trace pipeline** ([`Telemetry::start_trace`]): per-ticket
//!    traces with deterministic ids and attributes, two-stage sampling
//!    (seeded head rate + tail retention of degraded/panicked/
//!    budget-exhausted/sanitized tickets), pluggable [`SpanSink`]s, an
//!    OTLP/JSON-shaped exporter ([`Telemetry::otlp_json`]), and a
//!    [`FlightRecorder`] that dumps recent traces + metrics to disk when
//!    trouble fires.
//! 3. **Metrics registry** ([`MetricsRegistry`]): enum-indexed atomic
//!    counters and fixed-bucket histograms, exported as JSON
//!    ([`MetricsSnapshot::to_json`]) and Prometheus text format
//!    ([`MetricsSnapshot::to_prometheus`]).
//! 4. **The no-op sink**: [`Telemetry::disabled`] is the default
//!    everywhere; every instrumentation call on it is branch-on-`None`
//!    and free — no clock reads, no locks, no allocation (asserted by the
//!    `no_alloc` integration test and the `telemetry_overhead` bench).

mod flight;
mod metrics;
mod otlp;
mod span;
mod trace;

pub use flight::{FlightRecorder, DEFAULT_FLIGHT_KEEP};
pub use metrics::{
    Counter, Gauge, Hist, HistSnapshot, MetricsRegistry, MetricsSnapshot, LOCK_WAIT_BUCKETS,
    PLAN_COST_LATENCY_BUCKETS, QUEUE_WAIT_BUCKETS, RESOURCE_ITERATIONS_BUCKETS,
    SHARD_LABEL_BUCKETS,
};
pub use span::{
    aggregate_spans, render_span_tree, spans_to_json_value, Span, SpanRecord, Stopwatch,
    Telemetry, MAX_SPANS,
};
pub use trace::{
    CompletedTrace, ScopeGuard, SpanSink, TraceConfig, TraceContext, TraceFlags, TraceGuard,
    TraceScope, DEFAULT_TRACE_SPAN_CAP,
};
