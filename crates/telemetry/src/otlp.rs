//! OTLP/JSON-shaped span export (resource → scope → spans), rendered via
//! the vendored `serde` value tree.
//!
//! The layout follows the OpenTelemetry protobuf JSON mapping closely
//! enough for a collector-shaped consumer: hex trace/span ids, unix-nano
//! timestamps carried as strings (they exceed the f64 integer range),
//! key/value attributes with typed value wrappers, and a per-span status.
//! Spans still open when a trace is exported carry a
//! `raqo.span.open=true` attribute and an end timestamp equal to their
//! start, instead of pretending to be zero-duration.

use crate::span::{SpanRecord, Telemetry};
use crate::trace::{span_id_for, CompletedTrace, TraceFlags};
use serde::{write_value, Value};

fn kv_str(key: &str, value: &str) -> Value {
    Value::Object(vec![
        ("key".to_string(), Value::String(key.to_string())),
        (
            "value".to_string(),
            Value::Object(vec![(
                "stringValue".to_string(),
                Value::String(value.to_string()),
            )]),
        ),
    ])
}

fn kv_bool(key: &str, value: bool) -> Value {
    Value::Object(vec![
        ("key".to_string(), Value::String(key.to_string())),
        (
            "value".to_string(),
            Value::Object(vec![("boolValue".to_string(), Value::Bool(value))]),
        ),
    ])
}

/// One exportable trace: either completed or still in flight.
pub(crate) struct TraceView {
    pub trace_id: u128,
    pub attrs: Vec<(String, String)>,
    pub flags: TraceFlags,
    pub spans: Vec<SpanRecord>,
    pub open: bool,
}

impl TraceView {
    pub(crate) fn from_completed(t: &CompletedTrace) -> Self {
        TraceView {
            trace_id: t.trace_id,
            attrs: t.attrs.clone(),
            flags: t.flags,
            spans: t.spans.clone(),
            open: false,
        }
    }
}

fn span_value(view: &TraceView, s: &SpanRecord, epoch_unix_ns: u64) -> Value {
    let trace_hex = format!("{:032x}", view.trace_id);
    let span_hex = format!("{:016x}", span_id_for(view.trace_id, s.id));
    let parent_hex = match s.parent {
        Some(p) => format!("{:016x}", span_id_for(view.trace_id, p)),
        None => String::new(),
    };
    let start_unix = epoch_unix_ns.saturating_add(s.start_ns);
    let end_unix = epoch_unix_ns.saturating_add(s.end_ns.unwrap_or(s.start_ns));
    let mut attrs = Vec::new();
    if s.parent.is_none() {
        // The root span carries the trace-level attributes and flags.
        for (k, v) in &view.attrs {
            attrs.push(kv_str(k, v));
        }
        if !view.flags.is_empty() {
            attrs.push(kv_str("raqo.trace.flags", &view.flags.names().join(",")));
        }
        if view.open {
            attrs.push(kv_bool("raqo.trace.open", true));
        }
    }
    if s.is_open() {
        attrs.push(kv_bool("raqo.span.open", true));
    }
    let status = if view.flags.is_empty() || s.parent.is_some() {
        Value::Object(vec![("code".to_string(), Value::Num(1.0))])
    } else {
        // STATUS_CODE_ERROR on the root of a flagged trace makes
        // tail-retained tickets stand out in a collector UI.
        Value::Object(vec![
            ("code".to_string(), Value::Num(2.0)),
            (
                "message".to_string(),
                Value::String(view.flags.names().join(",")),
            ),
        ])
    };
    Value::Object(vec![
        ("traceId".to_string(), Value::String(trace_hex)),
        ("spanId".to_string(), Value::String(span_hex)),
        ("parentSpanId".to_string(), Value::String(parent_hex)),
        ("name".to_string(), Value::String(s.name.clone())),
        // SPAN_KIND_INTERNAL: these are in-process planning phases.
        ("kind".to_string(), Value::Num(1.0)),
        (
            "startTimeUnixNano".to_string(),
            Value::String(start_unix.to_string()),
        ),
        (
            "endTimeUnixNano".to_string(),
            Value::String(end_unix.to_string()),
        ),
        ("attributes".to_string(), Value::Array(attrs)),
        ("status".to_string(), status),
    ])
}

pub(crate) fn otlp_value(
    views: &[TraceView],
    resource_attrs: &[(String, String)],
    epoch_unix_ns: u64,
) -> Value {
    let mut resource = vec![kv_str("service.name", "raqo-optimizer")];
    for (k, v) in resource_attrs {
        resource.push(kv_str(k, v));
    }
    let mut spans = Vec::new();
    for view in views {
        for s in &view.spans {
            spans.push(span_value(view, s, epoch_unix_ns));
        }
    }
    let scope = Value::Object(vec![
        ("name".to_string(), Value::String("raqo-telemetry".to_string())),
        (
            "version".to_string(),
            Value::String(env!("CARGO_PKG_VERSION").to_string()),
        ),
    ]);
    Value::Object(vec![(
        "resourceSpans".to_string(),
        Value::Array(vec![Value::Object(vec![
            (
                "resource".to_string(),
                Value::Object(vec![("attributes".to_string(), Value::Array(resource))]),
            ),
            (
                "scopeSpans".to_string(),
                Value::Array(vec![Value::Object(vec![
                    ("scope".to_string(), scope),
                    ("spans".to_string(), Value::Array(spans)),
                ])]),
            ),
        ])]),
    )])
}

/// Chrome trace-event-format rendering (`chrome://tracing` /
/// [Perfetto](https://ui.perfetto.dev) loadable): one complete (`"X"`)
/// event per closed span, one begin (`"B"`) event per still-open span.
/// Traces map to Chrome "processes" so concurrent tickets lay out on
/// separate tracks.
pub(crate) fn chrome_trace_value(views: &[TraceView]) -> Value {
    let mut events = Vec::new();
    for (pid, view) in views.iter().enumerate() {
        for s in &view.spans {
            let mut ev = vec![
                ("name".to_string(), Value::String(s.name.clone())),
                ("cat".to_string(), Value::String("raqo".to_string())),
                (
                    "ph".to_string(),
                    Value::String(if s.is_open() { "B" } else { "X" }.to_string()),
                ),
                ("ts".to_string(), Value::Num(s.start_ns as f64 / 1e3)),
                ("pid".to_string(), Value::Num(pid as f64)),
                ("tid".to_string(), Value::Num(s.id as f64)),
            ];
            if !s.is_open() {
                ev.push(("dur".to_string(), Value::Num(s.dur_ns() as f64 / 1e3)));
            }
            events.push(Value::Object(ev));
        }
    }
    Value::Array(events)
}

impl Telemetry {
    fn export_views(&self) -> Vec<TraceView> {
        let Some(inner) = self.inner() else {
            return Vec::new();
        };
        let p = inner.pipeline.lock().unwrap();
        let mut views: Vec<TraceView> =
            p.completed.iter().map(TraceView::from_completed).collect();
        for (_, buf) in &p.active {
            views.push(TraceView {
                trace_id: buf.trace_id,
                attrs: buf.attrs.clone(),
                flags: buf.flags,
                spans: buf.spans.iter().cloned().collect(),
                open: true,
            });
        }
        if !p.ambient.spans.is_empty() {
            views.push(TraceView {
                trace_id: p.ambient.trace_id,
                attrs: vec![("raqo.trace.ambient".to_string(), "true".to_string())],
                flags: p.ambient.flags,
                spans: p.ambient.spans.iter().cloned().collect(),
                open: true,
            });
        }
        views
    }

    /// OTLP/JSON-shaped export of every trace currently held: retained
    /// completed traces, in-flight ticket traces (roots marked open), and
    /// the ambient trace. `Value::Null` when disabled.
    pub fn otlp_json_value(&self) -> Value {
        let Some(inner) = self.inner() else {
            return Value::Null;
        };
        otlp_value(&self.export_views(), &[], inner.epoch_unix_ns)
    }

    /// [`Telemetry::otlp_json_value`] pretty-rendered to a string.
    pub fn otlp_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, &self.otlp_json_value(), Some(2), 0);
        out.push('\n');
        out
    }

    /// Chrome trace-event-format export of every trace currently held
    /// (load in `chrome://tracing` or Perfetto). `Value::Null` when
    /// disabled.
    pub fn chrome_trace_json_value(&self) -> Value {
        if self.inner().is_none() {
            return Value::Null;
        }
        chrome_trace_value(&self.export_views())
    }
}
