//! Lightweight span tracing with monotonic timings and parent/child
//! nesting, backed by the bounded trace pipeline in [`crate::trace`].
//!
//! A [`Span`] is an RAII guard: opening one records a start offset against
//! the telemetry epoch and pushes it on a thread-local stack (so spans
//! opened while it is live become its children); dropping it stamps the
//! end timestamp. Spans land either in the *ambient* trace (the legacy
//! one-shot view behind [`Telemetry::spans`]) or, when a thread has
//! entered a [`crate::TraceContext`], in that ticket's own ring buffer.
//! When telemetry is disabled every operation is a no-op on a `None` — no
//! clock reads, no locks, no allocation.

use crate::metrics::MetricsRegistry;
use crate::trace::{
    self, CompletedTrace, Pipeline, ScopeGuard, SpanSink, TraceConfig, TraceContext, TraceFlags,
    TraceScope,
};
use crate::Counter;
use serde::Value;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default span capacity of the ambient (non-ticket) trace ring. Past it
/// the oldest spans are evicted and counted in [`Counter::SpansDropped`] —
/// hot loops cannot grow the trace without bound.
pub const MAX_SPANS: usize = 65_536;

/// One finished (or still-open) span in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub name: String,
    /// Stable per-trace sequence id. Survives ring eviction: ids are
    /// assigned monotonically from 0 and never reused, so parent links
    /// stay valid even after older records have been evicted.
    pub id: u32,
    /// Sequence id of the parent span in the same trace; root spans have
    /// none.
    pub parent: Option<u32>,
    /// Start offset from the telemetry epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the telemetry epoch; `None` while the span is
    /// still open (exports mark such spans as open rather than
    /// zero-duration).
    pub end_ns: Option<u64>,
}

impl SpanRecord {
    /// Whether the span has not been closed yet.
    #[inline]
    pub fn is_open(&self) -> bool {
        self.end_ns.is_none()
    }

    /// Duration in nanoseconds; zero for spans still open.
    #[inline]
    pub fn dur_ns(&self) -> u64 {
        match self.end_ns {
            Some(end) => end.saturating_sub(self.start_ns),
            None => 0,
        }
    }
}

pub(crate) struct Inner {
    /// Distinguishes handles on the shared thread-local stack.
    pub(crate) id: u64,
    pub(crate) epoch: Instant,
    /// Wall-clock anchor of `epoch`, for OTLP unix-nano timestamps.
    pub(crate) epoch_unix_ns: u64,
    pub(crate) registry: MetricsRegistry,
    pub(crate) pipeline: Mutex<Pipeline>,
    pub(crate) sinks: Mutex<Vec<Arc<dyn SpanSink>>>,
}

thread_local! {
    /// Stack of open spans on this thread: (telemetry id, trace key, span
    /// sequence id).
    static SPAN_STACK: RefCell<Vec<(u64, u64, u32)>> = const { RefCell::new(Vec::new()) };
    /// The trace new spans on this thread are recorded into: (telemetry
    /// id, trace key). Key 0 is the ambient trace.
    static CURRENT_TRACE: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The telemetry handle threaded through the optimizer stack. Cheap to
/// clone (an `Arc` when enabled, a `None` when disabled); the disabled
/// handle makes every instrumentation site free.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op sink: every span/counter/histogram call returns
    /// immediately without touching a clock, lock, or allocator.
    pub const fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with a fresh registry, empty span pipeline, and
    /// the default [`TraceConfig`] (head sampling keeps everything).
    pub fn enabled() -> Self {
        Self::with_trace_config(TraceConfig::default())
    }

    /// An enabled handle with an explicit sampling/capacity configuration.
    pub fn with_trace_config(config: TraceConfig) -> Self {
        let epoch_unix_ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Telemetry {
            inner: Some(Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                epoch_unix_ns,
                registry: MetricsRegistry::new(),
                pipeline: Mutex::new(Pipeline::new(config)),
                sinks: Mutex::new(Vec::new()),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub(crate) fn inner(&self) -> Option<&Arc<Inner>> {
        self.inner.as_ref()
    }

    /// Open a span named `name`, parented at the innermost span currently
    /// open on this thread (within the thread's current trace). Returns a
    /// guard whose drop stamps the end timestamp.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { inner: None },
            Some(inner) => Span::open(inner, name.to_string()),
        }
    }

    /// Open a span whose name carries an index, e.g. `selinger.level.3`.
    /// The label is only formatted (allocated) when telemetry is enabled.
    #[inline]
    pub fn span_labeled(&self, prefix: &str, idx: usize) -> Span {
        match &self.inner {
            None => Span { inner: None },
            Some(inner) => Span::open(inner, format!("{prefix}.{idx}")),
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a counter by `n`. Counters that signal trouble (worker
    /// panics, cost sanitizations, degradation rungs) also flag the
    /// thread's current trace so tail sampling retains it.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.inc(c, n);
            let flags = trace::auto_flag(c);
            if !flags.is_empty() {
                self.flag_current_trace(flags);
            }
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, h: crate::Hist, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(h, value);
        }
    }

    /// Set a stored gauge to an absolute level.
    #[inline]
    pub fn gauge_set(&self, g: crate::Gauge, value: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(g, value);
        }
    }

    /// Move a stored gauge by `delta` (negative to decrement).
    #[inline]
    pub fn gauge_add(&self, g: crate::Gauge, delta: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_add(g, delta);
        }
    }

    /// Start a latency stopwatch; reads the clock only when enabled.
    #[inline]
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Observe the stopwatch's elapsed microseconds into a histogram.
    #[inline]
    pub fn observe_elapsed_us(&self, h: crate::Hist, sw: &Stopwatch) {
        if let (Some(inner), Some(t0)) = (&self.inner, sw.0) {
            inner.registry.observe(h, t0.elapsed().as_micros() as u64);
        }
    }

    /// The live registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Point-in-time metrics snapshot, when enabled.
    pub fn snapshot(&self) -> Option<crate::MetricsSnapshot> {
        self.registry().map(|r| r.snapshot())
    }

    // ---- trace pipeline -------------------------------------------------

    /// Register a sink invoked for *every* finished trace (before the
    /// sampling decision discards anything). No-op when disabled.
    pub fn add_span_sink(&self, sink: Arc<dyn SpanSink>) {
        if let Some(inner) = &self.inner {
            inner.sinks.lock().unwrap().push(sink);
        }
    }

    /// Start a new trace (one planning ticket). The returned context is
    /// inert when telemetry is disabled: every method on it is free.
    pub fn start_trace(&self, name: &str) -> TraceContext {
        match &self.inner {
            None => TraceContext::inert(),
            Some(inner) => TraceContext::start(inner, name),
        }
    }

    /// Raise `flags` on the trace the current thread is recording into
    /// (no-op on the ambient trace or when disabled).
    pub fn flag_current_trace(&self, flags: TraceFlags) {
        let Some(inner) = &self.inner else { return };
        let (tid, key) = CURRENT_TRACE.with(|c| c.get());
        if tid != inner.id || key == 0 {
            return;
        }
        let mut p = inner.pipeline.lock().unwrap();
        if let Some(buf) = p.buf_mut(key) {
            buf.flags = buf.flags.union(flags);
        }
    }

    /// Capture the current thread's trace position (trace + innermost
    /// open span) as a `Copy` token that can be carried into a spawned
    /// worker and entered there, so the worker's spans parent under the
    /// capturing thread's span instead of becoming orphan roots.
    pub fn current_scope(&self) -> TraceScope {
        let Some(inner) = &self.inner else {
            return TraceScope::inert();
        };
        let (tid, key) = CURRENT_TRACE.with(|c| c.get());
        let key = if tid == inner.id { key } else { 0 };
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .last()
                .filter(|(id, k, _)| *id == inner.id && *k == key)
                .map(|(_, _, seq)| *seq)
        });
        TraceScope::active(inner.id, key, parent)
    }

    /// Enter a scope captured by [`Telemetry::current_scope`] on another
    /// thread. Spans opened while the guard lives record into the scope's
    /// trace, parented under the captured span.
    pub fn enter_scope(&self, scope: TraceScope) -> ScopeGuard {
        if self.inner.is_none() {
            return ScopeGuard::inert();
        }
        ScopeGuard::enter(scope)
    }

    pub(crate) fn set_current_trace(tid: u64, key: u64) -> (u64, u64) {
        CURRENT_TRACE.with(|c| c.replace((tid, key)))
    }

    pub(crate) fn restore_current_trace(prev: (u64, u64)) {
        CURRENT_TRACE.with(|c| c.set(prev));
    }

    pub(crate) fn push_stack_entry(tid: u64, key: u64, seq: u32) {
        SPAN_STACK.with(|s| s.borrow_mut().push((tid, key, seq)));
    }

    pub(crate) fn pop_stack_entry(tid: u64, key: u64, seq: u32) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&e| e == (tid, key, seq)) {
                stack.remove(pos);
            }
        });
    }

    /// Completed traces currently retained by the sampler, oldest first.
    pub fn completed_traces(&self) -> Vec<CompletedTrace> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let p = inner.pipeline.lock().unwrap();
                p.completed.iter().cloned().collect()
            }
        }
    }

    /// Total spans held in the retained completed-trace ring. Bounded by
    /// [`TraceConfig::completed_span_capacity`].
    pub fn completed_span_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.pipeline.lock().unwrap().completed_spans,
        }
    }

    /// Number of traces started but not yet finished.
    pub fn active_trace_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.pipeline.lock().unwrap().active.len(),
        }
    }

    /// The sampling/capacity configuration, when enabled.
    pub fn trace_config(&self) -> Option<TraceConfig> {
        self.inner
            .as_ref()
            .map(|i| i.pipeline.lock().unwrap().config)
    }

    // ---- ambient span views (legacy one-shot API) ----------------------

    /// Copy of the ambient trace's spans (empty when disabled). Ticket
    /// traces started via [`Telemetry::start_trace`] do not appear here.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let p = inner.pipeline.lock().unwrap();
                p.ambient.spans.iter().cloned().collect()
            }
        }
    }

    /// Discard ambient spans (metrics and ticket traces are unaffected).
    /// Used between queries when tracing several in one process.
    pub fn clear_spans(&self) {
        if let Some(inner) = &self.inner {
            let mut p = inner.pipeline.lock().unwrap();
            p.ambient.spans.clear();
        }
    }

    /// Render the ambient spans as an indented tree with durations.
    pub fn span_tree_text(&self) -> String {
        render_span_tree(&self.spans())
    }

    /// The ambient spans as a JSON array of `{name, parent, start_us,
    /// dur_us, open}` objects.
    pub fn spans_to_json_value(&self) -> Value {
        spans_to_json_value(&self.spans())
    }
}

/// Flat-JSON rendering of a span slice: `{name, parent, start_us, dur_us,
/// open}` per span. `parent` is the parent's sequence id; `dur_us` is
/// `null` for spans still open (which also carry `"open": true`).
pub fn spans_to_json_value(spans: &[SpanRecord]) -> Value {
    Value::Array(
        spans
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(s.name.clone())),
                    (
                        "parent".to_string(),
                        match s.parent {
                            Some(p) => Value::Num(p as f64),
                            None => Value::Null,
                        },
                    ),
                    ("start_us".to_string(), Value::Num(s.start_ns as f64 / 1e3)),
                    (
                        "dur_us".to_string(),
                        if s.is_open() {
                            Value::Null
                        } else {
                            Value::Num(s.dur_ns() as f64 / 1e3)
                        },
                    ),
                    ("open".to_string(), Value::Bool(s.is_open())),
                ])
            })
            .collect(),
    )
}

/// A started-or-inert stopwatch from [`Telemetry::stopwatch`].
#[derive(Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

/// RAII span guard; the end timestamp is stamped on drop.
pub struct Span {
    inner: Option<(Arc<Inner>, u64, u32, Instant)>,
}

impl Span {
    fn open(inner: &Arc<Inner>, name: String) -> Span {
        let start = Instant::now();
        let (tid, cur_key) = CURRENT_TRACE.with(|c| c.get());
        let key = if tid == inner.id { cur_key } else { 0 };
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .last()
                .filter(|(id, k, _)| *id == inner.id && *k == key)
                .map(|(_, _, seq)| *seq)
        });
        let start_ns = start.duration_since(inner.epoch).as_nanos() as u64;
        let seq = {
            let mut p = inner.pipeline.lock().unwrap();
            let Some(buf) = p.buf_mut(key) else {
                // The trace finished while this thread still pointed at it
                // (a lifecycle bug upstream); count rather than misfile.
                drop(p);
                inner.registry.inc(Counter::SpansDropped, 1);
                return Span { inner: None };
            };
            // Inside a ticket trace, spans with no open ancestor on this
            // thread parent at the ticket root instead of dangling.
            let parent = parent.or(if key != 0 { Some(trace::ROOT_SEQ) } else { None });
            let (seq, evicted) = buf.push_span(name, parent, start_ns);
            if evicted > 0 {
                drop(p);
                inner.registry.inc(Counter::SpansDropped, evicted);
            }
            seq
        };
        SPAN_STACK.with(|s| s.borrow_mut().push((inner.id, key, seq)));
        Span {
            inner: Some((Arc::clone(inner), key, seq, start)),
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, key, seq, start)) = self.inner.take() {
            let dur = (start.elapsed().as_nanos() as u64).max(1);
            {
                let mut p = inner.pipeline.lock().unwrap();
                if let Some(rec) = p.buf_mut(key).and_then(|b| b.get_mut(seq)) {
                    rec.end_ns = Some(rec.start_ns + dur);
                }
            }
            Telemetry::pop_stack_entry(inner.id, key, seq);
        }
    }
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Indented-tree rendering of a span slice (children under parents, in
/// start order). Parents are matched by sequence id; spans whose parent
/// was evicted from the ring render as roots. Open spans render `(open)`
/// in place of a duration.
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        let parent_pos = s
            .parent
            .and_then(|p| spans.iter().position(|c| c.id == p));
        match parent_pos {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let mut out = String::new();
    fn walk(
        out: &mut String,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let s = &spans[i];
        let dur = if s.is_open() { "(open)".to_string() } else { fmt_dur(s.dur_ns()) };
        out.push_str(&format!("{}{} {}\n", "  ".repeat(depth), s.name, dur));
        for &c in &children[i] {
            walk(out, spans, children, c, depth + 1);
        }
    }
    for r in roots {
        walk(&mut out, spans, &children, r, 0);
    }
    out
}

/// Per-name aggregate over a span slice: (name, count, total duration ns),
/// ordered by total duration descending.
pub fn aggregate_spans(spans: &[SpanRecord]) -> Vec<(String, u64, u64)> {
    let mut agg: Vec<(String, u64, u64)> = Vec::new();
    for s in spans {
        match agg.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += s.dur_ns();
            }
            None => agg.push((s.name.clone(), 1, s.dur_ns())),
        }
    }
    agg.sort_by(|a, b| b.2.cmp(&a.2));
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let _a = tel.span("a");
            let _b = tel.span("b");
        }
        assert!(tel.spans().is_empty());
        assert!(tel.snapshot().is_none());
        assert!(!tel.is_enabled());
    }

    #[test]
    fn span_nesting_follows_guard_scopes() {
        let tel = Telemetry::enabled();
        {
            let _root = tel.span("optimize");
            {
                let _child = tel.span("dispatch");
                let _grand = tel.span("planner.selinger");
            }
            let _sibling = tel.span("explain");
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "optimize");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "dispatch");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].name, "planner.selinger");
        assert_eq!(spans[2].parent, Some(1), "grandchild parents at the open child");
        assert_eq!(spans[3].name, "explain");
        assert_eq!(spans[3].parent, Some(0), "sibling re-parents at the root");
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.id, i as u32, "with no eviction, seq ids match store order");
            assert!(!s.is_open(), "span {:?} was closed", s.name);
            assert!(s.dur_ns() > 0, "closed span {:?} has a stamped duration", s.name);
        }
        // Children start within the root and no earlier than it.
        assert!(spans[1].start_ns >= spans[0].start_ns);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let tel = Telemetry::enabled();
        {
            let _a = tel.span("a");
        }
        {
            let _b = tel.span("b");
        }
        let spans = tel.spans();
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn labeled_span_formats_index() {
        let tel = Telemetry::enabled();
        {
            let _l = tel.span_labeled("selinger.level", 3);
        }
        assert_eq!(tel.spans()[0].name, "selinger.level.3");
    }

    #[test]
    fn spans_from_worker_threads_are_roots() {
        let tel = Telemetry::enabled();
        let _outer = tel.span("outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _w = tel.span("worker");
            });
        });
        let spans = tel.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        // The worker thread's stack is empty, so its span is a root — it
        // never parents at a span of another thread (unless a TraceScope
        // is explicitly entered there).
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn open_span_is_marked_open_not_zero_duration() {
        let tel = Telemetry::enabled();
        let _held = tel.span("held");
        let spans = tel.spans();
        assert!(spans[0].is_open());
        assert_eq!(spans[0].end_ns, None);
        assert_eq!(spans[0].dur_ns(), 0);
        let json = serde::render_compact(&tel.spans_to_json_value());
        assert!(json.contains("\"open\":true"), "flat JSON marks open spans: {json}");
        assert!(tel.span_tree_text().contains("(open)"));
        drop(_held);
        let spans = tel.spans();
        assert!(!spans[0].is_open());
        assert!(spans[0].dur_ns() > 0);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let tel = Telemetry::enabled();
        for _ in 0..MAX_SPANS + 10 {
            let _s = tel.span("x");
        }
        assert_eq!(tel.spans().len(), MAX_SPANS);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.get(Counter::SpansDropped), 10);
        // Ring semantics: the oldest records were evicted, so the store
        // now starts at sequence id 10 and parent links stay stable.
        assert_eq!(tel.spans()[0].id, 10);
    }

    #[test]
    fn tree_render_indents_children() {
        let tel = Telemetry::enabled();
        {
            let _root = tel.span("optimize");
            let _child = tel.span("dispatch");
        }
        let text = tel.span_tree_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("optimize "));
        assert!(lines[1].starts_with("  dispatch "));
    }

    #[test]
    fn aggregate_sums_by_name() {
        let spans = vec![
            SpanRecord { name: "a".into(), id: 0, parent: None, start_ns: 0, end_ns: Some(5) },
            SpanRecord { name: "b".into(), id: 1, parent: None, start_ns: 0, end_ns: Some(100) },
            SpanRecord { name: "a".into(), id: 2, parent: None, start_ns: 0, end_ns: Some(7) },
        ];
        let agg = aggregate_spans(&spans);
        assert_eq!(agg[0], ("b".to_string(), 1, 100));
        assert_eq!(agg[1], ("a".to_string(), 2, 12));
    }

    #[test]
    fn clear_spans_keeps_metrics() {
        let tel = Telemetry::enabled();
        tel.inc(Counter::PlanCostCalls);
        {
            let _s = tel.span("q1");
        }
        tel.clear_spans();
        assert!(tel.spans().is_empty());
        assert_eq!(tel.snapshot().unwrap().get(Counter::PlanCostCalls), 1);
    }
}
