//! Lightweight span tracing with monotonic timings and parent/child
//! nesting.
//!
//! A [`Span`] is an RAII guard: opening one records a start offset against
//! the telemetry epoch and pushes it on a thread-local stack (so spans
//! opened while it is live become its children); dropping it stamps the
//! duration. When telemetry is disabled every operation is a no-op on a
//! `None` — no clock reads, no locks, no allocation.

use crate::metrics::MetricsRegistry;
use crate::Counter;
use serde::Value;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on retained spans per telemetry handle. Past it, spans are
/// counted in [`Counter::SpansDropped`] instead of stored — hot loops
/// cannot grow the trace without bound.
pub const MAX_SPANS: usize = 65_536;

/// One finished (or still-open) span in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub name: String,
    /// Index of the parent span in the same trace, root spans have none.
    pub parent: Option<u32>,
    /// Start offset from the telemetry epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds; zero while the span is still open.
    pub dur_ns: u64,
}

struct SpanStore {
    records: Vec<SpanRecord>,
}

pub(crate) struct Inner {
    /// Distinguishes handles on the shared thread-local stack.
    id: u64,
    epoch: Instant,
    pub(crate) registry: MetricsRegistry,
    spans: Mutex<SpanStore>,
}

thread_local! {
    /// Stack of open spans on this thread: (telemetry id, span index).
    static SPAN_STACK: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The telemetry handle threaded through the optimizer stack. Cheap to
/// clone (an `Arc` when enabled, a `None` when disabled); the disabled
/// handle makes every instrumentation site free.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op sink: every span/counter/histogram call returns
    /// immediately without touching a clock, lock, or allocator.
    pub const fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with a fresh registry and empty span store.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                registry: MetricsRegistry::new(),
                spans: Mutex::new(SpanStore { records: Vec::new() }),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name`, parented at the innermost span currently
    /// open on this thread. Returns a guard whose drop stamps the duration.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { inner: None },
            Some(inner) => Span::open(inner, name.to_string()),
        }
    }

    /// Open a span whose name carries an index, e.g. `selinger.level.3`.
    /// The label is only formatted (allocated) when telemetry is enabled.
    #[inline]
    pub fn span_labeled(&self, prefix: &str, idx: usize) -> Span {
        match &self.inner {
            None => Span { inner: None },
            Some(inner) => Span::open(inner, format!("{prefix}.{idx}")),
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.inc(c, n);
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, h: crate::Hist, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(h, value);
        }
    }

    /// Set a stored gauge to an absolute level.
    #[inline]
    pub fn gauge_set(&self, g: crate::Gauge, value: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(g, value);
        }
    }

    /// Move a stored gauge by `delta` (negative to decrement).
    #[inline]
    pub fn gauge_add(&self, g: crate::Gauge, delta: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_add(g, delta);
        }
    }

    /// Start a latency stopwatch; reads the clock only when enabled.
    #[inline]
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Observe the stopwatch's elapsed microseconds into a histogram.
    #[inline]
    pub fn observe_elapsed_us(&self, h: crate::Hist, sw: &Stopwatch) {
        if let (Some(inner), Some(t0)) = (&self.inner, sw.0) {
            inner.registry.observe(h, t0.elapsed().as_micros() as u64);
        }
    }

    /// The live registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Point-in-time metrics snapshot, when enabled.
    pub fn snapshot(&self) -> Option<crate::MetricsSnapshot> {
        self.registry().map(|r| r.snapshot())
    }

    /// Copy of the recorded spans (empty when disabled).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.spans.lock().unwrap().records.clone(),
        }
    }

    /// Discard recorded spans (metrics are unaffected). Used between
    /// queries when tracing several in one process.
    pub fn clear_spans(&self) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().unwrap().records.clear();
        }
    }

    /// Render the recorded spans as an indented tree with durations.
    pub fn span_tree_text(&self) -> String {
        render_span_tree(&self.spans())
    }

    /// The recorded spans as a JSON array of `{name, parent, start_us,
    /// dur_us}` objects.
    pub fn spans_to_json_value(&self) -> Value {
        Value::Array(
            self.spans()
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("name".to_string(), Value::String(s.name.clone())),
                        (
                            "parent".to_string(),
                            match s.parent {
                                Some(p) => Value::Num(p as f64),
                                None => Value::Null,
                            },
                        ),
                        ("start_us".to_string(), Value::Num(s.start_ns as f64 / 1e3)),
                        ("dur_us".to_string(), Value::Num(s.dur_ns as f64 / 1e3)),
                    ])
                })
                .collect(),
        )
    }
}

/// A started-or-inert stopwatch from [`Telemetry::stopwatch`].
#[derive(Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

/// RAII span guard; duration is stamped on drop.
pub struct Span {
    inner: Option<(Arc<Inner>, u32, Instant)>,
}

impl Span {
    fn open(inner: &Arc<Inner>, name: String) -> Span {
        let start = Instant::now();
        let idx = {
            let mut store = inner.spans.lock().unwrap();
            if store.records.len() >= MAX_SPANS {
                drop(store);
                inner.registry.inc(Counter::SpansDropped, 1);
                return Span { inner: None };
            }
            let parent = SPAN_STACK.with(|s| {
                s.borrow()
                    .last()
                    .filter(|(id, _)| *id == inner.id)
                    .map(|(_, idx)| *idx)
            });
            let idx = store.records.len() as u32;
            store.records.push(SpanRecord {
                name,
                parent,
                start_ns: start.duration_since(inner.epoch).as_nanos() as u64,
                dur_ns: 0,
            });
            idx
        };
        SPAN_STACK.with(|s| s.borrow_mut().push((inner.id, idx)));
        Span {
            inner: Some((Arc::clone(inner), idx, start)),
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, idx, start)) = self.inner.take() {
            let dur = start.elapsed().as_nanos() as u64;
            inner.spans.lock().unwrap().records[idx as usize].dur_ns = dur.max(1);
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&e| e == (inner.id, idx)) {
                    stack.remove(pos);
                }
            });
        }
    }
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Indented-tree rendering of a span slice (children under parents, in
/// start order).
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) => children[p as usize].push(i),
            None => roots.push(i),
        }
    }
    let mut out = String::new();
    fn walk(
        out: &mut String,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let s = &spans[i];
        out.push_str(&format!("{}{} {}\n", "  ".repeat(depth), s.name, fmt_dur(s.dur_ns)));
        for &c in &children[i] {
            walk(out, spans, children, c, depth + 1);
        }
    }
    for r in roots {
        walk(&mut out, spans, &children, r, 0);
    }
    out
}

/// Per-name aggregate over a span slice: (name, count, total duration ns),
/// ordered by total duration descending.
pub fn aggregate_spans(spans: &[SpanRecord]) -> Vec<(String, u64, u64)> {
    let mut agg: Vec<(String, u64, u64)> = Vec::new();
    for s in spans {
        match agg.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += s.dur_ns;
            }
            None => agg.push((s.name.clone(), 1, s.dur_ns)),
        }
    }
    agg.sort_by(|a, b| b.2.cmp(&a.2));
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let _a = tel.span("a");
            let _b = tel.span("b");
        }
        assert!(tel.spans().is_empty());
        assert!(tel.snapshot().is_none());
        assert!(!tel.is_enabled());
    }

    #[test]
    fn span_nesting_follows_guard_scopes() {
        let tel = Telemetry::enabled();
        {
            let _root = tel.span("optimize");
            {
                let _child = tel.span("dispatch");
                let _grand = tel.span("planner.selinger");
            }
            let _sibling = tel.span("explain");
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "optimize");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "dispatch");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].name, "planner.selinger");
        assert_eq!(spans[2].parent, Some(1), "grandchild parents at the open child");
        assert_eq!(spans[3].name, "explain");
        assert_eq!(spans[3].parent, Some(0), "sibling re-parents at the root");
        for s in &spans {
            assert!(s.dur_ns > 0, "closed span {:?} has a stamped duration", s.name);
        }
        // Children start within the root and no earlier than it.
        assert!(spans[1].start_ns >= spans[0].start_ns);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let tel = Telemetry::enabled();
        {
            let _a = tel.span("a");
        }
        {
            let _b = tel.span("b");
        }
        let spans = tel.spans();
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn labeled_span_formats_index() {
        let tel = Telemetry::enabled();
        {
            let _l = tel.span_labeled("selinger.level", 3);
        }
        assert_eq!(tel.spans()[0].name, "selinger.level.3");
    }

    #[test]
    fn spans_from_worker_threads_are_roots() {
        let tel = Telemetry::enabled();
        let _outer = tel.span("outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _w = tel.span("worker");
            });
        });
        let spans = tel.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        // The worker thread's stack is empty, so its span is a root — it
        // never parents at a span of another thread.
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let tel = Telemetry::enabled();
        for _ in 0..MAX_SPANS + 10 {
            let _s = tel.span("x");
        }
        assert_eq!(tel.spans().len(), MAX_SPANS);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.get(Counter::SpansDropped), 10);
    }

    #[test]
    fn tree_render_indents_children() {
        let tel = Telemetry::enabled();
        {
            let _root = tel.span("optimize");
            let _child = tel.span("dispatch");
        }
        let text = tel.span_tree_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("optimize "));
        assert!(lines[1].starts_with("  dispatch "));
    }

    #[test]
    fn aggregate_sums_by_name() {
        let spans = vec![
            SpanRecord { name: "a".into(), parent: None, start_ns: 0, dur_ns: 5 },
            SpanRecord { name: "b".into(), parent: None, start_ns: 0, dur_ns: 100 },
            SpanRecord { name: "a".into(), parent: None, start_ns: 0, dur_ns: 7 },
        ];
        let agg = aggregate_spans(&spans);
        assert_eq!(agg[0], ("b".to_string(), 1, 100));
        assert_eq!(agg[1], ("a".to_string(), 2, 12));
    }

    #[test]
    fn clear_spans_keeps_metrics() {
        let tel = Telemetry::enabled();
        tel.inc(Counter::PlanCostCalls);
        {
            let _s = tel.span("q1");
        }
        tel.clear_spans();
        assert!(tel.spans().is_empty());
        assert_eq!(tel.snapshot().unwrap().get(Counter::PlanCostCalls), 1);
    }
}
