//! Randomly generated schemas, exactly as §VII Setup prescribes:
//!
//! > "For the randomly generated schema, we generate a random number of
//! > tables, each of which have a randomly picked row size between 100 and
//! > 200 bytes, and a randomly picked number of rows between 100K and 2M. We
//! > then randomly generate join edges to create the join graph (with
//! > similar join selectivities as in the TPC-H schema)."
//!
//! "Similar join selectivities as in TPC-H" means key–foreign-key style:
//! each edge gets selectivity 1 / |one endpoint|, so FK joins neither explode
//! nor annihilate cardinalities. Generation first draws a random spanning
//! tree (so every query over the schema can be connected) and then sprinkles
//! extra edges at a configurable density.

use crate::join_graph::JoinGraph;
use crate::schema::{Catalog, TableId, TableStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the random schema generator. Defaults mirror the paper.
#[derive(Debug, Clone)]
pub struct RandomSchemaConfig {
    /// Number of tables to generate (the paper scales this up to 100).
    pub tables: usize,
    /// Row-width range in bytes, inclusive. Paper: 100–200.
    pub row_width: (f64, f64),
    /// Row-count range, inclusive. Paper: 100 K – 2 M.
    pub rows: (f64, f64),
    /// Probability of adding each possible extra (non-spanning-tree) edge.
    /// 0.0 yields a tree; TPC-H's 8 tables / 8 edges corresponds to a graph
    /// slightly denser than a tree, so the default is small but nonzero.
    pub extra_edge_prob: f64,
    /// RNG seed; the whole schema is deterministic given the config.
    pub seed: u64,
}

impl Default for RandomSchemaConfig {
    fn default() -> Self {
        RandomSchemaConfig {
            tables: 10,
            row_width: (100.0, 200.0),
            rows: (100_000.0, 2_000_000.0),
            extra_edge_prob: 0.05,
            seed: 0x52_41_51_4F, // "RAQO"
        }
    }
}

/// A generated schema: catalog + join graph.
#[derive(Debug, Clone)]
pub struct RandomSchema {
    pub catalog: Catalog,
    pub graph: JoinGraph,
}

impl RandomSchemaConfig {
    pub fn with_tables(tables: usize, seed: u64) -> Self {
        RandomSchemaConfig { tables, seed, ..Default::default() }
    }

    /// Generate the schema.
    pub fn generate(&self) -> RandomSchema {
        assert!(self.tables >= 1, "need at least one table");
        assert!(self.row_width.0 > 0.0 && self.row_width.1 >= self.row_width.0);
        assert!(self.rows.0 > 0.0 && self.rows.1 >= self.rows.0);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut catalog = Catalog::new();
        for i in 0..self.tables {
            let width = rng.gen_range(self.row_width.0..=self.row_width.1);
            let rows = rng.gen_range(self.rows.0..=self.rows.1);
            catalog.add_stats_only(format!("r{i}"), TableStats::new(rows.round(), width.round()));
        }

        let mut graph = JoinGraph::new();
        // Random spanning tree: connect table i to a random earlier table.
        // This is a uniform random recursive tree — enough variety for the
        // scalability experiments while guaranteeing connectivity.
        for i in 1..self.tables {
            let j = rng.gen_range(0..i);
            let (a, b) = (TableId(i as u32), TableId(j as u32));
            graph.add_edge(a, b, fk_selectivity(&catalog, a, b));
        }
        // Extra edges at the configured density.
        if self.extra_edge_prob > 0.0 {
            for i in 0..self.tables {
                for j in (i + 1)..self.tables {
                    // Skip pairs already joined by the spanning tree.
                    let (a, b) = (TableId(i as u32), TableId(j as u32));
                    let tree_edge = graph
                        .edges()
                        .iter()
                        .any(|e| e.touches(a) && e.touches(b));
                    if !tree_edge && rng.gen_bool(self.extra_edge_prob) {
                        graph.add_edge(a, b, fk_selectivity(&catalog, a, b));
                    }
                }
            }
        }

        RandomSchema { catalog, graph }
    }
}

impl RandomSchema {
    /// A chain schema: `r0 — r1 — … — r(n−1)`, random paper-range stats,
    /// FK-style edge selectivities. Chains are the planner benchmarks'
    /// best case for sparse DP (O(n²) feasible subsets) and the classic
    /// shape for join-ordering scalability series.
    pub fn chain(tables: usize, seed: u64) -> RandomSchema {
        Self::shaped(tables, seed, |i| (i > 0).then(|| i - 1))
    }

    /// A star schema: `r0` as the hub joined to every satellite `r1 …
    /// r(n−1)`. Stars are the DP's adversarial case — every subset
    /// containing the hub is feasible — and the standard foil to chains in
    /// planner scalability series.
    pub fn star(tables: usize, seed: u64) -> RandomSchema {
        Self::shaped(tables, seed, |i| (i > 0).then_some(0))
    }

    /// A clique schema: every pair of tables is joined by an FK-style
    /// edge, random paper-range stats. Cliques make *every* subset
    /// connected and close a cycle inside every subset of ≥ 3 tables —
    /// the stress shape for cardinality estimation (each edge's
    /// selectivity must apply exactly once) and for memo search (the
    /// full bushy space is admissible).
    pub fn clique(tables: usize, seed: u64) -> RandomSchema {
        assert!(tables >= 1, "need at least one table");
        let cfg = RandomSchemaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();
        for i in 0..tables {
            let width = rng.gen_range(cfg.row_width.0..=cfg.row_width.1);
            let rows = rng.gen_range(cfg.rows.0..=cfg.rows.1);
            catalog.add_stats_only(format!("r{i}"), TableStats::new(rows.round(), width.round()));
        }
        let mut graph = JoinGraph::new();
        for i in 0..tables {
            for j in (i + 1)..tables {
                let (a, b) = (TableId(i as u32), TableId(j as u32));
                graph.add_edge(a, b, fk_selectivity(&catalog, a, b));
            }
        }
        RandomSchema { catalog, graph }
    }

    /// Build a schema whose join graph links each table `i` to
    /// `parent(i)` (None for roots); stats are drawn like
    /// [`RandomSchemaConfig::generate`].
    fn shaped(tables: usize, seed: u64, parent: impl Fn(usize) -> Option<usize>) -> RandomSchema {
        assert!(tables >= 1, "need at least one table");
        let cfg = RandomSchemaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();
        for i in 0..tables {
            let width = rng.gen_range(cfg.row_width.0..=cfg.row_width.1);
            let rows = rng.gen_range(cfg.rows.0..=cfg.rows.1);
            catalog.add_stats_only(format!("r{i}"), TableStats::new(rows.round(), width.round()));
        }
        let mut graph = JoinGraph::new();
        for i in 0..tables {
            if let Some(p) = parent(i) {
                let (a, b) = (TableId(i as u32), TableId(p as u32));
                graph.add_edge(a, b, fk_selectivity(&catalog, a, b));
            }
        }
        RandomSchema { catalog, graph }
    }
}

/// Key–foreign-key style selectivity: 1 / rows of the smaller-cardinality
/// endpoint (the "primary key" side), mirroring TPC-H's referential edges.
fn fk_selectivity(catalog: &Catalog, a: TableId, b: TableId) -> f64 {
    let ra = catalog.table(a).stats.rows;
    let rb = catalog.table(b).stats.rows;
    1.0 / ra.min(rb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_paper_ranges() {
        let schema = RandomSchemaConfig::with_tables(50, 7).generate();
        assert_eq!(schema.catalog.len(), 50);
        for t in schema.catalog.tables() {
            assert!(
                (100.0..=200.0).contains(&t.stats.row_width),
                "row width {} out of paper range",
                t.stats.row_width
            );
            assert!(
                (100_000.0..=2_000_000.0).contains(&t.stats.rows),
                "rows {} out of paper range",
                t.stats.rows
            );
        }
    }

    #[test]
    fn is_deterministic_given_seed() {
        let a = RandomSchemaConfig::with_tables(20, 42).generate();
        let b = RandomSchemaConfig::with_tables(20, 42).generate();
        for (x, y) in a.catalog.tables().iter().zip(b.catalog.tables()) {
            assert_eq!(x.stats, y.stats);
        }
        assert_eq!(a.graph.edges().len(), b.graph.edges().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomSchemaConfig::with_tables(20, 1).generate();
        let b = RandomSchemaConfig::with_tables(20, 2).generate();
        let same = a
            .catalog
            .tables()
            .iter()
            .zip(b.catalog.tables())
            .all(|(x, y)| x.stats == y.stats);
        assert!(!same, "independent seeds should give different stats");
    }

    #[test]
    fn whole_schema_is_connected() {
        for seed in 0..5 {
            let schema = RandomSchemaConfig::with_tables(30, seed).generate();
            let all: Vec<_> = schema.catalog.table_ids().collect();
            assert!(schema.graph.is_connected(&all), "seed {seed} disconnected");
        }
    }

    #[test]
    fn tree_when_no_extra_edges() {
        let cfg = RandomSchemaConfig {
            tables: 25,
            extra_edge_prob: 0.0,
            seed: 3,
            ..Default::default()
        };
        let schema = cfg.generate();
        assert_eq!(schema.graph.edges().len(), 24); // |V| - 1
    }

    #[test]
    fn selectivities_are_fk_like() {
        let schema = RandomSchemaConfig::with_tables(10, 11).generate();
        for e in schema.graph.edges() {
            let ra = schema.catalog.table(e.a).stats.rows;
            let rb = schema.catalog.table(e.b).stats.rows;
            let expect = 1.0 / ra.min(rb);
            assert!((e.selectivity - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn chain_schema_is_a_path() {
        let schema = RandomSchema::chain(24, 3);
        assert_eq!(schema.catalog.len(), 24);
        assert_eq!(schema.graph.edges().len(), 23);
        let all: Vec<_> = schema.catalog.table_ids().collect();
        assert!(schema.graph.is_connected(&all));
        // Every edge links consecutive indices.
        for e in schema.graph.edges() {
            let (lo, hi) = (e.a.0.min(e.b.0), e.a.0.max(e.b.0));
            assert_eq!(hi - lo, 1, "chain edge {lo}-{hi} not consecutive");
        }
    }

    #[test]
    fn star_schema_has_a_hub() {
        let schema = RandomSchema::star(24, 3);
        assert_eq!(schema.graph.edges().len(), 23);
        let all: Vec<_> = schema.catalog.table_ids().collect();
        assert!(schema.graph.is_connected(&all));
        for e in schema.graph.edges() {
            assert!(e.touches(TableId(0)), "star edge misses the hub");
        }
    }

    #[test]
    fn clique_schema_joins_every_pair() {
        let schema = RandomSchema::clique(8, 3);
        assert_eq!(schema.graph.edges().len(), 8 * 7 / 2);
        let all: Vec<_> = schema.catalog.table_ids().collect();
        assert!(schema.graph.is_connected(&all));
        for e in schema.graph.edges() {
            let ra = schema.catalog.table(e.a).stats.rows;
            let rb = schema.catalog.table(e.b).stats.rows;
            assert!((e.selectivity - 1.0 / ra.min(rb)).abs() < 1e-15);
        }
    }

    #[test]
    fn shaped_schemas_are_deterministic() {
        let a = RandomSchema::chain(16, 9);
        let b = RandomSchema::chain(16, 9);
        for (x, y) in a.catalog.tables().iter().zip(b.catalog.tables()) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn hundred_table_schema_for_scalability_experiment() {
        // Fig. 15(a) uses a 100-table random schema.
        let schema = RandomSchemaConfig::with_tables(100, 5).generate();
        assert_eq!(schema.catalog.len(), 100);
        let all: Vec<_> = schema.catalog.table_ids().collect();
        assert!(schema.graph.is_connected(&all));
    }
}
