//! # raqo-catalog
//!
//! Schema and statistics substrate for the RAQO reproduction.
//!
//! The paper evaluates joint resource-and-query optimization over two kinds
//! of schemas (§VII Setup):
//!
//! * the **TPC-H** schema, "with the same tables and the same join edges and
//!   join selectivities (we call this the join graph) as specified in the
//!   benchmark", and
//! * a **randomly generated schema** whose tables "have a randomly picked
//!   row size between 100 and 200 bytes, and a randomly picked number of
//!   rows between 100K and 2M", with randomly generated join edges "with
//!   similar join selectivities as in the TPC-H schema".
//!
//! This crate provides both, plus the query specifications used throughout
//! the evaluation (TPC-H Q12 / Q3 / Q2 / All and random k-way joins) and the
//! cardinality arithmetic the planners build on.

pub mod join_graph;
pub mod query;
pub mod random;
pub mod schema;
pub mod tpch;

pub use join_graph::{JoinEdge, JoinGraph};
pub use query::QuerySpec;
pub use random::{RandomSchema, RandomSchemaConfig};
pub use schema::{Catalog, ColumnType, Table, TableId, TableStats};

/// Bytes in one gibibyte; the unit most resource knobs in the paper use.
pub const GB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Bytes in one mebibyte (the default Hive/Spark broadcast threshold is
/// expressed in MB).
pub const MB: f64 = 1024.0 * 1024.0;
