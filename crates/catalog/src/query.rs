//! Query specifications.
//!
//! The paper's planner evaluation (§VII) drives the optimizers with join
//! queries described purely by *which relations must be joined*: "The queries
//! consist of a set of relations that need to be joined. For TPC-H, we
//! consider Q12 (single join), Q3 (two joins), Q2 (three joins), and All
//! (joining all tables). For randomly generated schema, we generate queries
//! having increasing number of joins, up to as many as the number of tables."

use crate::join_graph::JoinGraph;
use crate::schema::{Catalog, TableId};
use crate::tpch::{table, TpchSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A join query: a named, connected set of relations to join.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    pub name: String,
    /// Relations to join, in catalog order. Always deduplicated and sorted.
    pub relations: Vec<TableId>,
}

impl QuerySpec {
    /// Build a query over a set of relations. Relations are sorted and
    /// deduplicated; a query must reference at least one relation.
    pub fn new(name: impl Into<String>, mut relations: Vec<TableId>) -> Self {
        assert!(!relations.is_empty(), "a query must reference at least one relation");
        relations.sort_unstable();
        relations.dedup();
        QuerySpec { name: name.into(), relations }
    }

    /// Number of joins in the query (relations − 1).
    pub fn num_joins(&self) -> usize {
        self.relations.len() - 1
    }

    /// Check the query is answerable without cross products over the graph.
    pub fn is_connected(&self, graph: &JoinGraph) -> bool {
        graph.is_connected(&self.relations)
    }

    // ---- The paper's four TPC-H queries --------------------------------

    /// TPC-H Q12 reduced to its join: `orders ⋈ lineitem` — "a single-join
    /// query ... based on TPC-H query 12, from which we removed the
    /// aggregates and additional filters" (§III-A).
    pub fn tpch_q12() -> Self {
        QuerySpec::new("Q12", vec![table::ORDERS, table::LINEITEM])
    }

    /// TPC-H Q3 reduced to its joins: `customer ⋈ orders ⋈ lineitem`
    /// (two joins, §III-B).
    pub fn tpch_q3() -> Self {
        QuerySpec::new("Q3", vec![table::CUSTOMER, table::ORDERS, table::LINEITEM])
    }

    /// TPC-H Q2 as the paper counts it: three joins
    /// (`part ⋈ partsupp ⋈ supplier ⋈ nation`). The full benchmark Q2 also
    /// touches `region`; the paper calls Q2 a three-join query, so we take
    /// the four-relation core.
    pub fn tpch_q2() -> Self {
        QuerySpec::new(
            "Q2",
            vec![table::PART, table::PARTSUPP, table::SUPPLIER, table::NATION],
        )
    }

    /// "All": join all eight TPC-H tables (§VII-A).
    pub fn tpch_all(schema: &TpchSchema) -> Self {
        QuerySpec::new("All", schema.catalog.table_ids().collect())
    }

    /// The four TPC-H evaluation queries, in the paper's order.
    pub fn tpch_suite(schema: &TpchSchema) -> Vec<QuerySpec> {
        vec![
            QuerySpec::tpch_q12(),
            QuerySpec::tpch_q3(),
            QuerySpec::tpch_q2(),
            QuerySpec::tpch_all(schema),
        ]
    }

    /// The join cores of all 22 TPC-H queries: which base relations each
    /// query joins, with aggregates/filters stripped (the planners in this
    /// workspace optimize join order and operator placement, so the join
    /// core is the planning-relevant part). Single-relation queries (Q1,
    /// Q6) appear as one-relation specs. Where a query references a table
    /// twice (Q7/Q8 join `nation` for both endpoints, Q21 uses `lineitem`
    /// thrice) the core keeps a single instance — self-joins are outside
    /// this catalog's model.
    pub fn tpch_full_suite() -> Vec<QuerySpec> {
        use table::*;
        let q = |name: &str, rels: &[crate::schema::TableId]| QuerySpec::new(name, rels.to_vec());
        vec![
            q("Q1", &[LINEITEM]),
            q("Q2full", &[PART, SUPPLIER, PARTSUPP, NATION, REGION]),
            q("Q3", &[CUSTOMER, ORDERS, LINEITEM]),
            q("Q4", &[ORDERS, LINEITEM]),
            q("Q5", &[CUSTOMER, ORDERS, LINEITEM, SUPPLIER, NATION, REGION]),
            q("Q6", &[LINEITEM]),
            q("Q7", &[SUPPLIER, LINEITEM, ORDERS, CUSTOMER, NATION]),
            q("Q8", &[PART, SUPPLIER, LINEITEM, ORDERS, CUSTOMER, NATION, REGION]),
            q("Q9", &[PART, SUPPLIER, LINEITEM, PARTSUPP, ORDERS, NATION]),
            q("Q10", &[CUSTOMER, ORDERS, LINEITEM, NATION]),
            q("Q11", &[PARTSUPP, SUPPLIER, NATION]),
            q("Q12", &[ORDERS, LINEITEM]),
            q("Q13", &[CUSTOMER, ORDERS]),
            q("Q14", &[LINEITEM, PART]),
            q("Q15", &[SUPPLIER, LINEITEM]),
            q("Q16", &[PARTSUPP, PART, SUPPLIER]),
            q("Q17", &[LINEITEM, PART]),
            q("Q18", &[CUSTOMER, ORDERS, LINEITEM]),
            q("Q19", &[LINEITEM, PART]),
            q("Q20", &[SUPPLIER, NATION, PARTSUPP, PART]),
            q("Q21", &[SUPPLIER, LINEITEM, ORDERS, NATION]),
            q("Q22", &[CUSTOMER, ORDERS]),
        ]
    }

    /// Generate a random connected query over `k` relations of the given
    /// graph by a random graph walk (Fig. 15(a) generates queries "having
    /// increasing number of joins, up to as many as the number of tables").
    pub fn random_connected(
        catalog: &Catalog,
        graph: &JoinGraph,
        k: usize,
        seed: u64,
    ) -> QuerySpec {
        assert!(k >= 1 && k <= catalog.len(), "k must be in [1, #tables]");
        let mut rng = StdRng::seed_from_u64(seed);
        let start = TableId(rng.gen_range(0..catalog.len() as u32));
        let mut chosen = vec![start];
        // Grow the set along frontier edges until it has k relations. The
        // schema generators guarantee a connected graph, so the frontier is
        // only empty when chosen already spans the component.
        while chosen.len() < k {
            let frontier: Vec<TableId> = graph
                .edges()
                .iter()
                .filter_map(|e| {
                    let a_in = chosen.contains(&e.a);
                    let b_in = chosen.contains(&e.b);
                    match (a_in, b_in) {
                        (true, false) => Some(e.b),
                        (false, true) => Some(e.a),
                        _ => None,
                    }
                })
                .collect();
            assert!(
                !frontier.is_empty(),
                "graph component exhausted before reaching k={k} relations"
            );
            let next = frontier[rng.gen_range(0..frontier.len())];
            if !chosen.contains(&next) {
                chosen.push(next);
            }
        }
        QuerySpec::new(format!("rand{k}"), chosen)
    }
}

impl std::fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({} joins)", self.name, self.num_joins())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSchemaConfig;

    #[test]
    fn tpch_queries_have_paper_join_counts() {
        let schema = TpchSchema::new(1.0);
        assert_eq!(QuerySpec::tpch_q12().num_joins(), 1);
        assert_eq!(QuerySpec::tpch_q3().num_joins(), 2);
        assert_eq!(QuerySpec::tpch_q2().num_joins(), 3);
        assert_eq!(QuerySpec::tpch_all(&schema).num_joins(), 7);
    }

    #[test]
    fn tpch_queries_are_connected() {
        let schema = TpchSchema::new(1.0);
        for q in QuerySpec::tpch_suite(&schema) {
            assert!(q.is_connected(&schema.graph), "{} disconnected", q.name);
        }
    }

    #[test]
    fn full_suite_covers_all_22_queries_and_is_connected() {
        let schema = TpchSchema::new(1.0);
        let suite = QuerySpec::tpch_full_suite();
        assert_eq!(suite.len(), 22);
        for q in &suite {
            assert!(
                q.is_connected(&schema.graph),
                "{} is not connected over the TPC-H join graph",
                q.name
            );
        }
        // Spot-check join counts.
        let joins = |name: &str| suite.iter().find(|q| q.name == name).unwrap().num_joins();
        assert_eq!(joins("Q1"), 0);
        assert_eq!(joins("Q5"), 5);
        assert_eq!(joins("Q8"), 6);
        assert_eq!(joins("Q14"), 1);
    }

    #[test]
    fn relations_sorted_and_deduped() {
        let q = QuerySpec::new("q", vec![TableId(3), TableId(1), TableId(3)]);
        assert_eq!(q.relations, vec![TableId(1), TableId(3)]);
    }

    #[test]
    #[should_panic(expected = "at least one relation")]
    fn empty_query_rejected() {
        QuerySpec::new("q", vec![]);
    }

    #[test]
    fn random_queries_are_connected_for_every_size() {
        let schema = RandomSchemaConfig::with_tables(30, 9).generate();
        for k in 1..=30 {
            let q = QuerySpec::random_connected(&schema.catalog, &schema.graph, k, k as u64);
            assert_eq!(q.relations.len(), k);
            assert!(q.is_connected(&schema.graph), "k={k} disconnected");
        }
    }

    #[test]
    fn random_query_deterministic_by_seed() {
        let schema = RandomSchemaConfig::with_tables(15, 9).generate();
        let a = QuerySpec::random_connected(&schema.catalog, &schema.graph, 7, 5);
        let b = QuerySpec::random_connected(&schema.catalog, &schema.graph, 7, 5);
        assert_eq!(a.relations, b.relations);
    }

    #[test]
    fn display_mentions_join_count() {
        let q = QuerySpec::tpch_q3();
        assert_eq!(format!("{q}"), "Q3(2 joins)");
    }
}
