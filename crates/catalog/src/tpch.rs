//! The TPC-H schema, statistics, and join graph.
//!
//! §VII Setup: *"For TPC-H, we used the same tables and the same join edges
//! and join selectivities (we call this the join graph) as specified in the
//! benchmark."* The micro-benchmarks of §III run on TPC-H at scale factor
//! 100 (`lineitem` ≈ 77 GB, matching the paper's "large size table = 77G").
//!
//! Row counts scale linearly with the scale factor except for the fixed
//! `nation` (25) and `region` (5) tables, per the TPC-H specification. Row
//! widths are the usual uncompressed average widths; at SF 100 they put
//! `lineitem` at ≈ 77 GB and `orders` at ≈ 17 GB, consistent with the sizes
//! the paper reports after sampling.

use crate::join_graph::JoinGraph;
use crate::schema::{Catalog, Column, ColumnType, TableStats};

/// Average row widths in bytes (uncompressed, text-like widths).
mod width {
    pub const REGION: f64 = 124.0;
    pub const NATION: f64 = 128.0;
    pub const SUPPLIER: f64 = 159.0;
    pub const CUSTOMER: f64 = 179.0;
    pub const PART: f64 = 155.0;
    pub const PARTSUPP: f64 = 144.0;
    pub const ORDERS: f64 = 121.0;
    pub const LINEITEM: f64 = 129.0;
}

/// A fully populated TPC-H catalog + join graph at a given scale factor.
///
/// ```
/// use raqo_catalog::tpch::{table, TpchSchema};
///
/// let schema = TpchSchema::sf100();
/// let lineitem = schema.catalog.table(table::LINEITEM);
/// assert_eq!(lineitem.name, "lineitem");
/// assert_eq!(lineitem.stats.rows, 600_000_000.0);
/// assert!(schema.graph.is_connected(&schema.catalog.table_ids().collect::<Vec<_>>()));
/// ```
#[derive(Debug, Clone)]
pub struct TpchSchema {
    pub catalog: Catalog,
    pub graph: JoinGraph,
    pub scale_factor: f64,
}

/// Dense indices of the eight TPC-H tables inside [`TpchSchema::catalog`]
/// (insertion order below). Kept public so experiments can address tables
/// without string lookups.
pub mod table {
    use crate::schema::TableId;
    pub const REGION: TableId = TableId(0);
    pub const NATION: TableId = TableId(1);
    pub const SUPPLIER: TableId = TableId(2);
    pub const CUSTOMER: TableId = TableId(3);
    pub const PART: TableId = TableId(4);
    pub const PARTSUPP: TableId = TableId(5);
    pub const ORDERS: TableId = TableId(6);
    pub const LINEITEM: TableId = TableId(7);
}

impl TpchSchema {
    /// Build the schema at the given scale factor (SF 100 in the paper's
    /// cluster experiments; any positive value is accepted).
    pub fn new(scale_factor: f64) -> Self {
        assert!(scale_factor > 0.0, "scale factor must be positive");
        let sf = scale_factor;
        let mut cat = Catalog::new();

        use ColumnType::*;
        let region = cat.add_table(
            "region",
            vec![
                Column::new("r_regionkey", Int64),
                Column::new("r_name", Varchar(25)),
                Column::new("r_comment", Varchar(152)),
            ],
            TableStats::new(5.0, width::REGION),
        );
        let nation = cat.add_table(
            "nation",
            vec![
                Column::new("n_nationkey", Int64),
                Column::new("n_name", Varchar(25)),
                Column::new("n_regionkey", Int64),
                Column::new("n_comment", Varchar(152)),
            ],
            TableStats::new(25.0, width::NATION),
        );
        let supplier = cat.add_table(
            "supplier",
            vec![
                Column::new("s_suppkey", Int64),
                Column::new("s_name", Varchar(25)),
                Column::new("s_address", Varchar(40)),
                Column::new("s_nationkey", Int64),
                Column::new("s_phone", Varchar(15)),
                Column::new("s_acctbal", Float64),
                Column::new("s_comment", Varchar(101)),
            ],
            TableStats::new(10_000.0 * sf, width::SUPPLIER),
        );
        let customer = cat.add_table(
            "customer",
            vec![
                Column::new("c_custkey", Int64),
                Column::new("c_name", Varchar(25)),
                Column::new("c_address", Varchar(40)),
                Column::new("c_nationkey", Int64),
                Column::new("c_phone", Varchar(15)),
                Column::new("c_acctbal", Float64),
                Column::new("c_mktsegment", Varchar(10)),
                Column::new("c_comment", Varchar(117)),
            ],
            TableStats::new(150_000.0 * sf, width::CUSTOMER),
        );
        let part = cat.add_table(
            "part",
            vec![
                Column::new("p_partkey", Int64),
                Column::new("p_name", Varchar(55)),
                Column::new("p_mfgr", Varchar(25)),
                Column::new("p_brand", Varchar(10)),
                Column::new("p_type", Varchar(25)),
                Column::new("p_size", Int64),
                Column::new("p_container", Varchar(10)),
                Column::new("p_retailprice", Float64),
                Column::new("p_comment", Varchar(23)),
            ],
            TableStats::new(200_000.0 * sf, width::PART),
        );
        let partsupp = cat.add_table(
            "partsupp",
            vec![
                Column::new("ps_partkey", Int64),
                Column::new("ps_suppkey", Int64),
                Column::new("ps_availqty", Int64),
                Column::new("ps_supplycost", Float64),
                Column::new("ps_comment", Varchar(199)),
            ],
            TableStats::new(800_000.0 * sf, width::PARTSUPP),
        );
        let orders = cat.add_table(
            "orders",
            vec![
                Column::new("o_orderkey", Int64),
                Column::new("o_custkey", Int64),
                Column::new("o_orderstatus", Varchar(1)),
                Column::new("o_totalprice", Float64),
                Column::new("o_orderdate", Date),
                Column::new("o_orderpriority", Varchar(15)),
                Column::new("o_clerk", Varchar(15)),
                Column::new("o_shippriority", Int64),
                Column::new("o_comment", Varchar(79)),
            ],
            TableStats::new(1_500_000.0 * sf, width::ORDERS),
        );
        let lineitem = cat.add_table(
            "lineitem",
            vec![
                Column::new("l_orderkey", Int64),
                Column::new("l_partkey", Int64),
                Column::new("l_suppkey", Int64),
                Column::new("l_linenumber", Int64),
                Column::new("l_quantity", Float64),
                Column::new("l_extendedprice", Float64),
                Column::new("l_discount", Float64),
                Column::new("l_tax", Float64),
                Column::new("l_returnflag", Varchar(1)),
                Column::new("l_linestatus", Varchar(1)),
                Column::new("l_shipdate", Date),
                Column::new("l_commitdate", Date),
                Column::new("l_receiptdate", Date),
                Column::new("l_shipinstruct", Varchar(25)),
                Column::new("l_shipmode", Varchar(10)),
                Column::new("l_comment", Varchar(44)),
            ],
            TableStats::new(6_000_000.0 * sf, width::LINEITEM),
        );

        // Key–foreign-key join edges, selectivity = 1 / |primary-key side|,
        // as the System-R estimation formula prescribes for the benchmark's
        // referential joins.
        let mut graph = JoinGraph::new();
        let rows = |t| -> f64 { cat.table(t).stats.rows };
        graph.add_edge(nation, region, 1.0 / rows(region));
        graph.add_edge(supplier, nation, 1.0 / rows(nation));
        graph.add_edge(customer, nation, 1.0 / rows(nation));
        graph.add_edge(partsupp, part, 1.0 / rows(part));
        graph.add_edge(partsupp, supplier, 1.0 / rows(supplier));
        graph.add_edge(orders, customer, 1.0 / rows(customer));
        graph.add_edge(lineitem, orders, 1.0 / rows(orders));
        graph.add_edge(lineitem, partsupp, 1.0 / rows(partsupp));
        graph.add_edge(lineitem, part, 1.0 / rows(part));
        graph.add_edge(lineitem, supplier, 1.0 / rows(supplier));

        TpchSchema { catalog: cat, graph, scale_factor: sf }
    }

    /// The paper's §III micro-benchmark setup: SF 100 — `lineitem` ≈ 77 GB.
    pub fn sf100() -> Self {
        TpchSchema::new(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GB;

    #[test]
    fn has_eight_tables_with_spec_cardinalities() {
        let s = TpchSchema::new(1.0);
        assert_eq!(s.catalog.len(), 8);
        let rows = |n: &str| s.catalog.table_by_name(n).unwrap().stats.rows;
        assert_eq!(rows("region"), 5.0);
        assert_eq!(rows("nation"), 25.0);
        assert_eq!(rows("supplier"), 10_000.0);
        assert_eq!(rows("customer"), 150_000.0);
        assert_eq!(rows("part"), 200_000.0);
        assert_eq!(rows("partsupp"), 800_000.0);
        assert_eq!(rows("orders"), 1_500_000.0);
        assert_eq!(rows("lineitem"), 6_000_000.0);
    }

    #[test]
    fn fixed_tables_do_not_scale() {
        let s = TpchSchema::new(100.0);
        assert_eq!(s.catalog.table(table::REGION).stats.rows, 5.0);
        assert_eq!(s.catalog.table(table::NATION).stats.rows, 25.0);
        assert_eq!(s.catalog.table(table::LINEITEM).stats.rows, 600_000_000.0);
    }

    #[test]
    fn sf100_lineitem_is_about_77_gb() {
        let s = TpchSchema::sf100();
        let bytes = s.catalog.table(table::LINEITEM).stats.bytes();
        let gbs = bytes / GB;
        // The paper's "large size table = 77G".
        assert!((70.0..85.0).contains(&gbs), "lineitem is {gbs:.1} GB");
    }

    #[test]
    fn table_constants_match_names() {
        let s = TpchSchema::new(1.0);
        assert_eq!(s.catalog.table(table::ORDERS).name, "orders");
        assert_eq!(s.catalog.table(table::LINEITEM).name, "lineitem");
        assert_eq!(s.catalog.table(table::CUSTOMER).name, "customer");
        assert_eq!(s.catalog.table(table::PARTSUPP).name, "partsupp");
    }

    #[test]
    fn join_graph_is_connected_over_all_tables() {
        let s = TpchSchema::new(1.0);
        let all: Vec<_> = s.catalog.table_ids().collect();
        assert!(s.graph.is_connected(&all));
        assert_eq!(s.graph.edges().len(), 10);
    }

    #[test]
    fn fk_selectivity_is_one_over_pk_side() {
        let s = TpchSchema::new(2.0);
        let e = s
            .graph
            .edges()
            .iter()
            .find(|e| e.touches(table::LINEITEM) && e.touches(table::ORDERS))
            .unwrap();
        assert!((e.selectivity - 1.0 / 3_000_000.0).abs() < 1e-15);
    }

    #[test]
    fn lineitem_orders_join_keeps_lineitem_cardinality() {
        // FK join should produce |lineitem| rows.
        let s = TpchSchema::new(1.0);
        let card = s
            .graph
            .join_cardinality(&s.catalog, &[table::LINEITEM, table::ORDERS]);
        assert!((card - 6_000_000.0).abs() / 6_000_000.0 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_factor_rejected() {
        TpchSchema::new(0.0);
    }
}
