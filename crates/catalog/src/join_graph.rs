//! The join graph: which tables join with which, and how selective the
//! join predicates are.
//!
//! The paper (§VII Setup) fixes "the same join edges and join selectivities
//! (we call this the join graph) as specified in the benchmark" for TPC-H and
//! generates random join graphs "with similar join selectivities" for the
//! synthetic schema. Planners use the graph for two things:
//!
//! 1. **cardinality estimation** — the classic System-R formula: the join of
//!    two sub-results is the product of their cardinalities times the product
//!    of the selectivities of every join edge that connects them, and
//! 2. **connectivity** — the randomized planner only mutates into plans whose
//!    joins follow edges (avoiding pure cross products where possible), and
//!    query generation picks connected sub-graphs.

use crate::schema::{Catalog, TableId};
use serde::{Deserialize, Serialize};

/// An undirected join edge between two base tables with a predicate
/// selectivity, i.e. |A ⋈ B| = sel · |A| · |B|.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinEdge {
    pub a: TableId,
    pub b: TableId,
    /// Selectivity of the join predicate; for a key–foreign-key join this is
    /// 1 / |primary side|.
    pub selectivity: f64,
}

impl JoinEdge {
    pub fn new(a: TableId, b: TableId, selectivity: f64) -> Self {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "join selectivity must be in (0,1], got {selectivity}"
        );
        JoinEdge { a, b, selectivity }
    }

    /// Does this edge touch `t`?
    #[inline]
    pub fn touches(&self, t: TableId) -> bool {
        self.a == t || self.b == t
    }

    /// The endpoint that is not `t` (panics if the edge does not touch `t`).
    pub fn other(&self, t: TableId) -> TableId {
        if self.a == t {
            self.b
        } else if self.b == t {
            self.a
        } else {
            panic!("edge {:?} does not touch {t}", self)
        }
    }
}

/// The join graph over a catalog's tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JoinGraph {
    edges: Vec<JoinEdge>,
}

impl JoinGraph {
    pub fn new() -> Self {
        JoinGraph { edges: Vec::new() }
    }

    /// Add an edge. Parallel edges are allowed (multiple predicates between
    /// the same pair multiply their selectivities, as in System R).
    pub fn add_edge(&mut self, a: TableId, b: TableId, selectivity: f64) {
        assert_ne!(a, b, "self joins are modelled as separate table instances");
        self.edges.push(JoinEdge::new(a, b, selectivity));
    }

    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// Edges incident to `t`.
    pub fn edges_of(&self, t: TableId) -> impl Iterator<Item = &JoinEdge> + '_ {
        self.edges.iter().filter(move |e| e.touches(t))
    }

    /// Combined selectivity of all edges with one endpoint in `left` and the
    /// other in `right`. Returns 1.0 when no edge crosses (a cross product).
    pub fn cross_selectivity(&self, left: &[TableId], right: &[TableId]) -> f64 {
        let mut sel = 1.0;
        for e in &self.edges {
            let la = left.contains(&e.a);
            let lb = left.contains(&e.b);
            let ra = right.contains(&e.a);
            let rb = right.contains(&e.b);
            if (la && rb) || (lb && ra) {
                sel *= e.selectivity;
            }
        }
        sel
    }

    /// True when at least one edge connects `left` and `right` — i.e. the
    /// join is not a pure cross product.
    pub fn connects(&self, left: &[TableId], right: &[TableId]) -> bool {
        self.edges.iter().any(|e| {
            (left.contains(&e.a) && right.contains(&e.b))
                || (left.contains(&e.b) && right.contains(&e.a))
        })
    }

    /// True when the induced sub-graph on `tables` is connected (every query
    /// in the paper joins a connected set of relations).
    pub fn is_connected(&self, tables: &[TableId]) -> bool {
        if tables.is_empty() {
            return true;
        }
        let mut seen = vec![false; tables.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            let t = tables[i];
            for e in self.edges_of(t) {
                let o = e.other(t);
                if let Some(j) = tables.iter().position(|&x| x == o) {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Estimated cardinality (rows) of joining exactly the given set of
    /// tables: ∏|Tᵢ| · ∏ edge selectivities among them (System-R formula).
    ///
    /// Accumulated in log space: a 100-table join multiplies a hundred
    /// ~10⁶ row counts by a hundred ~10⁻⁶ selectivities, and doing the row
    /// counts first overflows `f64` long before the selectivities pull the
    /// product back down (Fig. 15 plans exactly such queries).
    pub fn join_cardinality(&self, catalog: &Catalog, tables: &[TableId]) -> f64 {
        let mut log_card = 0.0f64;
        for &t in tables {
            log_card += catalog.table(t).stats.rows.max(f64::MIN_POSITIVE).ln();
        }
        for e in &self.edges {
            if tables.contains(&e.a) && tables.contains(&e.b) {
                log_card += e.selectivity.ln();
            }
        }
        log_card.exp()
    }

    /// Estimated output row width of joining the given tables: sum of the
    /// input row widths (projections are ignored, as in the paper's
    /// `select *` micro-benchmarks).
    pub fn join_row_width(&self, catalog: &Catalog, tables: &[TableId]) -> f64 {
        tables.iter().map(|&t| catalog.table(t).stats.row_width).sum()
    }

    /// Estimated byte size of the join result of `tables`.
    pub fn join_bytes(&self, catalog: &Catalog, tables: &[TableId]) -> f64 {
        self.join_cardinality(catalog, tables) * self.join_row_width(catalog, tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableStats;

    /// a(1000 rows, 100B) — b(100 rows, 50B) — c(10 rows, 20B), chain.
    fn chain() -> (Catalog, JoinGraph) {
        let mut cat = Catalog::new();
        let a = cat.add_stats_only("a", TableStats::new(1000.0, 100.0));
        let b = cat.add_stats_only("b", TableStats::new(100.0, 50.0));
        let c = cat.add_stats_only("c", TableStats::new(10.0, 20.0));
        let mut g = JoinGraph::new();
        g.add_edge(a, b, 1.0 / 100.0); // FK a→b
        g.add_edge(b, c, 1.0 / 10.0); // FK b→c
        (cat, g)
    }

    #[test]
    fn edge_other_endpoint() {
        let e = JoinEdge::new(TableId(3), TableId(7), 0.5);
        assert_eq!(e.other(TableId(3)), TableId(7));
        assert_eq!(e.other(TableId(7)), TableId(3));
        assert!(e.touches(TableId(3)));
        assert!(!e.touches(TableId(4)));
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_when_detached() {
        let e = JoinEdge::new(TableId(3), TableId(7), 0.5);
        e.other(TableId(1));
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn zero_selectivity_rejected() {
        JoinEdge::new(TableId(0), TableId(1), 0.0);
    }

    #[test]
    fn pairwise_cardinality_matches_system_r() {
        let (cat, g) = chain();
        // |a ⋈ b| = 1000 * 100 * (1/100) = 1000
        let card = g.join_cardinality(&cat, &[TableId(0), TableId(1)]);
        assert!((card - 1000.0).abs() / 1000.0 < 1e-12, "card {card}");
    }

    #[test]
    fn three_way_cardinality_uses_both_edges() {
        let (cat, g) = chain();
        // 1000 * 100 * 10 * (1/100) * (1/10) = 1000
        let card = g.join_cardinality(&cat, &[TableId(0), TableId(1), TableId(2)]);
        assert!((card - 1000.0).abs() / 1000.0 < 1e-12, "card {card}");
    }

    #[test]
    fn cross_product_when_no_edge() {
        let (cat, g) = chain();
        // a and c are not directly connected: cardinality is the cross
        // product, and `connects` is false.
        let card = g.join_cardinality(&cat, &[TableId(0), TableId(2)]);
        assert!((card - 10_000.0).abs() / 10_000.0 < 1e-12, "card {card}");
        assert!(!g.connects(&[TableId(0)], &[TableId(2)]));
        assert_eq!(g.cross_selectivity(&[TableId(0)], &[TableId(2)]), 1.0);
    }

    #[test]
    fn connectivity_of_sets() {
        let (_, g) = chain();
        assert!(g.connects(&[TableId(0)], &[TableId(1)]));
        assert!(g.connects(&[TableId(0), TableId(1)], &[TableId(2)]));
        assert!(g.is_connected(&[TableId(0), TableId(1), TableId(2)]));
        // {a, c} without b is disconnected.
        assert!(!g.is_connected(&[TableId(0), TableId(2)]));
        assert!(g.is_connected(&[]));
        assert!(g.is_connected(&[TableId(1)]));
    }

    #[test]
    fn cross_selectivity_multiplies_crossing_edges_only() {
        let (_, g) = chain();
        let s = g.cross_selectivity(&[TableId(0), TableId(2)], &[TableId(1)]);
        // both edges cross the cut: (1/100) * (1/10)
        assert!((s - 0.001).abs() < 1e-12);
    }

    #[test]
    fn row_width_and_bytes_compose() {
        let (cat, g) = chain();
        let ts = [TableId(0), TableId(1)];
        assert_eq!(g.join_row_width(&cat, &ts), 150.0);
        let bytes = g.join_bytes(&cat, &ts);
        assert!((bytes - 150_000.0).abs() / 150_000.0 < 1e-12, "bytes {bytes}");
    }

    #[test]
    fn hundred_table_cardinality_stays_finite() {
        // The Fig. 15 regression: ∏ rows overflows f64 unless accumulated
        // in log space together with the selectivities.
        let mut cat = Catalog::new();
        let mut g = JoinGraph::new();
        let mut prev = cat.add_stats_only("r0", TableStats::new(1_000_000.0, 100.0));
        let mut all = vec![prev];
        for i in 1..100 {
            let t = cat.add_stats_only(format!("r{i}"), TableStats::new(1_000_000.0, 100.0));
            g.add_edge(prev, t, 1e-6);
            all.push(t);
            prev = t;
        }
        let card = g.join_cardinality(&cat, &all);
        assert!(card.is_finite(), "overflowed");
        // Chain of FK joins at 1/|t| selectivity keeps ~1e6 rows.
        assert!((card - 1_000_000.0).abs() / 1_000_000.0 < 1e-6, "card {card}");
    }

    #[test]
    fn parallel_edges_multiply() {
        let mut cat = Catalog::new();
        let a = cat.add_stats_only("a", TableStats::new(100.0, 8.0));
        let b = cat.add_stats_only("b", TableStats::new(100.0, 8.0));
        let mut g = JoinGraph::new();
        g.add_edge(a, b, 0.1);
        g.add_edge(a, b, 0.5);
        let card = g.join_cardinality(&cat, &[a, b]);
        assert!((card - 100.0 * 100.0 * 0.05).abs() / 500.0 < 1e-12, "card {card}");
    }
}
