//! Tables, columns, and statistics.
//!
//! The planners in this workspace are *statistics driven*: all they ever need
//! from a table is its cardinality and byte size (the paper's cost models are
//! functions of input sizes and resources, §VI-A). We still model columns and
//! types so that the examples read like a real catalog and so that join keys
//! can be validated.

use serde::{Deserialize, Serialize};

/// Identifier of a table inside one [`Catalog`]. Dense, usable as an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl TableId {
    /// The id as a `usize` index into catalog-ordered vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Column types. Widths follow common ORC/Parquet in-memory footprints and
/// are only used to derive default row widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer key or measure.
    Int64,
    /// 64-bit floating point measure.
    Float64,
    /// Calendar date (stored as days).
    Date,
    /// Variable-length string with an average byte width.
    Varchar(u16),
}

impl ColumnType {
    /// Average width in bytes of a value of this type.
    pub fn avg_width(&self) -> u32 {
        match self {
            ColumnType::Int64 | ColumnType::Float64 => 8,
            ColumnType::Date => 4,
            ColumnType::Varchar(w) => *w as u32,
        }
    }
}

/// A column: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// Per-table statistics used by cardinality estimation and cost models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of rows.
    pub rows: f64,
    /// Average row width in bytes.
    pub row_width: f64,
}

impl TableStats {
    pub fn new(rows: f64, row_width: f64) -> Self {
        debug_assert!(rows >= 0.0 && row_width >= 0.0);
        TableStats { rows, row_width }
    }

    /// Total byte size of the table.
    #[inline]
    pub fn bytes(&self) -> f64 {
        self.rows * self.row_width
    }
}

/// A base table: name, columns, statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<Column>,
    pub stats: TableStats,
}

impl Table {
    /// Look up a column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Sum of average column widths; useful to sanity-check `stats.row_width`.
    pub fn declared_row_width(&self) -> u32 {
        self.columns.iter().map(|c| c.ty.avg_width()).sum()
    }
}

/// A catalog: the set of base tables of one schema.
///
/// Tables are stored densely; `TableId(i)` is always the table at index `i`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog { tables: Vec::new() }
    }

    /// Add a table described by columns and stats; returns its id.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<Column>,
        stats: TableStats,
    ) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table { id, name: name.into(), columns, stats });
        id
    }

    /// Add a table known only by name and stats (random schemas).
    pub fn add_stats_only(&mut self, name: impl Into<String>, stats: TableStats) -> TableId {
        self.add_table(name, Vec::new(), stats)
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Find a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// All table ids, in insertion order.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> + '_ {
        (0..self.tables.len() as u32).map(TableId)
    }

    /// Override the statistics of a table (e.g. to model the paper's
    /// "uniform sampling filter on `o_orderkey`" that shrinks `orders` to a
    /// chosen size, §III-A footnote 5).
    pub fn set_stats(&mut self, id: TableId, stats: TableStats) {
        self.tables[id.index()].stats = stats;
    }

    /// Scale the row count of a table by `fraction`, keeping row width.
    /// This is exactly the paper's sampling-filter trick for sweeping the
    /// smaller relation's size.
    pub fn sample_table(&mut self, id: TableId, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sampling fraction must be in [0,1], got {fraction}"
        );
        let t = &mut self.tables[id.index()];
        t.stats.rows *= fraction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnType::Int64),
                Column::new("o_comment", ColumnType::Varchar(48)),
            ],
            TableStats::new(1_500_000.0, 120.0),
        );
        c.add_stats_only("lineitem", TableStats::new(6_000_000.0, 130.0));
        c
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let c = two_table_catalog();
        let ids: Vec<_> = c.table_ids().collect();
        assert_eq!(ids, vec![TableId(0), TableId(1)]);
        assert_eq!(c.table(TableId(0)).name, "orders");
        assert_eq!(c.table(TableId(1)).name, "lineitem");
    }

    #[test]
    fn bytes_is_rows_times_width() {
        let s = TableStats::new(1000.0, 150.0);
        assert_eq!(s.bytes(), 150_000.0);
    }

    #[test]
    fn lookup_by_name_and_column() {
        let c = two_table_catalog();
        let orders = c.table_by_name("orders").expect("orders exists");
        assert_eq!(orders.column("o_orderkey"), Some(0));
        assert_eq!(orders.column("missing"), None);
        assert!(c.table_by_name("nope").is_none());
    }

    #[test]
    fn declared_row_width_sums_column_widths() {
        let c = two_table_catalog();
        let orders = c.table_by_name("orders").unwrap();
        assert_eq!(orders.declared_row_width(), 8 + 48);
    }

    #[test]
    fn sampling_scales_rows_only() {
        let mut c = two_table_catalog();
        let id = c.table_by_name("orders").unwrap().id;
        let before = c.table(id).stats;
        c.sample_table(id, 0.25);
        let after = c.table(id).stats;
        assert_eq!(after.rows, before.rows * 0.25);
        assert_eq!(after.row_width, before.row_width);
    }

    #[test]
    #[should_panic(expected = "sampling fraction")]
    fn sampling_rejects_bad_fraction() {
        let mut c = two_table_catalog();
        c.sample_table(TableId(0), 1.5);
    }

    #[test]
    fn set_stats_replaces() {
        let mut c = two_table_catalog();
        c.set_stats(TableId(1), TableStats::new(5.0, 10.0));
        assert_eq!(c.table(TableId(1)).stats.bytes(), 50.0);
    }

    #[test]
    fn column_widths() {
        assert_eq!(ColumnType::Int64.avg_width(), 8);
        assert_eq!(ColumnType::Date.avg_width(), 4);
        assert_eq!(ColumnType::Varchar(25).avg_width(), 25);
    }
}
