//! Property tests for schemas, join graphs, and query generation.

use proptest::prelude::*;
use raqo_catalog::{QuerySpec, RandomSchema, RandomSchemaConfig};

proptest! {
    /// Generated schemas always satisfy the paper's stat ranges and are
    /// connected, for any size/seed.
    #[test]
    fn random_schema_invariants(tables in 1usize..60, seed in 0u64..1000) {
        let schema = RandomSchemaConfig::with_tables(tables, seed).generate();
        prop_assert_eq!(schema.catalog.len(), tables);
        for t in schema.catalog.tables() {
            prop_assert!((100.0..=200.0).contains(&t.stats.row_width));
            prop_assert!((100_000.0..=2_000_000.0).contains(&t.stats.rows));
        }
        let all: Vec<_> = schema.catalog.table_ids().collect();
        prop_assert!(schema.graph.is_connected(&all));
    }

    /// Cardinalities over arbitrary connected sub-queries are finite,
    /// positive, and no larger than the plain cross product.
    #[test]
    fn cardinalities_bounded_by_cross_product(
        tables in 2usize..30,
        seed in 0u64..200,
        k in 2usize..10,
    ) {
        let k = k.min(tables);
        let schema = RandomSchemaConfig::with_tables(tables, seed).generate();
        let q = QuerySpec::random_connected(&schema.catalog, &schema.graph, k, seed);
        let card = schema.graph.join_cardinality(&schema.catalog, &q.relations);
        prop_assert!(card.is_finite() && card > 0.0);
        let log_cross: f64 = q
            .relations
            .iter()
            .map(|&t| schema.catalog.table(t).stats.rows.ln())
            .sum();
        prop_assert!(card.ln() <= log_cross + 1e-9, "selectivities must only shrink");
    }

    /// Random connected queries contain exactly k distinct relations and
    /// are answerable without cross products.
    #[test]
    fn random_queries_well_formed(
        tables in 2usize..40,
        seed in 0u64..300,
    ) {
        let schema = RandomSchemaConfig::with_tables(tables, seed).generate();
        for k in [2, tables / 2 + 1, tables] {
            let k = k.clamp(1, tables);
            let q = QuerySpec::random_connected(&schema.catalog, &schema.graph, k, seed ^ 7);
            prop_assert_eq!(q.relations.len(), k);
            prop_assert!(q.is_connected(&schema.graph));
            // Sorted and deduplicated.
            for w in q.relations.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// On clique schemas — the maximally *cyclic* join graphs — the
    /// cardinality of any subset applies every in-subset edge's
    /// selectivity exactly once: |S| = ∏ rows · ∏ sel(e), e ⊆ S. The
    /// expected value is recomputed here independently edge by edge, so a
    /// double-count (or skip) of any edge on a cycle fails the property.
    #[test]
    fn clique_cardinality_applies_each_edge_once(
        n in 2usize..12,
        seed in 0u64..200,
        pick in 0u32..4096,
    ) {
        let schema = RandomSchema::clique(n, seed);
        let all: Vec<_> = schema.catalog.table_ids().collect();
        let subset: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| pick & (1 << i) != 0)
            .map(|(_, &t)| t)
            .collect();
        if subset.len() < 2 { return Ok(()); }
        let card = schema.graph.join_cardinality(&schema.catalog, &subset);
        prop_assert!(card.is_finite() && card > 0.0, "cyclic subsets must stay finite");
        let mut expected_ln: f64 = subset
            .iter()
            .map(|&t| schema.catalog.table(t).stats.rows.ln())
            .sum();
        for e in schema.graph.edges() {
            if subset.contains(&e.a) && subset.contains(&e.b) {
                expected_ln += e.selectivity.ln();
            }
        }
        prop_assert!(
            (card.ln() - expected_ln).abs() < 1e-6,
            "each in-subset edge exactly once: got ln {} want ln {}",
            card.ln(),
            expected_ln
        );
    }

    /// Clique cardinalities are invariant to how the subset is split for a
    /// join: joining (L ⋈ R) via cross_selectivity agrees with the whole
    /// subset's cardinality however the cut crosses the cycles.
    #[test]
    fn clique_cardinality_is_split_invariant(
        n in 3usize..10,
        seed in 0u64..100,
        cut in 1u32..512,
    ) {
        let schema = RandomSchema::clique(n, seed);
        let all: Vec<_> = schema.catalog.table_ids().collect();
        let (left, right): (Vec<_>, Vec<_>) = all
            .iter()
            .enumerate()
            .partition(|(i, _)| cut & (1 << i) != 0);
        let left: Vec<_> = left.into_iter().map(|(_, &t)| t).collect();
        let right: Vec<_> = right.into_iter().map(|(_, &t)| t).collect();
        if left.is_empty() || right.is_empty() { return Ok(()); }
        let joined = schema.graph.join_cardinality(&schema.catalog, &all);
        let via_split = schema.graph.join_cardinality(&schema.catalog, &left)
            * schema.graph.join_cardinality(&schema.catalog, &right)
            * schema.graph.cross_selectivity(&left, &right);
        prop_assert!(
            ((joined.ln() - via_split.ln()).abs()) < 1e-6,
            "split must not double-count cycle edges: {} vs {}",
            joined,
            via_split
        );
    }

    /// Sampling a table scales cardinalities proportionally.
    #[test]
    fn sampling_scales_cardinality(fraction in 0.01f64..1.0) {
        let mut schema = RandomSchemaConfig::with_tables(5, 3).generate();
        let all: Vec<_> = schema.catalog.table_ids().collect();
        let before = schema.graph.join_cardinality(&schema.catalog, &all);
        schema.catalog.sample_table(all[0], fraction);
        let after = schema.graph.join_cardinality(&schema.catalog, &all);
        let ratio = after / before;
        prop_assert!((ratio - fraction).abs() < 1e-9, "ratio {ratio} vs {fraction}");
    }
}
