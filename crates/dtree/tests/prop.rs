//! Property tests for the CART learner.

use proptest::prelude::*;
use raqo_dtree::{CartConfig, Node, Sample};

fn names() -> (Vec<String>, Vec<String>) {
    (
        vec!["x".into(), "y".into()],
        vec!["a".into(), "b".into()],
    )
}

proptest! {
    /// A fully grown tree perfectly fits any axis-separable labelling.
    #[test]
    fn perfect_fit_on_separable_data(
        threshold_x in 0.5f64..9.5,
        points in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 10..80),
    ) {
        let samples: Vec<Sample> = points
            .iter()
            .map(|&(x, y)| Sample::new(vec![x, y], usize::from(x > threshold_x)))
            .collect();
        let (f, c) = names();
        let tree = CartConfig::default().fit(&samples, f, c);
        prop_assert_eq!(tree.accuracy(&samples), 1.0);
    }

    /// Node statistics are consistent: every split's value vector is the
    /// element-wise sum of its children's, and sample counts add up.
    #[test]
    fn node_counts_are_consistent(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..60),
        flip in proptest::collection::vec(proptest::bool::ANY, 60),
    ) {
        let samples: Vec<Sample> = points
            .iter()
            .zip(&flip)
            .map(|(&(x, y), &f)| Sample::new(vec![x, y], usize::from(f)))
            .collect();
        let (fnames, cnames) = names();
        let tree = CartConfig::default().fit(&samples, fnames, cnames);

        fn check(node: &Node) {
            if let Node::Split { value, left, right, .. } = node {
                let l = left.value();
                let r = right.value();
                for i in 0..value.len() {
                    assert_eq!(value[i], l[i] + r[i], "class counts must sum");
                }
                assert!(l.iter().sum::<usize>() > 0, "empty left child");
                assert!(r.iter().sum::<usize>() > 0, "empty right child");
                check(left);
                check(right);
            }
        }
        check(&tree.root);
        let total: usize = tree.root.value().iter().sum();
        prop_assert_eq!(total, samples.len());
    }

    /// Depth limits are always honoured.
    #[test]
    fn depth_limit_holds(
        depth in 1usize..6,
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 20..100),
    ) {
        let samples: Vec<Sample> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Sample::new(vec![x, y], i % 2))
            .collect();
        let (f, c) = names();
        let cfg = CartConfig { max_depth: Some(depth), ..Default::default() };
        let tree = cfg.fit(&samples, f, c);
        prop_assert!(tree.max_path_len() <= depth);
    }

    /// Predictions always return a valid class index, for any inputs —
    /// including ones far outside the training range.
    #[test]
    fn predictions_are_valid_classes(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 4..40),
        probe_x in -1e6f64..1e6,
        probe_y in -1e6f64..1e6,
    ) {
        let samples: Vec<Sample> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Sample::new(vec![x, y], i % 2))
            .collect();
        let (f, c) = names();
        let tree = CartConfig::default().fit(&samples, f, c);
        let class = tree.predict(&[probe_x, probe_y]);
        prop_assert!(class < 2);
    }
}
