//! # raqo-dtree
//!
//! Decision trees for rule-based RAQO (§V).
//!
//! > "We can encode our observations from the data-resource space above into
//! > a decision tree. To do this, we ran the decision tree classifier from
//! > scikit-learn in python over the switch point results ... with two
//! > target classes namely SMJ and BHJ." (§V-B)
//!
//! This crate replaces scikit-learn with a from-scratch CART learner
//! ([`cart`]) using Gini impurity — the same algorithm and the same node
//! statistics (`gini`, `samples`, `value`, `class`) the paper's Figs. 10–11
//! display — plus the *default* one-rule trees of Hive and Spark
//! ([`default_trees`]): both systems "choose BHJ when the small relation is
//! smaller than 10 MB", ignoring resources entirely.

pub mod cart;
pub mod default_trees;
pub mod tree;

pub use cart::CartConfig;
pub use default_trees::{default_hive_tree, default_spark_tree, DEFAULT_BROADCAST_THRESHOLD_GB};
pub use tree::{DecisionTree, Node, Sample};
