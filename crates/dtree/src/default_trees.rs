//! The *default* decision trees of Hive and Spark (Fig. 10).
//!
//! Both systems pick the join implementation with a single data-size rule:
//! "the default Hive and Spark rules ... choose BHJ when the small relation
//! is smaller than 10 MB" (§V-A). Fig. 10 renders exactly these depth-2
//! trees, fitted on two samples each. Resources do not appear anywhere —
//! that absence is the paper's point.

use crate::tree::{DecisionTree, Node};

/// 10 MB in GB: Hive's `hive.auto.convert.join.noconditionaltask.size` and
/// Spark's `spark.sql.autoBroadcastJoinThreshold` default.
pub const DEFAULT_BROADCAST_THRESHOLD_GB: f64 = 0.01;

/// Class indices shared by all join-selection trees in this workspace.
pub mod class {
    pub const BHJ: usize = 0;
    pub const SMJ: usize = 1;
    pub const NAMES: [&str; 2] = ["BHJ", "SMJ"];
}

/// Feature indices for the join-selection feature vector (matches
/// `raqo_sim::profile::LabeledRun::features`).
pub mod feature {
    pub const DATA_SIZE_GB: usize = 0;
    pub const CONTAINER_SIZE_GB: usize = 1;
    pub const CONCURRENT_CONTAINERS: usize = 2;
    pub const TOTAL_CONTAINERS: usize = 3;
    pub const NAMES: [&str; 4] =
        ["Data Size (GB)", "Container Size", "Concurrent Containers", "Total Containers"];
}

fn single_rule_tree(threshold_gb: f64) -> DecisionTree {
    // Fig. 10: root gini = 0.5, samples = 2, value = [1, 1], class = BHJ;
    // pure single-sample leaves.
    DecisionTree {
        root: Node::Split {
            feature: feature::DATA_SIZE_GB,
            threshold: threshold_gb,
            value: vec![1, 1],
            gini: 0.5,
            class: class::BHJ,
            left: Box::new(Node::Leaf { value: vec![1, 0], gini: 0.0, class: class::BHJ }),
            right: Box::new(Node::Leaf { value: vec![0, 1], gini: 0.0, class: class::SMJ }),
        },
        feature_names: feature::NAMES.iter().map(|s| s.to_string()).collect(),
        class_names: class::NAMES.iter().map(|s| s.to_string()).collect(),
    }
}

/// Fig. 10(a): Hive's default join-selection tree — BHJ iff the small
/// relation is ≤ 10 MB.
pub fn default_hive_tree() -> DecisionTree {
    single_rule_tree(DEFAULT_BROADCAST_THRESHOLD_GB)
}

/// Fig. 10(b): Spark's default join-selection tree — same 10 MB rule
/// (`spark.sql.autoBroadcastJoinThreshold`).
pub fn default_spark_tree() -> DecisionTree {
    single_rule_tree(DEFAULT_BROADCAST_THRESHOLD_GB)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(data_gb: f64, cs: f64, nc: f64, total: f64) -> Vec<f64> {
        vec![data_gb, cs, nc, total]
    }

    #[test]
    fn ten_mb_rule() {
        for tree in [default_hive_tree(), default_spark_tree()] {
            // 5 MB table: broadcast.
            assert_eq!(tree.predict(&features(0.005, 4.0, 10.0, 100.0)), class::BHJ);
            // 5 GB table: shuffle.
            assert_eq!(tree.predict(&features(5.0, 4.0, 10.0, 100.0)), class::SMJ);
        }
    }

    #[test]
    fn default_trees_ignore_resources() {
        // The whole §III problem: identical decisions regardless of
        // resources.
        let tree = default_hive_tree();
        let a = tree.predict(&features(2.0, 1.0, 5.0, 10.0));
        let b = tree.predict(&features(2.0, 100.0, 1000.0, 100000.0));
        assert_eq!(a, b);
    }

    #[test]
    fn matches_fig10_statistics() {
        let tree = default_hive_tree();
        assert_eq!(tree.root.value(), &[1, 1]);
        assert!((tree.root.gini() - 0.5).abs() < 1e-12);
        assert_eq!(tree.max_path_len(), 2);
        assert_eq!(tree.node_count(), 3);
        let text = tree.render();
        assert!(text.contains("Data Size (GB) <= 0.01"), "{text}");
    }

    #[test]
    fn class_and_feature_tables_consistent() {
        assert_eq!(class::NAMES[class::BHJ], "BHJ");
        assert_eq!(class::NAMES[class::SMJ], "SMJ");
        assert_eq!(feature::NAMES.len(), 4);
        let tree = default_hive_tree();
        assert_eq!(tree.class_names.len(), 2);
        assert_eq!(tree.feature_names.len(), 4);
    }
}
