//! CART: greedy top-down induction with Gini impurity — the algorithm
//! behind scikit-learn's `DecisionTreeClassifier` that the paper ran over
//! its switch-point grids (§V-B).

use crate::tree::{gini, majority, DecisionTree, Node, Sample};

/// Learner knobs. The defaults grow the tree to purity like the paper's
/// figures (their Fig. 11 trees terminate in gini = 0 leaves); the paper
/// notes pruning "is currently not a problem for the set of resources that
/// we have considered".
#[derive(Debug, Clone, Copy)]
pub struct CartConfig {
    /// Stop splitting below this many samples.
    pub min_samples_split: usize,
    /// Maximum tree depth (nodes on a path), if any.
    pub max_depth: Option<usize>,
}

impl Default for CartConfig {
    fn default() -> Self {
        CartConfig { min_samples_split: 2, max_depth: None }
    }
}

impl CartConfig {
    /// Fit a tree. `feature_names` and `class_names` label the model;
    /// every sample must have `feature_names.len()` features and a label
    /// `< class_names.len()`.
    ///
    /// ```
    /// use raqo_dtree::{CartConfig, Sample};
    ///
    /// // 1-D data, class flips at x = 3.
    /// let samples: Vec<Sample> = (0..10)
    ///     .map(|i| Sample::new(vec![i as f64], usize::from(i >= 3)))
    ///     .collect();
    /// let tree = CartConfig::default().fit(
    ///     &samples,
    ///     vec!["x".into()],
    ///     vec!["lo".into(), "hi".into()],
    /// );
    /// assert_eq!(tree.predict(&[1.0]), 0);
    /// assert_eq!(tree.predict(&[9.0]), 1);
    /// assert_eq!(tree.accuracy(&samples), 1.0);
    /// ```
    pub fn fit(
        &self,
        samples: &[Sample],
        feature_names: Vec<String>,
        class_names: Vec<String>,
    ) -> DecisionTree {
        assert!(!samples.is_empty(), "cannot fit a tree on zero samples");
        let k = feature_names.len();
        assert!(k > 0, "need at least one feature");
        for s in samples {
            assert_eq!(s.features.len(), k, "feature arity mismatch");
            assert!(s.label < class_names.len(), "label out of range");
        }
        let idx: Vec<usize> = (0..samples.len()).collect();
        let root = self.grow(samples, &idx, class_names.len(), 1);
        DecisionTree { root, feature_names, class_names }
    }

    fn grow(&self, samples: &[Sample], idx: &[usize], classes: usize, depth: usize) -> Node {
        let mut value = vec![0usize; classes];
        for &i in idx {
            value[samples[i].label] += 1;
        }
        let node_gini = gini(&value);
        let class = majority(&value);

        let stop = node_gini == 0.0
            || idx.len() < self.min_samples_split
            || self.max_depth.is_some_and(|d| depth >= d);
        if stop {
            return Node::Leaf { value, gini: node_gini, class };
        }

        let Some((feature, threshold)) = best_split(samples, idx, classes) else {
            // No split separates anything (duplicate feature vectors with
            // mixed labels).
            return Node::Leaf { value, gini: node_gini, class };
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| samples[i].features[feature] <= threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let left = self.grow(samples, &left_idx, classes, depth + 1);
        let right = self.grow(samples, &right_idx, classes, depth + 1);
        Node::Split {
            feature,
            threshold,
            value,
            gini: node_gini,
            class,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

/// Best (feature, threshold) by weighted-Gini reduction; thresholds are
/// midpoints between consecutive distinct feature values (scikit-learn's
/// choice). Returns `None` when no split produces two non-empty children
/// with impurity improvement.
fn best_split(samples: &[Sample], idx: &[usize], classes: usize) -> Option<(usize, f64)> {
    let k = samples[idx[0]].features.len();
    let n = idx.len() as f64;
    let mut parent_value = vec![0usize; classes];
    for &i in idx {
        parent_value[samples[i].label] += 1;
    }
    let parent_gini = gini(&parent_value);

    let mut best: Option<(f64, usize, f64)> = None; // (weighted gini, feature, threshold)
    let mut order: Vec<usize> = Vec::with_capacity(idx.len());
    for feature in 0..k {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_by(|&a, &b| {
            samples[a].features[feature]
                .partial_cmp(&samples[b].features[feature])
                .expect("features are finite")
        });

        // Sweep split positions, maintaining left/right class counts.
        let mut left = vec![0usize; classes];
        let mut right = parent_value.clone();
        for w in 0..order.len() - 1 {
            let i = order[w];
            left[samples[i].label] += 1;
            right[samples[i].label] -= 1;
            let a = samples[order[w]].features[feature];
            let b = samples[order[w + 1]].features[feature];
            if a == b {
                continue; // can't split between equal values
            }
            let threshold = 0.5 * (a + b);
            let nl = (w + 1) as f64;
            let nr = n - nl;
            let weighted = (nl / n) * gini(&left) + (nr / n) * gini(&right);
            let better = match best {
                None => weighted < parent_gini - 1e-12,
                Some((bw, _, _)) => weighted < bw - 1e-12,
            };
            if better {
                best = Some((weighted, feature, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn names(fs: &[&str], cs: &[&str]) -> (Vec<String>, Vec<String>) {
        (
            fs.iter().map(|s| s.to_string()).collect(),
            cs.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn fits_single_threshold_exactly() {
        // 1-D separable data: class 0 below 3, class 1 above.
        let samples: Vec<Sample> = (0..20)
            .map(|i| {
                let x = i as f64 * 0.5;
                Sample::new(vec![x], (x > 3.0) as usize)
            })
            .collect();
        let (f, c) = names(&["x"], &["lo", "hi"]);
        let tree = CartConfig::default().fit(&samples, f, c);
        assert_eq!(tree.accuracy(&samples), 1.0);
        assert_eq!(tree.node_count(), 3); // one split, two leaves
        if let Node::Split { threshold, .. } = &tree.root {
            assert!((3.0..3.5).contains(threshold), "threshold {threshold}");
        } else {
            panic!("expected split at root");
        }
    }

    #[test]
    fn fits_axis_aligned_2d_boundary() {
        // Class = (x > 2) XOR-free region: needs two levels of splits.
        let mut samples = Vec::new();
        for xi in 0..10 {
            for yi in 0..10 {
                let (x, y) = (xi as f64, yi as f64);
                let label = usize::from(x > 4.5 && y > 4.5);
                samples.push(Sample::new(vec![x, y], label));
            }
        }
        let (f, c) = names(&["x", "y"], &["out", "in"]);
        let tree = CartConfig::default().fit(&samples, f, c);
        assert_eq!(tree.accuracy(&samples), 1.0);
        assert!(tree.max_path_len() >= 3);
    }

    #[test]
    fn all_leaves_pure_when_fully_grown() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<Sample> = (0..200)
            .map(|_| {
                let x = rng.gen_range(0.0..10.0);
                let y = rng.gen_range(0.0..10.0);
                Sample::new(vec![x, y], usize::from(x + y > 10.0))
            })
            .collect();
        let (f, c) = names(&["x", "y"], &["a", "b"]);
        let tree = CartConfig::default().fit(&samples, f, c);
        fn check_leaves(n: &Node) {
            match n {
                Node::Leaf { gini, .. } => assert_eq!(*gini, 0.0),
                Node::Split { left, right, .. } => {
                    check_leaves(left);
                    check_leaves(right);
                }
            }
        }
        check_leaves(&tree.root);
        assert_eq!(tree.accuracy(&samples), 1.0);
    }

    #[test]
    fn max_depth_caps_paths() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<Sample> = (0..200)
            .map(|_| {
                let x = rng.gen_range(0.0..10.0);
                Sample::new(vec![x], usize::from((x as u64).is_multiple_of(2)))
            })
            .collect();
        let (f, c) = names(&["x"], &["even", "odd"]);
        let cfg = CartConfig { max_depth: Some(3), ..Default::default() };
        let tree = cfg.fit(&samples, f, c);
        assert!(tree.max_path_len() <= 3);
    }

    #[test]
    fn contradictory_samples_become_majority_leaf() {
        // Identical features, mixed labels: no split possible.
        let samples = vec![
            Sample::new(vec![1.0], 0),
            Sample::new(vec![1.0], 0),
            Sample::new(vec![1.0], 1),
        ];
        let (f, c) = names(&["x"], &["a", "b"]);
        let tree = CartConfig::default().fit(&samples, f, c);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[1.0]), 0);
    }

    #[test]
    fn root_stats_match_training_set() {
        let samples = vec![
            Sample::new(vec![0.0], 0),
            Sample::new(vec![1.0], 0),
            Sample::new(vec![2.0], 1),
            Sample::new(vec![3.0], 1),
        ];
        let (f, c) = names(&["x"], &["a", "b"]);
        let tree = CartConfig::default().fit(&samples, f, c);
        assert_eq!(tree.root.value(), &[2, 2]);
        assert!((tree.root.gini() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_samples_split_stops_early() {
        let samples = vec![
            Sample::new(vec![0.0], 0),
            Sample::new(vec![1.0], 1),
        ];
        let (f, c) = names(&["x"], &["a", "b"]);
        let cfg = CartConfig { min_samples_split: 3, ..Default::default() };
        let tree = cfg.fit(&samples, f, c);
        assert_eq!(tree.node_count(), 1); // would split, but too few samples
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_training_set_rejected() {
        let (f, c) = names(&["x"], &["a"]);
        CartConfig::default().fit(&[], f, c);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn ragged_features_rejected() {
        let (f, c) = names(&["x", "y"], &["a", "b"]);
        CartConfig::default().fit(&[Sample::new(vec![1.0], 0)], f, c);
    }

    #[test]
    fn deterministic_fit() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<Sample> = (0..100)
            .map(|_| {
                let x = rng.gen_range(0.0..1.0);
                let y = rng.gen_range(0.0..1.0);
                Sample::new(vec![x, y], usize::from(x > y))
            })
            .collect();
        let (f1, c1) = names(&["x", "y"], &["a", "b"]);
        let (f2, c2) = names(&["x", "y"], &["a", "b"]);
        let t1 = CartConfig::default().fit(&samples, f1, c1);
        let t2 = CartConfig::default().fit(&samples, f2, c2);
        assert_eq!(t1, t2);
    }
}
