//! The decision-tree data structure, prediction, and rendering.

use serde::{Deserialize, Serialize};

/// A training sample: a feature vector and a class label (index into the
/// tree's class-name table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    pub features: Vec<f64>,
    pub label: usize,
}

impl Sample {
    pub fn new(features: Vec<f64>, label: usize) -> Self {
        Sample { features, label }
    }
}

/// A tree node. Every node carries the statistics scikit-learn prints and
/// the paper's figures show: per-class sample counts (`value`), the Gini
/// impurity, and the majority class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    Leaf {
        /// Per-class sample counts at this node.
        value: Vec<usize>,
        gini: f64,
        class: usize,
    },
    Split {
        /// Feature index the node tests.
        feature: usize,
        /// Samples with `features[feature] <= threshold` go left ("True"
        /// in scikit-learn's rendering).
        threshold: f64,
        value: Vec<usize>,
        gini: f64,
        class: usize,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    pub fn value(&self) -> &[usize] {
        match self {
            Node::Leaf { value, .. } | Node::Split { value, .. } => value,
        }
    }

    pub fn gini(&self) -> f64 {
        match self {
            Node::Leaf { gini, .. } | Node::Split { gini, .. } => *gini,
        }
    }

    pub fn class(&self) -> usize {
        match self {
            Node::Leaf { class, .. } | Node::Split { class, .. } => *class,
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.count() + right.count(),
        }
    }
}

/// A fitted decision tree plus its feature/class naming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    pub root: Node,
    pub feature_names: Vec<String>,
    pub class_names: Vec<String>,
}

impl DecisionTree {
    /// Predict the class index for a feature vector.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split { feature, threshold, left, right, .. } => {
                    assert!(
                        *feature < features.len(),
                        "feature vector too short for this tree"
                    );
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Predicted class name.
    pub fn predict_name(&self, features: &[f64]) -> &str {
        &self.class_names[self.predict(features)]
    }

    /// Fraction of samples the tree classifies correctly.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        let hits = samples.iter().filter(|s| self.predict(&s.features) == s.label).count();
        hits as f64 / samples.len() as f64
    }

    /// Maximum root-to-leaf path length in nodes. The paper: "maximum path
    /// length in the RAQO decision trees is 6 for Hive and 7 for Spark."
    pub fn max_path_len(&self) -> usize {
        self.root.depth()
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.root.count()
    }

    /// Render in the style of scikit-learn's `export_text` / the paper's
    /// Figs. 10–11: each node line shows the split (or "leaf"), gini,
    /// samples, value, and class.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(&self.root, 0, &mut out);
        out
    }

    fn render_node(&self, node: &Node, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let samples: usize = node.value().iter().sum();
        match node {
            Node::Leaf { value, gini, class } => {
                out.push_str(&format!(
                    "{indent}leaf: gini = {gini:.4}, samples = {samples}, value = {value:?}, class = {}\n",
                    self.class_names[*class]
                ));
            }
            Node::Split { feature, threshold, value, gini, class, left, right } => {
                out.push_str(&format!(
                    "{indent}{} <= {threshold} : gini = {gini:.4}, samples = {samples}, value = {value:?}, class = {}\n",
                    self.feature_names[*feature], self.class_names[*class]
                ));
                self.render_node(left, depth + 1, out);
                self.render_node(right, depth + 1, out);
            }
        }
    }
}

/// Gini impurity of a class-count vector.
pub fn gini(value: &[usize]) -> f64 {
    let n: usize = value.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - value
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

/// Majority class (lowest index wins ties, like scikit-learn).
pub fn majority(value: &[usize]) -> usize {
    value
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(value: Vec<usize>) -> Node {
        let g = gini(&value);
        let class = majority(&value);
        Node::Leaf { value, gini: g, class }
    }

    fn two_class_tree() -> DecisionTree {
        // x0 <= 5 -> class 0 else class 1
        DecisionTree {
            root: Node::Split {
                feature: 0,
                threshold: 5.0,
                value: vec![3, 3],
                gini: 0.5,
                class: 0,
                left: Box::new(leaf(vec![3, 0])),
                right: Box::new(leaf(vec![0, 3])),
            },
            feature_names: vec!["x0".into()],
            class_names: vec!["A".into(), "B".into()],
        }
    }

    #[test]
    fn gini_of_pure_and_balanced() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert_eq!(gini(&[0, 10]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        // Three balanced classes: 1 - 3*(1/3)^2 = 2/3.
        assert!((gini(&[4, 4, 4]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn majority_breaks_ties_low() {
        assert_eq!(majority(&[5, 5]), 0);
        assert_eq!(majority(&[1, 7]), 1);
        assert_eq!(majority(&[0, 0, 3]), 2);
    }

    #[test]
    fn predict_follows_thresholds() {
        let t = two_class_tree();
        assert_eq!(t.predict(&[4.0]), 0);
        assert_eq!(t.predict(&[5.0]), 0); // <= goes left
        assert_eq!(t.predict(&[5.1]), 1);
        assert_eq!(t.predict_name(&[9.0]), "B");
    }

    #[test]
    fn accuracy_counts_hits() {
        let t = two_class_tree();
        let samples = vec![
            Sample::new(vec![1.0], 0),
            Sample::new(vec![9.0], 1),
            Sample::new(vec![2.0], 1), // wrong
        ];
        assert!((t.accuracy(&samples) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.accuracy(&[]), 1.0);
    }

    #[test]
    fn path_len_and_node_count() {
        let t = two_class_tree();
        assert_eq!(t.max_path_len(), 2);
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn render_matches_figure_style() {
        let t = two_class_tree();
        let text = t.render();
        assert!(text.contains("x0 <= 5"), "{text}");
        assert!(text.contains("gini = 0.5000"), "{text}");
        assert!(text.contains("value = [3, 0]"), "{text}");
        assert!(text.contains("class = A"), "{text}");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn predict_rejects_short_vectors() {
        two_class_tree().predict(&[]);
    }
}
